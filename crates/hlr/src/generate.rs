//! Seeded random RAUL program generator.
//!
//! Used by property tests and benchmarks for *differential testing*: every
//! generated program terminates **by construction**, so all execution
//! engines (reference evaluator, pure DIR interpreter, DTB machine,
//! i-cache machine) must produce identical output on it. With the default
//! configuration programs are additionally trap-free; setting
//! [`Config::trapping`] relaxes that so the conformance plane can check
//! that every engine raises the *same* trap at the same point.
//!
//! Safety-by-construction rules:
//!
//! * loops are `for` loops with constant bounds, or counted `while` loops
//!   whose counter is *protected* (never assigned inside the body);
//! * procedure calls only target lower-numbered procedures, so the call
//!   graph is a DAG and recursion is impossible;
//! * unless [`Config::trapping`] is set, `/` and `%` only appear with
//!   non-zero constant divisors and array indices are in-range constants.
//!
//! The feature toggles ([`Config::arrays`], [`Config::calls`],
//! [`Config::div_mod`], [`Config::max_loop_nesting`],
//! [`Config::extra_writes`], [`Config::trapping`]) let a sweep steer the
//! generator into structurally distinct regions of the program space —
//! scalar-only straight-line code, call-heavy DAGs, deeply nested loops,
//! write-heavy I/O programs — so coverage accounting can demand that each
//! region is actually exercised.

use crate::ast::*;
use crate::rng::Rng;
use crate::types::Type;
use crate::Span;

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Number of helper procedures besides `main`.
    pub n_procs: usize,
    /// Statements per procedure body.
    pub stmts_per_proc: usize,
    /// Maximum expression depth.
    pub max_expr_depth: u32,
    /// Maximum statement nesting depth.
    pub max_stmt_depth: u32,
    /// Upper bound for loop trip counts.
    pub max_trip: u32,
    /// Generate array reads and writes (the `garr` global). Off, no
    /// `LoadArr*`/`StoreArr*` opcode ever appears in the compiled DIR.
    pub arrays: bool,
    /// Generate procedure calls (statement and expression position).
    pub calls: bool,
    /// Generate `/` and `%` operators.
    pub div_mod: bool,
    /// Maximum loop nesting depth; `0` disables loops entirely. Nesting
    /// is additionally bounded by [`Config::max_stmt_depth`].
    pub max_loop_nesting: u32,
    /// Extra `write` statements appended to `main` (the I/O-volume knob).
    pub extra_writes: u32,
    /// Allow potentially-trapping constructs: variable divisors (may be
    /// zero at runtime) and computed array indices (may be out of
    /// range). Programs still terminate; they just may end in a trap,
    /// which every engine must report identically.
    pub trapping: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n_procs: 3,
            stmts_per_proc: 8,
            max_expr_depth: 3,
            max_stmt_depth: 3,
            max_trip: 6,
            arrays: true,
            calls: true,
            div_mod: true,
            max_loop_nesting: u32::MAX,
            extra_writes: 0,
            trapping: false,
        }
    }
}

/// Generates a random, terminating, trap-free program from `seed`.
///
/// The result always parses and passes semantic analysis, which the
/// generator's own tests assert for many seeds.
///
/// # Example
///
/// ```
/// let ast = hlr::generate::program(42, &hlr::generate::Config::default());
/// let hir = hlr::sema::analyze(&ast).expect("generated programs are valid");
/// hlr::eval::run(&hir).expect("generated programs are trap-free");
/// ```
pub fn program(seed: u64, config: &Config) -> Program {
    Gen {
        rng: Rng::new(seed),
        config: *config,
        fresh: 0,
    }
    .program()
}

/// A variable visible to the generator.
#[derive(Debug, Clone)]
struct GVar {
    name: String,
    ty: Type,
    /// Protected variables (loop counters) may be read but not assigned.
    protected: bool,
}

/// Generation context for one procedure body.
struct Scope {
    vars: Vec<GVar>,
    /// Procedures callable from here: indices < current proc index.
    callable: usize,
    /// Current loop nesting depth; calls are only generated at depth 0 so
    /// that total work stays polynomial in the configuration.
    loop_depth: u32,
}

struct Gen {
    rng: Rng,
    config: Config,
    fresh: u32,
}

/// Signatures of the helper procedures, decided up front.
#[derive(Debug, Clone)]
struct GSig {
    name: String,
    params: Vec<Type>,
    ret: Option<Type>,
}

const SPAN: Span = Span { start: 0, end: 0 };

impl Gen {
    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn program(&mut self) -> Program {
        // Decide signatures first so calls can be generated anywhere.
        let mut sigs = Vec::new();
        for i in 0..self.config.n_procs {
            let n_params = self.rng.range_usize(0, 3);
            let params = (0..n_params)
                .map(|_| {
                    if self.rng.bool_with(0.8) {
                        Type::Int
                    } else {
                        Type::Bool
                    }
                })
                .collect();
            let ret = if self.rng.bool_with(0.6) {
                Some(Type::Int)
            } else {
                None
            };
            sigs.push(GSig {
                name: format!("p{i}"),
                params,
                ret,
            });
        }

        // A couple of globals, including one array.
        let globals = vec![
            VarDecl {
                name: "g0".into(),
                ty: Type::Int,
                init: Some(Expr::Int(self.rng.range_i64(-50, 50), SPAN)),
                span: SPAN,
            },
            VarDecl {
                name: "g1".into(),
                ty: Type::Int,
                init: None,
                span: SPAN,
            },
            VarDecl {
                name: "garr".into(),
                ty: Type::IntArray(8),
                init: None,
                span: SPAN,
            },
        ];

        let mut procs = Vec::new();
        for (i, sig) in sigs.iter().enumerate() {
            procs.push(self.proc_decl(i, sig, &sigs));
        }
        procs.push(self.main_decl(&sigs));

        Program { globals, procs }
    }

    fn base_scope(&self, callable: usize) -> Scope {
        Scope {
            loop_depth: 0,
            vars: vec![
                GVar {
                    name: "g0".into(),
                    ty: Type::Int,
                    protected: false,
                },
                GVar {
                    name: "g1".into(),
                    ty: Type::Int,
                    protected: false,
                },
                GVar {
                    name: "garr".into(),
                    ty: Type::IntArray(8),
                    protected: false,
                },
            ],
            callable,
        }
    }

    fn proc_decl(&mut self, index: usize, sig: &GSig, sigs: &[GSig]) -> ProcDecl {
        let mut scope = self.base_scope(index);
        let params: Vec<Param> = sig
            .params
            .iter()
            .enumerate()
            .map(|(j, &ty)| {
                let name = format!("a{j}");
                scope.vars.push(GVar {
                    name: name.clone(),
                    ty,
                    protected: false,
                });
                Param {
                    name,
                    ty,
                    span: SPAN,
                }
            })
            .collect();
        let mut body = self.body(&mut scope, sigs, self.config.stmts_per_proc, 0);
        if sig.ret.is_some() {
            body.stmts.push(Stmt::Return {
                value: Some(self.expr(&scope, sigs, Type::Int, 0)),
                span: SPAN,
            });
        }
        ProcDecl {
            name: sig.name.clone(),
            params,
            ret: sig.ret,
            body,
            span: SPAN,
        }
    }

    fn main_decl(&mut self, sigs: &[GSig]) -> ProcDecl {
        let mut scope = self.base_scope(sigs.len());
        let mut body = self.body(&mut scope, sigs, self.config.stmts_per_proc, 0);
        // Always observe some state so differential tests compare real data.
        body.stmts.push(Stmt::Write {
            value: Expr::Var("g0".into(), SPAN),
            span: SPAN,
        });
        body.stmts.push(Stmt::Write {
            value: Expr::Var("g1".into(), SPAN),
            span: SPAN,
        });
        if self.config.arrays {
            body.stmts.push(Stmt::Write {
                value: Expr::Index {
                    name: "garr".into(),
                    index: Box::new(Expr::Int(3, SPAN)),
                    span: SPAN,
                },
                span: SPAN,
            });
        }
        // The I/O-volume knob: extra observations of generated expressions.
        for _ in 0..self.config.extra_writes {
            body.stmts.push(Stmt::Write {
                value: self.expr(&scope, sigs, Type::Int, 0),
                span: SPAN,
            });
        }
        ProcDecl {
            name: "main".into(),
            params: Vec::new(),
            ret: None,
            body,
            span: SPAN,
        }
    }

    fn body(&mut self, scope: &mut Scope, sigs: &[GSig], n_stmts: usize, depth: u32) -> Block {
        let mark = scope.vars.len();
        let mut decls = Vec::new();
        // A few fresh locals.
        for _ in 0..self.rng.range_usize(1, 3) {
            let name = self.fresh_name("v");
            let ty = if self.rng.bool_with(0.85) {
                Type::Int
            } else {
                Type::Bool
            };
            let init = Some(self.expr(scope, sigs, ty, 0));
            decls.push(VarDecl {
                name: name.clone(),
                ty,
                init,
                span: SPAN,
            });
            scope.vars.push(GVar {
                name,
                ty,
                protected: false,
            });
        }
        let mut stmts = Vec::new();
        for _ in 0..n_stmts {
            stmts.push(self.stmt(scope, sigs, depth));
        }
        scope.vars.truncate(mark);
        Block {
            decls,
            stmts,
            span: SPAN,
        }
    }

    fn stmt(&mut self, scope: &mut Scope, sigs: &[GSig], depth: u32) -> Stmt {
        let max_depth = self.config.max_stmt_depth;
        let choice = if depth >= max_depth {
            self.rng.range_usize(0, 4) // leaf statements only
        } else {
            self.rng.range_usize(0, 9)
        };
        // Loops beyond the configured nesting bound degrade to a leaf
        // write, keeping the rng draw count per choice stable.
        let loops_allowed = scope.loop_depth < self.config.max_loop_nesting;
        match choice {
            // Leaf statements.
            0 | 1 => {
                // Scalar assignment to an unprotected variable.
                if let Some(v) = self.pick_scalar(scope, None, false) {
                    let value = self.expr(scope, sigs, v.1, 0);
                    Stmt::Assign {
                        name: v.0,
                        value,
                        span: SPAN,
                    }
                } else {
                    Stmt::Skip { span: SPAN }
                }
            }
            2 if self.config.arrays => {
                // Array store; the index is a safe constant unless the
                // trapping profile asks for computed (possibly
                // out-of-range) indices.
                let index = self.array_index(scope, sigs);
                let value = self.expr(scope, sigs, Type::Int, 0);
                Stmt::AssignIndexed {
                    name: "garr".into(),
                    index,
                    value,
                    span: SPAN,
                }
            }
            2 | 3 => Stmt::Write {
                value: self.expr(scope, sigs, Type::Int, 0),
                span: SPAN,
            },
            // Structured statements.
            4 | 5 => {
                let cond = self.expr(scope, sigs, Type::Bool, 0);
                let then_branch = Box::new(Stmt::Block(self.body(scope, sigs, 2, depth + 1)));
                let else_branch = if self.rng.bool_with(0.5) {
                    Some(Box::new(Stmt::Block(self.body(scope, sigs, 2, depth + 1))))
                } else {
                    None
                };
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span: SPAN,
                }
            }
            6 if loops_allowed => {
                // Bounded for loop with a protected counter.
                let var = self.fresh_name("i");
                let trip = self.rng.range_u32(1, self.config.max_trip + 1) as i64;
                scope.vars.push(GVar {
                    name: var.clone(),
                    ty: Type::Int,
                    protected: true,
                });
                scope.loop_depth += 1;
                let body = Box::new(Stmt::Block(self.body(scope, sigs, 2, depth + 1)));
                scope.loop_depth -= 1;
                scope.vars.pop();
                // Counter must be declared: wrap in a block declaring it.
                Stmt::Block(Block {
                    decls: vec![VarDecl {
                        name: var.clone(),
                        ty: Type::Int,
                        init: None,
                        span: SPAN,
                    }],
                    stmts: vec![Stmt::For {
                        var,
                        from: Expr::Int(0, SPAN),
                        to: Expr::Int(trip - 1, SPAN),
                        body,
                        span: SPAN,
                    }],
                    span: SPAN,
                })
            }
            7 if loops_allowed => {
                // Counted while loop: `int c := k; while c > 0 do { ...; c := c - 1; }`
                let var = self.fresh_name("c");
                let trip = self.rng.range_u32(1, self.config.max_trip + 1) as i64;
                scope.vars.push(GVar {
                    name: var.clone(),
                    ty: Type::Int,
                    protected: true,
                });
                scope.loop_depth += 1;
                let mut inner = self.body(scope, sigs, 2, depth + 1);
                scope.loop_depth -= 1;
                scope.vars.pop();
                inner.stmts.push(Stmt::Assign {
                    name: var.clone(),
                    value: Expr::Binary {
                        op: BinOp::Sub,
                        lhs: Box::new(Expr::Var(var.clone(), SPAN)),
                        rhs: Box::new(Expr::Int(1, SPAN)),
                        span: SPAN,
                    },
                    span: SPAN,
                });
                Stmt::Block(Block {
                    decls: vec![VarDecl {
                        name: var.clone(),
                        ty: Type::Int,
                        init: Some(Expr::Int(trip, SPAN)),
                        span: SPAN,
                    }],
                    stmts: vec![Stmt::While {
                        cond: Expr::Binary {
                            op: BinOp::Gt,
                            lhs: Box::new(Expr::Var(var, SPAN)),
                            rhs: Box::new(Expr::Int(0, SPAN)),
                            span: SPAN,
                        },
                        body: Box::new(Stmt::Block(inner)),
                        span: SPAN,
                    }],
                    span: SPAN,
                })
            }
            6 | 7 => Stmt::Write {
                // Loop nesting bound reached: degrade to a leaf write.
                value: self.expr(scope, sigs, Type::Int, 0),
                span: SPAN,
            },
            _ => {
                // Call a lower-numbered procedure, if any exists; never
                // inside a loop (keeps generated work bounded).
                if !self.config.calls || scope.callable == 0 || scope.loop_depth > 0 {
                    return Stmt::Skip { span: SPAN };
                }
                let target = self.rng.range_usize(0, scope.callable);
                let sig = sigs[target].clone();
                let args = sig
                    .params
                    .iter()
                    .map(|&ty| self.expr(scope, sigs, ty, 0))
                    .collect();
                Stmt::Call {
                    name: sig.name,
                    args,
                    span: SPAN,
                }
            }
        }
    }

    /// Picks a scalar variable of type `want` (or any scalar if `None`).
    /// When `allow_protected` is false, loop counters are excluded.
    fn pick_scalar(
        &mut self,
        scope: &Scope,
        want: Option<Type>,
        allow_protected: bool,
    ) -> Option<(String, Type)> {
        let candidates: Vec<_> = scope
            .vars
            .iter()
            .filter(|v| v.ty.is_scalar())
            .filter(|v| allow_protected || !v.protected)
            .filter(|v| want.is_none_or(|t| v.ty == t))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let v = candidates[self.rng.range_usize(0, candidates.len())];
        Some((v.name.clone(), v.ty))
    }

    fn expr(&mut self, scope: &Scope, sigs: &[GSig], ty: Type, depth: u32) -> Expr {
        if depth >= self.config.max_expr_depth {
            return self.leaf(scope, ty);
        }
        match ty {
            Type::Int => match self.rng.range_usize(0, 8) {
                0 | 1 => self.leaf(scope, ty),
                2..=4 => {
                    let op = match self.rng.range_usize(0, 5) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        3 if self.config.div_mod => BinOp::Div,
                        3 => BinOp::Add,
                        _ if self.config.div_mod => BinOp::Mod,
                        _ => BinOp::Mul,
                    };
                    let lhs = Box::new(self.expr(scope, sigs, Type::Int, depth + 1));
                    let rhs = if matches!(op, BinOp::Div | BinOp::Mod) {
                        if self.config.trapping && self.rng.bool_with(0.4) {
                            // A computed divisor that may be zero at
                            // runtime: the trap-agreement probe.
                            Box::new(self.expr(scope, sigs, Type::Int, depth + 1))
                        } else {
                            // Non-zero constant divisor keeps the program trap-free.
                            Box::new(Expr::Int(self.rng.range_i64(1, 20), SPAN))
                        }
                    } else {
                        Box::new(self.expr(scope, sigs, Type::Int, depth + 1))
                    };
                    Expr::Binary {
                        op,
                        lhs,
                        rhs,
                        span: SPAN,
                    }
                }
                5 => Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(self.expr(scope, sigs, Type::Int, depth + 1)),
                    span: SPAN,
                },
                6 if self.config.arrays => {
                    // Array read; constant index unless trapping.
                    let index = self.array_index(scope, sigs);
                    Expr::Index {
                        name: "garr".into(),
                        index: Box::new(index),
                        span: SPAN,
                    }
                }
                6 => self.leaf(scope, ty),
                _ => {
                    // Call an int-returning lower procedure if possible;
                    // never inside a loop (keeps generated work bounded).
                    if !self.config.calls || scope.loop_depth > 0 {
                        return self.leaf(scope, ty);
                    }
                    let candidates: Vec<usize> = (0..scope.callable)
                        .filter(|&i| sigs[i].ret == Some(Type::Int))
                        .collect();
                    if candidates.is_empty() {
                        return self.leaf(scope, ty);
                    }
                    let target = candidates[self.rng.range_usize(0, candidates.len())];
                    let sig = sigs[target].clone();
                    let args = sig
                        .params
                        .iter()
                        .map(|&pty| self.expr(scope, sigs, pty, depth + 1))
                        .collect();
                    Expr::Call {
                        name: sig.name,
                        args,
                        span: SPAN,
                    }
                }
            },
            Type::Bool => match self.rng.range_usize(0, 6) {
                0 => self.leaf(scope, ty),
                1..=3 => {
                    let op = match self.rng.range_usize(0, 6) {
                        0 => BinOp::Eq,
                        1 => BinOp::Ne,
                        2 => BinOp::Lt,
                        3 => BinOp::Le,
                        4 => BinOp::Gt,
                        _ => BinOp::Ge,
                    };
                    Expr::Binary {
                        op,
                        lhs: Box::new(self.expr(scope, sigs, Type::Int, depth + 1)),
                        rhs: Box::new(self.expr(scope, sigs, Type::Int, depth + 1)),
                        span: SPAN,
                    }
                }
                4 => {
                    let op = if self.rng.bool_with(0.5) {
                        BinOp::And
                    } else {
                        BinOp::Or
                    };
                    Expr::Binary {
                        op,
                        lhs: Box::new(self.expr(scope, sigs, Type::Bool, depth + 1)),
                        rhs: Box::new(self.expr(scope, sigs, Type::Bool, depth + 1)),
                        span: SPAN,
                    }
                }
                _ => Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(self.expr(scope, sigs, Type::Bool, depth + 1)),
                    span: SPAN,
                },
            },
            Type::IntArray(_) => unreachable!("arrays are never expression-typed"),
        }
    }

    /// An index expression for the global array: a safe in-range constant
    /// normally, or — under [`Config::trapping`] — sometimes a computed
    /// expression that may land out of range at runtime.
    fn array_index(&mut self, scope: &Scope, sigs: &[GSig]) -> Expr {
        if self.config.trapping && self.rng.bool_with(0.3) {
            self.expr(
                scope,
                sigs,
                Type::Int,
                self.config.max_expr_depth.saturating_sub(1),
            )
        } else {
            Expr::Int(self.rng.range_i64(0, 8), SPAN)
        }
    }

    fn leaf(&mut self, scope: &Scope, ty: Type) -> Expr {
        // Prefer a variable when one of the right type is in scope.
        let gen_leaf = |g: &mut Gen| match ty {
            Type::Int => Expr::Int(g.rng.range_i64(-100, 100), SPAN),
            Type::Bool => Expr::Bool(g.rng.bool_with(0.5), SPAN),
            Type::IntArray(_) => unreachable!(),
        };
        if self.rng.bool_with(0.6) {
            if let Some((name, _)) = self.pick_scalar(scope, Some(ty), true) {
                return Expr::Var(name, SPAN);
            }
        }
        gen_leaf(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, sema};

    #[test]
    fn generated_programs_are_valid_and_terminate() {
        for seed in 0..50 {
            let ast = program(seed, &Config::default());
            let hir =
                sema::analyze(&ast).unwrap_or_else(|e| panic!("seed {seed}: sema failed: {e}"));
            let limits = eval::Limits {
                max_steps: 20_000_000,
                max_depth: 100,
            };
            eval::run_with_limits(&hir, limits)
                .unwrap_or_else(|e| panic!("seed {seed}: eval failed: {e}"));
        }
    }

    #[test]
    fn generated_programs_pretty_print_and_reparse() {
        for seed in 0..10 {
            let ast = program(seed, &Config::default());
            let text = crate::pretty::print(&ast);
            let reparsed = crate::parser::parse(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
            let h1 = sema::analyze(&ast).unwrap();
            let h2 = sema::analyze(&reparsed).unwrap();
            assert_eq!(
                eval::run(&h1).unwrap(),
                eval::run(&h2).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = program(7, &Config::default());
        let b = program(7, &Config::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = program(1, &Config::default());
        let b = program(2, &Config::default());
        assert_ne!(a, b);
    }

    #[test]
    fn larger_configs_generate_more_procs() {
        let cfg = Config {
            n_procs: 6,
            ..Config::default()
        };
        let ast = program(3, &cfg);
        assert_eq!(ast.procs.len(), 7); // 6 helpers + main
    }

    #[test]
    fn arrays_toggle_removes_indexing() {
        let cfg = Config {
            arrays: false,
            ..Config::default()
        };
        for seed in 0..20 {
            let text = crate::pretty::print(&program(seed, &cfg));
            // The only occurrence is the (unreferenced) global declaration.
            assert_eq!(text.matches("garr[").count(), 1, "seed {seed}:\n{text}");
        }
    }

    #[test]
    fn calls_toggle_removes_calls() {
        let cfg = Config {
            calls: false,
            ..Config::default()
        };
        for seed in 0..20 {
            let text = crate::pretty::print(&program(seed, &cfg));
            for p in 0..cfg.n_procs {
                // Every `pN(` occurrence must be the procedure header
                // itself, never a call site.
                assert_eq!(
                    text.matches(&format!("p{p}(")).count(),
                    text.matches(&format!("proc p{p}(")).count(),
                    "seed {seed}:\n{text}"
                );
            }
        }
    }

    #[test]
    fn div_mod_toggle_removes_division() {
        let cfg = Config {
            div_mod: false,
            ..Config::default()
        };
        for seed in 0..20 {
            let text = crate::pretty::print(&program(seed, &cfg));
            assert!(
                !text.contains(" / ") && !text.contains(" % "),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn loop_nesting_zero_removes_loops() {
        let cfg = Config {
            max_loop_nesting: 0,
            ..Config::default()
        };
        for seed in 0..20 {
            let text = crate::pretty::print(&program(seed, &cfg));
            assert!(
                !text.contains("for ") && !text.contains("while "),
                "seed {seed}:\n{text}"
            );
        }
    }

    #[test]
    fn extra_writes_raise_io_volume() {
        let base = Config::default();
        let heavy = Config {
            extra_writes: 10,
            ..base
        };
        let count = |cfg: &Config| {
            crate::pretty::print(&program(11, cfg))
                .matches("write ")
                .count()
        };
        assert!(count(&heavy) >= count(&base) + 10);
    }

    #[test]
    fn trapping_programs_still_terminate() {
        let cfg = Config {
            trapping: true,
            ..Config::default()
        };
        let limits = eval::Limits {
            max_steps: 20_000_000,
            max_depth: 100,
        };
        let mut trapped = 0;
        for seed in 0..60 {
            let ast = program(seed, &cfg);
            let hir =
                sema::analyze(&ast).unwrap_or_else(|e| panic!("seed {seed}: sema failed: {e}"));
            match eval::run_with_limits(&hir, limits) {
                Ok(_) => {}
                Err(eval::EvalError::DivByZero | eval::EvalError::IndexOutOfBounds { .. }) => {
                    trapped += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected limit trap {e}"),
            }
        }
        // The profile must actually produce some trapping programs, or
        // trap-class coverage would be vacuous.
        assert!(trapped > 0, "no trapping program in 60 seeds");
    }
}
