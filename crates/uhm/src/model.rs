//! The analytic performance model of Section 7.
//!
//! Three machines are modelled by their average DIR-instruction
//! interpretation time:
//!
//! * `T1` — conventional UHM: `s2·t2 + d + x`;
//! * `T2` — UHM with a DTB: `s1·τD + (1−hD)·s2·t2 + (1−hD)(d + g) + x`;
//! * `T3` — UHM with an instruction cache:
//!   `hc·s2·τD + (1−hc)·s2·t2 + d + x`;
//!
//! with the figures of merit `F1 = (T3 − T2)/T2 × 100` (the percentage
//! degradation from using the DTB's memory as a plain instruction cache,
//! Table 2) and `F2 = (T1 − T2)/T2 × 100` (the degradation from having no
//! DTB at all, Table 3).
//!
//! ## The paper's two inconsistent parameterisations
//!
//! The report's *printed* closed forms — `F1 = (0.4 + 0.6d)/(8 + 0.4d + x)`
//! and `F2 = (7.4 + 0.6d)/(8 + 0.4d + x)` (both ×100) — reproduce its
//! Tables 2 and 3 to the last digit. But its *stated* parameter values
//! (`t1 = 1`, `τD = 2`, `t2 = 10`, `g = 1.5d`, `s1 = 3`, `s2 = 1`,
//! `hc = 0.9`, `hD = 0.8`) substituted into the symbolic model give
//! `T2 = 8 + 0.5d + x`, `T1 = 10 + d + x`, `T3 = 2.8 + d + x` — different
//! coefficients. Both parameterisations are provided:
//! [`Params::paper_stated`] (symbolic) and [`printed`] (the closed forms
//! behind the published tables). The qualitative shape — the DTB wins,
//! more so for large `d`, less so for large `x` — holds under both, and
//! under full simulation.
//!
//! [`Params::from_reports`] extracts every parameter from measured
//! machine runs, closing the loop the paper left open ("the evaluation
//! ... is hampered by the lack of suitable statistics").

use crate::machine::Mode;
use crate::metrics::Report;

/// Parameters of the analytic model.
///
/// The `lookup` and `steering` terms extend the paper's model so that it
/// can also be validated against the cycle-accurate simulation (which
/// charges an explicit τD associative-array probe per INTERP and `t1` per
/// steering word in the non-DTB machines); both are zero in the paper
/// presets, reducing the formulas exactly to the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Level-1 access time `t1`.
    pub t1: f64,
    /// Level-2 access time `t2`.
    pub t2: f64,
    /// DTB/cache access time `τD`.
    pub tau_d: f64,
    /// Average decode time per DIR instruction `d`.
    pub d: f64,
    /// Average generate-and-store time per translated instruction `g`.
    pub g: f64,
    /// Average semantic time per DIR instruction `x`.
    pub x: f64,
    /// Average level-1/DTB references per DIR instruction `s1`.
    pub s1: f64,
    /// Average level-2 references per DIR instruction `s2`.
    pub s2: f64,
    /// Instruction-cache hit ratio `hc`.
    pub hc: f64,
    /// DTB hit ratio `hD`.
    pub hd: f64,
    /// Per-INTERP associative lookup time (0 in the paper's model).
    pub lookup: f64,
    /// Per-instruction steering time in non-DTB machines (0 in the
    /// paper's model, which folds dispatch into `x`).
    pub steering: f64,
}

impl Params {
    /// The paper's stated parameter values for given `d` and `x`:
    /// `τD = 2`, `t2 = 10`, `g = 1.5 d`, `s1 = 3`, `s2 = 1`, `hc = 0.9`,
    /// `hD = 0.8`.
    pub fn paper_stated(d: f64, x: f64) -> Params {
        Params {
            t1: 1.0,
            t2: 10.0,
            tau_d: 2.0,
            d,
            g: 1.5 * d,
            x,
            s1: 3.0,
            s2: 1.0,
            hc: 0.9,
            hd: 0.8,
            lookup: 0.0,
            steering: 0.0,
        }
    }

    /// `T1`: the conventional UHM.
    pub fn time_conventional(&self) -> f64 {
        self.s2 * self.t2 + self.d + self.steering + self.x
    }

    /// `T2`: the UHM with a DTB.
    pub fn time_dtb(&self) -> f64 {
        self.lookup
            + self.s1 * self.tau_d
            + (1.0 - self.hd) * self.s2 * self.t2
            + (1.0 - self.hd) * (self.d + self.g)
            + self.x
    }

    /// `T3`: the UHM with an instruction cache.
    pub fn time_cache(&self) -> f64 {
        self.hc * self.s2 * self.tau_d
            + (1.0 - self.hc) * self.s2 * self.t2
            + self.d
            + self.steering
            + self.x
    }

    /// `F1 = (T3 − T2)/T2 × 100`: percentage increase in interpretation
    /// time from using the DTB as a plain cache (Table 2).
    pub fn f1(&self) -> f64 {
        100.0 * (self.time_cache() - self.time_dtb()) / self.time_dtb()
    }

    /// `F2 = (T1 − T2)/T2 × 100`: percentage increase from not using a
    /// DTB (Table 3).
    pub fn f2(&self) -> f64 {
        100.0 * (self.time_conventional() - self.time_dtb()) / self.time_dtb()
    }

    /// Extracts all parameters from measured runs of the same machine in
    /// the three modes.
    ///
    /// # Panics
    ///
    /// Panics if `dtb_report` has no DTB statistics or `cache_report` no
    /// cache statistics (i.e. the reports came from the wrong modes).
    pub fn from_reports(
        costs: &crate::config::CostModel,
        interp_report: &Report,
        dtb_report: &Report,
        cache_report: &Report,
    ) -> Params {
        let im = &interp_report.metrics;
        let dm = &dtb_report.metrics;
        let cm = &cache_report.metrics;
        let dtb = dm.dtb.expect("dtb_report must come from Mode::Dtb");
        let cache = cm.icache.expect("cache_report must come from Mode::ICache");
        Params {
            t1: costs.mem.t1 as f64,
            t2: costs.mem.t2 as f64,
            tau_d: costs.mem.tau_d as f64,
            // d and g measured where decoding/translation actually happens.
            d: if dm.decoded > 0 {
                dm.mean_decode()
            } else {
                im.mean_decode()
            },
            g: dm.mean_generate(),
            x: im.mean_semantic(),
            s1: dm.mean_s1(),
            s2: im.mean_s2(),
            hc: cache.hit_ratio(),
            hd: dtb.hit_ratio(),
            lookup: costs.mem.tau_d as f64,
            steering: im.mean_s1() * costs.mem.t1 as f64,
        }
    }

    /// The model's prediction for one machine mode.
    pub fn predict(&self, mode: &ModeKind) -> f64 {
        match mode {
            ModeKind::Interpreter => self.time_conventional(),
            ModeKind::Dtb => self.time_dtb(),
            ModeKind::ICache => self.time_cache(),
        }
    }
}

/// Machine-mode discriminant for [`Params::predict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Conventional UHM.
    Interpreter,
    /// UHM with DTB.
    Dtb,
    /// UHM with instruction cache.
    ICache,
}

impl From<&Mode> for ModeKind {
    fn from(mode: &Mode) -> ModeKind {
        match mode {
            Mode::Interpreter => ModeKind::Interpreter,
            Mode::Dtb(_) | Mode::TwoLevelDtb { .. } => ModeKind::Dtb,
            Mode::ICache { .. } => ModeKind::ICache,
        }
    }
}

/// The closed forms printed in the paper, which its Tables 2 and 3 match
/// exactly: `T1 = 15.4 + d + x`, `T2 = 8 + 0.4d + x`, `T3 = 8.4 + d + x`.
pub mod printed {
    /// `T1` under the printed coefficients.
    pub fn time_conventional(d: f64, x: f64) -> f64 {
        15.4 + d + x
    }

    /// `T2` under the printed coefficients.
    pub fn time_dtb(d: f64, x: f64) -> f64 {
        8.0 + 0.4 * d + x
    }

    /// `T3` under the printed coefficients.
    pub fn time_cache(d: f64, x: f64) -> f64 {
        8.4 + d + x
    }

    /// Table 2's `F1 = (0.4 + 0.6 d)/(8 + 0.4 d + x) × 100`.
    pub fn f1(d: f64, x: f64) -> f64 {
        100.0 * (time_cache(d, x) - time_dtb(d, x)) / time_dtb(d, x)
    }

    /// Table 3's `F2 = (7.4 + 0.6 d)/(8 + 0.4 d + x) × 100`.
    pub fn f2(d: f64, x: f64) -> f64 {
        100.0 * (time_conventional(d, x) - time_dtb(d, x)) / time_dtb(d, x)
    }
}

/// The published evaluation grid and table values, for regeneration and
/// regression tests.
pub mod published {
    /// Decode-time axis of Tables 2 and 3.
    pub const D_VALUES: [f64; 3] = [10.0, 20.0, 30.0];
    /// Semantic-time axis of Tables 2 and 3.
    pub const X_VALUES: [f64; 6] = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0];

    /// Table 2 as printed (rows: d = 10, 20, 30; columns: x = 5..30).
    pub const TABLE2: [[f64; 6]; 3] = [
        [37.65, 29.09, 23.7, 20.0, 17.3, 15.24],
        [59.05, 47.69, 40.0, 34.44, 30.24, 26.96],
        [73.6, 61.33, 52.57, 46.0, 40.89, 36.8],
    ];

    /// Table 3 as printed.
    pub const TABLE3: [[f64; 6]; 3] = [
        [78.82, 60.91, 49.63, 41.88, 36.22, 31.90],
        [92.38, 74.62, 62.58, 53.89, 47.32, 42.17],
        [101.6, 84.67, 72.57, 63.5, 56.44, 50.8],
    ];
}

/// Computes a full F1/F2 grid under a model function.
pub fn grid(f: impl Fn(f64, f64) -> f64) -> Vec<Vec<f64>> {
    published::D_VALUES
        .iter()
        .map(|&d| published::X_VALUES.iter().map(|&x| f(d, x)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printed_formulas_reproduce_table2_exactly() {
        for (i, &d) in published::D_VALUES.iter().enumerate() {
            for (j, &x) in published::X_VALUES.iter().enumerate() {
                let got = printed::f1(d, x);
                let want = published::TABLE2[i][j];
                assert!(
                    (got - want).abs() < 0.01,
                    "F1(d={d}, x={x}) = {got}, paper prints {want}"
                );
            }
        }
    }

    #[test]
    fn printed_formulas_reproduce_table3_exactly() {
        for (i, &d) in published::D_VALUES.iter().enumerate() {
            for (j, &x) in published::X_VALUES.iter().enumerate() {
                let got = printed::f2(d, x);
                let want = published::TABLE3[i][j];
                assert!(
                    (got - want).abs() < 0.01,
                    "F2(d={d}, x={x}) = {got}, paper prints {want}"
                );
            }
        }
    }

    #[test]
    fn stated_params_reduce_to_documented_coefficients() {
        let p = Params::paper_stated(10.0, 5.0);
        assert!((p.time_conventional() - (10.0 + 10.0 + 5.0)).abs() < 1e-9);
        assert!((p.time_dtb() - (8.0 + 0.5 * 10.0 + 5.0)).abs() < 1e-9);
        assert!((p.time_cache() - (2.8 + 10.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn qualitative_shape_holds_under_both_parameterisations() {
        for d in [10.0, 20.0, 30.0] {
            for x in [5.0, 15.0, 30.0] {
                // DTB always wins.
                let p = Params::paper_stated(d, x);
                assert!(p.f2() > 0.0, "stated: DTB loses at d={d} x={x}");
                assert!(printed::f2(d, x) > 0.0);
                assert!(printed::f1(d, x) > 0.0);
            }
            // Benefit grows with d at fixed x...
            assert!(printed::f2(d + 10.0, 5.0) > printed::f2(d, 5.0));
            let a = Params::paper_stated(d, 5.0);
            let b = Params::paper_stated(d + 10.0, 5.0);
            assert!(b.f2() > a.f2());
            // ...and shrinks with x at fixed d.
            assert!(printed::f2(d, 30.0) < printed::f2(d, 5.0));
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(printed::f1);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|row| row.len() == 6));
    }

    #[test]
    fn predict_dispatches_by_mode() {
        let p = Params::paper_stated(10.0, 5.0);
        assert_eq!(p.predict(&ModeKind::Interpreter), p.time_conventional());
        assert_eq!(p.predict(&ModeKind::Dtb), p.time_dtb());
        assert_eq!(p.predict(&ModeKind::ICache), p.time_cache());
    }
}
