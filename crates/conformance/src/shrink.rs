//! Delta-debugging shrinker over the RAUL AST.
//!
//! Given a program on which some failure predicate holds (for the
//! conformance plane: "the oracle reports a divergence"), the shrinker
//! greedily applies source-level reductions — dropping procedures,
//! declarations and statements, unwrapping control flow, replacing
//! subexpressions by their operands or by literals — keeping a
//! candidate only when the predicate *still* holds and the program got
//! strictly smaller. Invalid candidates cost one predicate call and are
//! rejected by it (the oracle refuses programs that fail semantic
//! analysis), so no reduction here needs to preserve well-formedness.
//!
//! Progress is measured by the lexicographic pair (total AST nodes,
//! non-literal nodes): literal substitutions that keep the node count
//! still count as progress, and every accepted step decreases the pair,
//! so the loop terminates without a fuel hack. `max_tests` bounds the
//! predicate-call budget anyway, since each call runs the full oracle.

use hlr::ast::{Block, Expr, Program, Stmt};
use hlr::Span;

/// Span attached to synthesized nodes; shrunk programs are re-rendered
/// through the pretty printer, so positions are meaningless.
const SPAN: Span = Span { start: 0, end: 0 };

/// Counters describing one shrink run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Predicate invocations spent.
    pub tests: usize,
    /// Reductions accepted.
    pub accepted: usize,
}

/// The size measure the shrinker decreases: `(nodes, non_literals)`,
/// compared lexicographically.
pub fn size(program: &Program) -> (u64, u64) {
    fn expr_size(e: &Expr, nodes: &mut u64, hard: &mut u64) {
        walk_expr(e, &mut |e| {
            *nodes += 1;
            if !matches!(e, Expr::Int(..) | Expr::Bool(..)) {
                *hard += 1;
            }
        });
    }
    fn stmt_size(s: &Stmt, nodes: &mut u64, hard: &mut u64) {
        *nodes += 1;
        if !matches!(s, Stmt::Skip { .. }) {
            *hard += 1;
        }
        match s {
            Stmt::Block(b) => block_size(b, nodes, hard),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                expr_size(cond, nodes, hard);
                stmt_size(then_branch, nodes, hard);
                if let Some(e) = else_branch {
                    stmt_size(e, nodes, hard);
                }
            }
            Stmt::While { cond, body, .. } => {
                expr_size(cond, nodes, hard);
                stmt_size(body, nodes, hard);
            }
            Stmt::For { from, to, body, .. } => {
                expr_size(from, nodes, hard);
                expr_size(to, nodes, hard);
                stmt_size(body, nodes, hard);
            }
            _ => {
                for e in stmt_exprs(s) {
                    expr_size(e, nodes, hard);
                }
            }
        }
    }
    // Declarations count too: dropping an (unused) local is progress the
    // greedy loop must be allowed to take.
    fn block_size(b: &Block, nodes: &mut u64, hard: &mut u64) {
        for d in &b.decls {
            *nodes += 1;
            *hard += 1;
            if let Some(init) = &d.init {
                expr_size(init, nodes, hard);
            }
        }
        for s in &b.stmts {
            stmt_size(s, nodes, hard);
        }
    }
    let mut nodes = 0u64;
    let mut hard = 0u64;
    for g in &program.globals {
        nodes += 1;
        hard += 1;
        if let Some(init) = &g.init {
            expr_size(init, &mut nodes, &mut hard);
        }
    }
    for p in &program.procs {
        nodes += 1 + p.params.len() as u64;
        hard += 1 + p.params.len() as u64;
        block_size(&p.body, &mut nodes, &mut hard);
    }
    (nodes, hard)
}

/// Shrinks `program` while `fails` holds, spending at most `max_tests`
/// predicate calls. The caller must have established `fails(program)`
/// already; the shrinker never re-tests the starting point.
///
/// Returns the smallest failing program found and the spend counters.
pub fn shrink(
    program: &Program,
    max_tests: usize,
    mut fails: impl FnMut(&Program) -> bool,
) -> (Program, ShrinkStats) {
    let mut current = program.clone();
    let mut stats = ShrinkStats::default();
    'outer: loop {
        let bar = size(&current);
        for candidate in candidates(&current) {
            if stats.tests >= max_tests {
                break 'outer;
            }
            if size(&candidate) >= bar {
                continue;
            }
            stats.tests += 1;
            if fails(&candidate) {
                stats.accepted += 1;
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    (current, stats)
}

/// All single-step reductions of `program`, in deterministic order:
/// coarse passes (whole procedures, declarations, statements) before
/// fine ones (control-flow unwrapping, expression substitution), so the
/// greedy loop takes big bites first.
fn candidates(program: &Program) -> Vec<Program> {
    let mut out = Vec::new();

    // Drop whole procedures (never `main` — sema requires it).
    for i in 0..program.procs.len() {
        if program.procs[i].name != "main" {
            let mut c = program.clone();
            c.procs.remove(i);
            out.push(c);
        }
    }

    // Drop global declarations.
    for i in 0..program.globals.len() {
        let mut c = program.clone();
        c.globals.remove(i);
        out.push(c);
    }

    // Drop one statement (every statement-vector slot, any nesting).
    for site in 0.. {
        let mut c = program.clone();
        let mut hit = false;
        let mut n = 0usize;
        edit_stmt_vecs(&mut c, &mut |stmts, i| {
            if n == site {
                stmts.remove(i);
                hit = true;
            }
            n += 1;
            hit
        });
        if !hit {
            break;
        }
        out.push(c);
    }

    // Drop one block-local declaration.
    for site in 0.. {
        let mut c = program.clone();
        let mut hit = false;
        let mut n = 0usize;
        edit_decl_vecs(&mut c, &mut |decls, i| {
            if n == site {
                decls.remove(i);
                hit = true;
            }
            n += 1;
            hit
        });
        if !hit {
            break;
        }
        out.push(c);
    }

    // Rewrite one statement in place (pre-order sites; several variants
    // per site).
    for site in 0.. {
        let Some(original) = nth_stmt(program, site) else {
            break;
        };
        for replacement in stmt_rewrites(&original) {
            let mut c = program.clone();
            set_nth_stmt(&mut c, site, replacement);
            out.push(c);
        }
    }

    // Rewrite one expression in place.
    for site in 0.. {
        let Some(original) = nth_expr(program, site) else {
            break;
        };
        for replacement in expr_rewrites(&original) {
            let mut c = program.clone();
            set_nth_expr(&mut c, site, replacement);
            out.push(c);
        }
    }

    out
}

/// The in-place rewrites that might preserve a failure: unwrap control
/// flow, drop an `else`, collapse to `skip`.
fn stmt_rewrites(stmt: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match stmt {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            out.push((**then_branch).clone());
            if let Some(e) = else_branch {
                out.push((**e).clone());
                let mut keep = stmt.clone();
                if let Stmt::If { else_branch, .. } = &mut keep {
                    *else_branch = None;
                }
                out.push(keep);
            }
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => {
            out.push((**body).clone());
        }
        Stmt::Block(b) if b.decls.is_empty() && b.stmts.len() == 1 => {
            out.push(b.stmts[0].clone());
        }
        _ => {}
    }
    if !matches!(stmt, Stmt::Skip { .. }) {
        out.push(Stmt::Skip { span: SPAN });
    }
    out
}

/// Expression reductions: hoist an operand, then literal substitutions
/// of both types (the wrong-typed ones are rejected by sema via the
/// predicate, which is cheaper than tracking types here).
fn expr_rewrites(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match expr {
        Expr::Binary { lhs, rhs, .. } => {
            out.push((**lhs).clone());
            out.push((**rhs).clone());
        }
        Expr::Unary { operand, .. } => out.push((**operand).clone()),
        Expr::Index { index, .. } => out.push((**index).clone()),
        Expr::Call { args, .. } => out.extend(args.iter().cloned()),
        _ => {}
    }
    if !matches!(expr, Expr::Int(..) | Expr::Bool(..)) {
        out.push(Expr::Int(0, SPAN));
        out.push(Expr::Int(1, SPAN));
        out.push(Expr::Bool(true, SPAN));
        out.push(Expr::Bool(false, SPAN));
    }
    out
}

// ---- walkers ---------------------------------------------------------

/// Calls `f(stmts, i)` for every statement-vector slot, depth-first.
/// `f` returns `true` once it has edited; the walk stops there (indices
/// into a vector being mutated must not advance past the edit).
fn edit_stmt_vecs(program: &mut Program, f: &mut impl FnMut(&mut Vec<Stmt>, usize) -> bool) {
    fn block(b: &mut Block, f: &mut impl FnMut(&mut Vec<Stmt>, usize) -> bool) -> bool {
        let mut i = 0;
        while i < b.stmts.len() {
            if f(&mut b.stmts, i) {
                return true;
            }
            if stmt(&mut b.stmts[i], f) {
                return true;
            }
            i += 1;
        }
        false
    }
    fn stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Vec<Stmt>, usize) -> bool) -> bool {
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt(then_branch, f) || else_branch.as_mut().is_some_and(|e| stmt(e, f)),
            Stmt::While { body, .. } | Stmt::For { body, .. } => stmt(body, f),
            Stmt::Block(b) => block(b, f),
            _ => false,
        }
    }
    for p in &mut program.procs {
        if block(&mut p.body, f) {
            return;
        }
    }
}

/// Calls `f(decls, i)` for every block-local declaration slot. Same
/// stop-on-edit contract as [`edit_stmt_vecs`].
fn edit_decl_vecs(
    program: &mut Program,
    f: &mut impl FnMut(&mut Vec<hlr::ast::VarDecl>, usize) -> bool,
) {
    fn block(
        b: &mut Block,
        f: &mut impl FnMut(&mut Vec<hlr::ast::VarDecl>, usize) -> bool,
    ) -> bool {
        let mut i = 0;
        while i < b.decls.len() {
            if f(&mut b.decls, i) {
                return true;
            }
            i += 1;
        }
        for s in &mut b.stmts {
            if stmt(s, f) {
                return true;
            }
        }
        false
    }
    fn stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Vec<hlr::ast::VarDecl>, usize) -> bool) -> bool {
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt(then_branch, f) || else_branch.as_mut().is_some_and(|e| stmt(e, f)),
            Stmt::While { body, .. } | Stmt::For { body, .. } => stmt(body, f),
            Stmt::Block(b) => block(b, f),
            _ => false,
        }
    }
    for p in &mut program.procs {
        if block(&mut p.body, f) {
            return;
        }
    }
}

/// Visits every statement pre-order (vector slots *and* boxed children),
/// applying `f`; stops when `f` returns `true`.
fn edit_stmts(program: &mut Program, f: &mut impl FnMut(&mut Stmt) -> bool) {
    fn stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Stmt) -> bool) -> bool {
        if f(s) {
            return true;
        }
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt(then_branch, f) || else_branch.as_mut().is_some_and(|e| stmt(e, f)),
            Stmt::While { body, .. } | Stmt::For { body, .. } => stmt(body, f),
            Stmt::Block(b) => b.stmts.iter_mut().any(|s| stmt(s, f)),
            _ => false,
        }
    }
    for p in &mut program.procs {
        if p.body.stmts.iter_mut().any(|s| stmt(s, f)) {
            return;
        }
    }
}

fn nth_stmt(program: &Program, site: usize) -> Option<Stmt> {
    let mut c = program.clone();
    let mut n = 0usize;
    let mut found = None;
    edit_stmts(&mut c, &mut |s| {
        if n == site {
            found = Some(s.clone());
        }
        n += 1;
        found.is_some()
    });
    found
}

fn set_nth_stmt(program: &mut Program, site: usize, replacement: Stmt) {
    let mut n = 0usize;
    edit_stmts(program, &mut |s| {
        if n == site {
            *s = replacement.clone();
            n += 1;
            return true;
        }
        n += 1;
        false
    });
}

/// The direct subexpressions of a statement, in source order.
fn stmt_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match stmt {
        Stmt::Assign { value, .. } | Stmt::Write { value, .. } => vec![value],
        Stmt::AssignIndexed { index, value, .. } => vec![index, value],
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => vec![cond],
        Stmt::For { from, to, .. } => vec![from, to],
        Stmt::Call { args, .. } => args.iter().collect(),
        Stmt::Return { value, .. } => value.iter().collect(),
        Stmt::Block(b) => b.decls.iter().filter_map(|d| d.init.as_ref()).collect(),
        Stmt::Skip { .. } => Vec::new(),
    }
}

fn stmt_exprs_mut(stmt: &mut Stmt) -> Vec<&mut Expr> {
    match stmt {
        Stmt::Assign { value, .. } | Stmt::Write { value, .. } => vec![value],
        Stmt::AssignIndexed { index, value, .. } => vec![index, value],
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => vec![cond],
        Stmt::For { from, to, .. } => vec![from, to],
        Stmt::Call { args, .. } => args.iter_mut().collect(),
        Stmt::Return { value, .. } => value.iter_mut().collect(),
        Stmt::Block(b) => b.decls.iter_mut().filter_map(|d| d.init.as_mut()).collect(),
        Stmt::Skip { .. } => Vec::new(),
    }
}

fn walk_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, f),
        Expr::Index { index, .. } => walk_expr(index, f),
        Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
        _ => {}
    }
}

/// Visits every expression pre-order across the whole program
/// (global initialisers, block-local initialisers, statement operands,
/// nested subexpressions); stops when `f` returns `true`.
fn edit_exprs(program: &mut Program, f: &mut impl FnMut(&mut Expr) -> bool) {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
        if f(e) {
            return true;
        }
        match e {
            Expr::Binary { lhs, rhs, .. } => expr(lhs, f) || expr(rhs, f),
            Expr::Unary { operand, .. } => expr(operand, f),
            Expr::Index { index, .. } => expr(index, f),
            Expr::Call { args, .. } => args.iter_mut().any(|a| expr(a, f)),
            _ => false,
        }
    }
    for g in &mut program.globals {
        if let Some(init) = &mut g.init {
            if expr(init, f) {
                return;
            }
        }
    }
    let mut done = false;
    edit_stmts(program, &mut |s| {
        done = stmt_exprs_mut(s).into_iter().any(|e| expr(e, f));
        done
    });
}

fn nth_expr(program: &Program, site: usize) -> Option<Expr> {
    let mut c = program.clone();
    let mut n = 0usize;
    let mut found = None;
    edit_exprs(&mut c, &mut |e| {
        if n == site {
            found = Some(e.clone());
        }
        n += 1;
        found.is_some()
    });
    found
}

fn set_nth_expr(program: &mut Program, site: usize, replacement: Expr) {
    let mut n = 0usize;
    edit_exprs(program, &mut |e| {
        if n == site {
            *e = replacement.clone();
            n += 1;
            return true;
        }
        n += 1;
        false
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A predicate usable on arbitrary candidates: well-formed AND the
    /// pretty-printed source still contains a `%`.
    fn still_has_mod(p: &Program) -> bool {
        hlr::sema::analyze(p).is_ok() && hlr::pretty::print(p).contains('%')
    }

    fn noisy_mod_program() -> Program {
        let src = "int g := 4;\n\
                   int arr[6];\n\
                   proc helper(int a) -> int begin return a + 2; end\n\
                   proc main() begin\n\
                     int i; int acc := 0;\n\
                     for i := 0 to 5 do begin\n\
                       arr[i % 6] := helper(i) * g;\n\
                       if arr[i % 6] > 4 then acc := acc + arr[i % 6];\n\
                       else acc := acc - 1;\n\
                     end\n\
                     while acc > 0 do acc := acc - 3;\n\
                     write acc; write g % 3;\n\
                   end";
        hlr::parser::parse(src).expect("fixture parses")
    }

    #[test]
    fn shrinks_to_a_minimal_mod_program() {
        let start = noisy_mod_program();
        assert!(still_has_mod(&start));
        let (small, stats) = shrink(&start, 20_000, still_has_mod);
        assert!(still_has_mod(&small), "shrunk program must keep failing");
        assert!(stats.accepted > 0, "no reduction accepted");
        assert!(
            size(&small) < size(&start),
            "{:?} !< {:?}",
            size(&small),
            size(&start)
        );
        let text = hlr::pretty::print(&small);
        assert!(
            text.lines().count() <= 10,
            "expected a tiny repro, got:\n{text}"
        );
        // The minimal shape is main + one statement keeping the `%`.
        assert_eq!(small.procs.len(), 1);
        assert!(small.globals.is_empty());
    }

    #[test]
    fn shrink_respects_the_test_budget() {
        let start = noisy_mod_program();
        let (_, stats) = shrink(&start, 7, still_has_mod);
        assert!(stats.tests <= 7);
    }

    #[test]
    fn size_orders_literal_substitution_as_progress() {
        let a = hlr::parser::parse("proc main() begin write 1 + 2; end").unwrap();
        let b = hlr::parser::parse("proc main() begin write 3; end").unwrap();
        assert!(size(&b) < size(&a));
    }

    #[test]
    fn already_minimal_programs_are_fixpoints() {
        let p = hlr::parser::parse("proc main() begin write 0 % 1; end").unwrap();
        let (small, _) = shrink(&p, 20_000, still_has_mod);
        let text = hlr::pretty::print(&small);
        assert!(text.contains('%'), "{text}");
        assert_eq!(small.procs.len(), 1);
    }
}
