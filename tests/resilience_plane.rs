//! Integration tests for the resilience plane: backoff-schedule
//! properties (satellite of the supervision work — every schedule must
//! be monotone, jitter-bounded, and terminate within the attempt cap),
//! plus end-to-end supervised pool behavior under chaos: budgets preempt
//! runaway tenants, retries recover transient failures bit-identically,
//! and shedding/quarantine account for every submitted tenant.

use std::sync::Arc;

use dir::encode::SchemeKind;
use uhm::resilience::{BackoffPolicy, ChaosConfig, Supervisor};
use uhm::{Budget, DtbConfig, Machine, MachinePool, Mode, TenantOutcome};

/// Property: for a broad sweep of policies, seeds and keys, every
/// backoff schedule is monotonically non-decreasing, every delay stays
/// under the jittered cap, and the schedule has exactly `attempts - 1`
/// entries (retrying terminates within the attempt cap).
#[test]
fn backoff_schedules_are_monotone_bounded_and_finite() {
    let mut rng = hlr::rng::Rng::new(0xBAC0FF);
    for _ in 0..200 {
        let policy = BackoffPolicy {
            max_attempts: rng.range_u64(1, 9) as u32,
            base_ns: rng.range_u64(1, 10_000_000),
            cap_ns: rng.range_u64(1, 1_000_000_000),
            jitter_percent: rng.range_u64(0, 101),
            seed: rng.next_u64(),
        };
        // The cap applies to the nominal delay; jitter may push past it
        // but never past cap * (1 + jitter%).
        let ceiling = policy
            .cap_ns
            .saturating_add(policy.cap_ns / 100 * policy.jitter_percent);
        for key in 0..8 {
            let schedule = policy.schedule(key);
            assert_eq!(
                schedule.len(),
                policy.attempts() as usize - 1,
                "one delay per retry, none after the final attempt: {policy:?}"
            );
            let mut prev = 0;
            for &delay in &schedule {
                assert!(
                    delay >= prev,
                    "non-monotone schedule {schedule:?} ({policy:?})"
                );
                assert!(
                    delay <= ceiling,
                    "delay {delay} exceeds jittered cap {ceiling} ({policy:?})"
                );
                prev = delay;
            }
            // Schedules are a pure function of (policy, key).
            assert_eq!(schedule, policy.schedule(key));
        }
    }
}

/// Zero jitter reduces the schedule to capped pure exponential backoff.
#[test]
fn zero_jitter_is_pure_capped_exponential() {
    let policy = BackoffPolicy {
        max_attempts: 6,
        base_ns: 1_000,
        cap_ns: 6_000,
        jitter_percent: 0,
        seed: 99,
    };
    assert_eq!(policy.schedule(0), vec![1_000, 2_000, 4_000, 6_000, 6_000]);
}

fn machine_for(src: &str) -> Arc<Machine> {
    let hir = hlr::compile(src).expect("test sources compile");
    let mut m = Machine::new(&dir::compiler::compile(&hir), SchemeKind::Packed);
    m.freeze_translations();
    Arc::new(m)
}

fn fleet_pool(workers: usize) -> MachinePool {
    let sources = [
        "proc main() begin int i := 0; while i < 30 do begin write i * i; i := i + 1; end end",
        "proc main() begin write 6 * 7; end",
        "proc main() begin int i := 0; while i < 200 do begin write i; i := i + 1; end end",
    ];
    let machines: Vec<Arc<Machine>> = sources.iter().map(|s| machine_for(s)).collect();
    let mut pool = MachinePool::new(workers);
    for t in 0..9 {
        pool.push(
            format!("tenant-{t}"),
            Arc::clone(&machines[t % machines.len()]),
            if t % 2 == 0 {
                Mode::Dtb(DtbConfig::with_capacity(32))
            } else {
                Mode::Interpreter
            },
        );
    }
    pool
}

fn supervisor() -> Supervisor {
    Supervisor {
        budget: Budget::fuel(2_000_000),
        ..Supervisor::default()
    }
}

/// End to end: a supervised pool under full-tilt chaos (crashes, hangs,
/// corrupted shared artifacts) loses no tenant, accounts every outcome,
/// and every surviving tenant's report is bit-identical to the chaos-off
/// run.
#[test]
fn supervised_pool_survives_chaos_bit_identically() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut reference = fleet_pool(3);
    reference.set_supervisor(Some(supervisor()));
    let baseline = reference.run();
    assert_eq!(baseline.outcome_count("completed"), 9);

    let mut pool = fleet_pool(3);
    pool.set_supervisor(Some(supervisor()));
    pool.set_chaos(Some(ChaosConfig {
        seed: 0x5EED,
        worker_crash_rate: 0.5,
        hang_rate: 0.5,
        artifact_corruption_rate: 0.5,
    }));
    let run = pool.run();
    std::panic::set_hook(hook);

    assert_eq!(run.results.len(), 9, "no tenant is silently lost");
    let accounted: usize = [
        "completed",
        "trapped",
        "panicked",
        "timed_out",
        "shed",
        "quarantined",
    ]
    .iter()
    .map(|s| run.outcome_count(s))
    .sum();
    assert_eq!(accounted, 9, "every outcome is accounted");
    for r in &run.results {
        if matches!(r.outcome, TenantOutcome::Completed(_)) {
            let reference = baseline.results.iter().find(|q| q.tenant == r.tenant);
            assert_eq!(
                Some(&r.outcome),
                reference.map(|q| &q.outcome),
                "survivor {} must match the chaos-off run bit for bit",
                r.name
            );
        }
    }
}
