//! Regenerates **Table 1**: equivalence of a PSDER call sequence to more
//! compact, encoded machine formats (PDP-11 two-operand and System/360 RX
//! without the index field).
//!
//! Run with `cargo run -p uhm-bench --bin table1`.
//! With `--json`, emits a versioned RunReport instead of the text table.

use telemetry::Json;
use uhm_bench::{bench_report, json_flag};

fn main() {
    if json_flag() {
        let rows: Vec<Json> = dir::formats::table1()
            .into_iter()
            .map(|row| {
                Json::obj(vec![
                    ("representation", row.representation.into()),
                    ("total_bits", row.total_bits.into()),
                    (
                        "items",
                        Json::Arr(row.items.iter().map(|i| i.clone().into()).collect()),
                    ),
                ])
            })
            .collect();
        let config = Json::obj(vec![("statement", "R3 := R3 + base[disp]".into())]);
        println!("{}", bench_report("table1", config, rows).render());
        return;
    }
    println!("Table 1 — Equivalence of a PSDER sequence to more compact, encoded formats");
    println!("Statement: R3 := R3 + base[disp]\n");
    for row in dir::formats::table1() {
        println!("{} ({} bits total)", row.representation, row.total_bits);
        for item in &row.items {
            println!("    {item}");
        }
        println!();
    }
    println!("The paper's point: the same semantics shrink monotonically as the");
    println!("representation moves from explicit procedure calls (PSDER) to ever");
    println!("more heavily encoded instruction formats — at the price of decoding.");
}
