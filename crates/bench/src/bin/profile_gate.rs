//! **E18 — the profiling gate:** bounds the host-side cost of the
//! always-on counter plane and proves that profiling never changes what
//! it measures.
//!
//! Two properties are checked over the full sample corpus, in both the
//! interpreter and DTB machine modes:
//!
//! 1. **Bit-identity.** A run under a [`CounterPlane`] produces exactly
//!    the same program output and exactly the same modeled [`uhm::Metrics`]
//!    (every counter, the full cycle breakdown, all DTB statistics) as
//!    an unobserved run. Profiling is a property of the sink, never of
//!    the machine.
//! 2. **Bounded overhead.** The host wall-clock of a profiled corpus
//!    pass stays within [`OVERHEAD_BOUND`] (≤ 5 %) of the unprofiled
//!    pass. Measured as the ratio of interleaved min-of-samples, so the
//!    gate is robust to CI-machine noise; the committed reference ratios
//!    live in `baselines/profile_gate.json` for context.
//!
//! The *modeled* cycle totals are identical by property 1 — the only
//! thing profiling can cost is host time, and this gate bounds it.
//!
//! Run with `cargo run -p uhm-bench --release --bin profile_gate`.
//! With `--json`, emits a versioned RunReport instead of the text table.
//! With `--smoke`, exits non-zero on any identity divergence or an
//! overhead ratio above the bound.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use dir::encode::SchemeKind;
use dir::program::Program;
use profile::CounterPlane;
use telemetry::Json;
use uhm::{DtbConfig, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

/// Committed reference overhead ratios, for drift context in reports.
const BASELINE: &str = include_str!("../../baselines/profile_gate.json");

/// `--smoke` fails when a profiled/unprofiled corpus wall-clock ratio
/// exceeds this bound — the counter plane's ≤ 5 % overhead budget.
const OVERHEAD_BOUND: f64 = 1.05;

const SCHEME: SchemeKind = SchemeKind::Huffman;

const TARGET_NANOS: u128 = 5_000_000; // 5 ms per sampled batch
const MAX_ITERS: u64 = 1 << 22;
const SAMPLES: usize = 25;

fn modes() -> Vec<(&'static str, Mode)> {
    vec![
        ("interp", Mode::Interpreter),
        ("dtb64", Mode::Dtb(DtbConfig::with_capacity(64))),
    ]
}

/// Batch size that makes one sample of `f` take roughly [`TARGET_NANOS`].
fn calibrate(f: &mut impl FnMut() -> u64) -> u64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t.elapsed().as_nanos().max(1);
        if dt >= TARGET_NANOS || iters >= MAX_ITERS {
            return iters;
        }
        let scale = (TARGET_NANOS * 2 / dt) as u64;
        iters = iters.saturating_mul(scale.max(2)).min(MAX_ITERS);
    }
}

fn sample(f: &mut impl FnMut() -> u64, iters: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// Fastest observed ns per call of `a` and of `b`, sampled alternately so
/// machine noise hits both sides instead of biasing whichever ran second.
fn min_ns_interleaved(mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (f64, f64) {
    let (ia, ib) = (calibrate(&mut a), calibrate(&mut b));
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..SAMPLES {
        best_a = best_a.min(sample(&mut a, ia));
        best_b = best_b.min(sample(&mut b, ib));
    }
    (best_a, best_b)
}

/// One workload ready to run: the program (the counter plane needs it)
/// and a machine built over it.
struct Prepared {
    name: &'static str,
    program: Program,
    machine: Machine,
}

fn prepare() -> Vec<Prepared> {
    workloads()
        .into_iter()
        .map(|w| {
            let machine = Machine::new(&w.base, SCHEME);
            Prepared {
                name: w.name,
                program: w.base,
                machine,
            }
        })
        .collect()
}

/// A corpus pass without any sink: the hot path profiling must not slow.
fn pass_plain(corpus: &[Prepared], mode: &Mode) -> u64 {
    let mut acc = 0u64;
    for w in corpus {
        let r = w.machine.run(mode).expect("samples are trap-free");
        acc = acc.wrapping_add(r.metrics.cycles.total());
    }
    acc
}

/// The same pass under a fresh counter plane per run — construction
/// included, because that is what `raul profile` actually pays.
fn pass_profiled(corpus: &[Prepared], mode: &Mode) -> u64 {
    let mut acc = 0u64;
    for w in corpus {
        let mut plane = CounterPlane::new(&w.program);
        w.machine
            .run_with(mode, &mut plane)
            .expect("samples are trap-free");
        acc = acc.wrapping_add(plane.cycles());
    }
    acc
}

/// Verifies bit-identity of output and the *full* metrics struct for
/// every workload in every mode. Returns the first divergence found.
fn check_identity(corpus: &[Prepared]) -> Result<u64, String> {
    let mut checked = 0u64;
    for (label, mode) in modes() {
        for w in corpus {
            let plain = w.machine.run(&mode).expect("samples are trap-free");
            let mut plane = CounterPlane::new(&w.program);
            let profiled = w
                .machine
                .run_with(&mode, &mut plane)
                .expect("samples are trap-free");
            if plain.output != profiled.output {
                return Err(format!(
                    "{label}/{}: output diverged under profiling",
                    w.name
                ));
            }
            if plain.metrics != profiled.metrics {
                return Err(format!(
                    "{label}/{}: modeled metrics diverged under profiling",
                    w.name
                ));
            }
            if plane.retired() != profiled.metrics.instructions
                || plane.cycles() != profiled.metrics.cycles.total()
            {
                return Err(format!(
                    "{label}/{}: counter plane totals disagree with the run",
                    w.name
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

struct Row {
    mode: &'static str,
    plain_ns: f64,
    profiled_ns: f64,
    overhead: f64,
    baseline: f64,
}

fn measure(corpus: &[Prepared], baseline: &Json) -> Vec<Row> {
    modes()
        .into_iter()
        .map(|(label, mode)| {
            let (plain_ns, profiled_ns) = min_ns_interleaved(
                || pass_plain(corpus, &mode),
                || pass_profiled(corpus, &mode),
            );
            Row {
                mode: label,
                plain_ns,
                profiled_ns,
                overhead: profiled_ns / plain_ns,
                baseline: baseline
                    .get("overhead")
                    .and_then(|o| o.get(label))
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("baseline missing overhead for {label}")),
            }
        })
        .collect()
}

/// Measurement retries in `--smoke`. Host noise can only *inflate* an
/// interleaved min-of-samples ratio, never deflate it, so the best
/// observed overhead across attempts is the tightest estimate of the
/// true cost — a standard anti-flake treatment for CI perf gates.
const SMOKE_ATTEMPTS: usize = 3;

/// The CI gate: identity divergence is a hard failure, and so is
/// counter-plane overhead above the ≤ 5 % budget.
fn smoke(corpus: &[Prepared], baseline: &Json) -> ExitCode {
    let checked = match check_identity(corpus) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("profile smoke: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut best: Vec<Row> = measure(corpus, baseline);
    for attempt in 2..=SMOKE_ATTEMPTS {
        if best.iter().all(|r| r.overhead <= OVERHEAD_BOUND) {
            break;
        }
        eprintln!(
            "profile smoke: overhead above budget, re-measuring \
             (attempt {attempt}/{SMOKE_ATTEMPTS})"
        );
        for (b, r) in best.iter_mut().zip(measure(corpus, baseline)) {
            if r.overhead < b.overhead {
                *b = r;
            }
        }
    }
    let mut failed = false;
    for row in &best {
        if row.overhead > OVERHEAD_BOUND {
            eprintln!(
                "profile smoke: {} counter-plane overhead {:.3}x exceeds the \
                 {OVERHEAD_BOUND:.2}x budget (baseline {:.3}x)",
                row.mode, row.overhead, row.baseline
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "profile smoke PASS: {checked} runs bit-identical under the counter \
         plane, overhead within the {OVERHEAD_BOUND:.2}x budget"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let corpus = prepare();
    let baseline = Json::parse(BASELINE.trim()).expect("committed baseline parses");
    if std::env::args().any(|a| a == "--smoke") {
        return smoke(&corpus, &baseline);
    }

    let checked = match check_identity(&corpus) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("profile_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = measure(&corpus, &baseline);

    if json_flag() {
        let json_rows: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("mode", r.mode.to_string().into()),
                    ("plain_ns", r.plain_ns.into()),
                    ("profiled_ns", r.profiled_ns.into()),
                    ("overhead", r.overhead.into()),
                    ("baseline", r.baseline.into()),
                ])
            })
            .collect();
        let config = Json::obj(vec![
            ("workloads", (corpus.len() as u64).into()),
            ("scheme", SCHEME.label().into()),
            ("identity_checks", checked.into()),
            ("overhead_bound", OVERHEAD_BOUND.into()),
        ]);
        println!(
            "{}",
            bench_report("profile_gate", config, json_rows).render()
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "counter-plane overhead over {} workloads ({checked} runs verified \
         bit-identical first)",
        corpus.len()
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10}",
        "mode", "plain ns", "profiled ns", "overhead", "baseline"
    );
    for r in &rows {
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>9.3}x {:>9.3}x",
            r.mode, r.plain_ns, r.profiled_ns, r.overhead, r.baseline
        );
    }
    println!("budget: {OVERHEAD_BOUND:.2}x (enforced by --smoke)");
    ExitCode::SUCCESS
}
