//! Quickstart: compile a RAUL program down the whole representation
//! hierarchy and run it on the three machine configurations.
//!
//! Run with `cargo run --example quickstart`.

use dir::encode::SchemeKind;
use uhm::{DtbConfig, Machine, Mode};

fn main() {
    // 1. A high-level representation (HLR): block-structured source.
    let source = r#"
        # Sum the squares of the first 100 integers.
        proc square(int n) -> int begin
            return n * n;
        end
        proc main() begin
            int i;
            int total := 0;
            for i := 1 to 100 do total := total + square(i);
            write total;
        end
    "#;

    // 2. Bind names and types (the compiler's permanent binding step).
    let hir = hlr::compile(source).expect("valid RAUL");

    // 3. Compile to the directly interpretable representation (DIR).
    let program = dir::compiler::compile(&hir);
    println!(
        "DIR program: {} instructions, {} procedures",
        program.len(),
        program.procs.len()
    );

    // 4. Encode the static form compactly (the paper's encoding dimension).
    let image = SchemeKind::Huffman.encode(&program);
    println!(
        "Static size: {} bits Huffman-encoded (vs {} byte-aligned)",
        image.program_bits(),
        SchemeKind::ByteAligned.encode(&program).program_bits()
    );

    // 5. Execute on the universal host machine, three ways.
    let machine = Machine::new(&program, SchemeKind::Huffman);
    let modes = [
        ("conventional interpreter (T1)", Mode::Interpreter),
        (
            "dynamic translation buffer (T2)",
            Mode::Dtb(DtbConfig::with_capacity(64)),
        ),
        (
            "instruction cache (T3)",
            Mode::ICache {
                geometry: memsim::Geometry::new(32, 4),
            },
        ),
    ];
    println!();
    for (label, mode) in modes {
        let report = machine.run(&mode).expect("program is trap-free");
        println!(
            "{label:>34}: output = {:?}, {:.2} cycles/DIR instruction",
            report.output,
            report.metrics.time_per_instruction()
        );
        if let Some(dtb) = report.metrics.dtb {
            println!(
                "{:>34}  (DTB hit ratio {:.3}, {} translations filled)",
                "",
                dtb.hit_ratio(),
                dtb.misses
            );
        }
    }
    println!("\nSame output everywhere; the DTB machine avoids redundant decoding by");
    println!("keeping the loop's working set in its directly executable form.");
}
