//! Integration tests for the multi-tenant pool plane: a pooled run is a
//! pure host-side optimization, so every tenant's output, traps and
//! modeled metrics must be bit-identical to running the same machines
//! sequentially — under any worker count, with shared machines, shared
//! frozen translation snapshots, and deterministic fault campaigns. A
//! misbehaving (panicking) tenant must not take the pool down.

use std::sync::Arc;

use dir::encode::SchemeKind;
use uhm::pool::MachinePool;
use uhm::{DtbConfig, FaultConfig, Machine, Mode, TenantOutcome};

fn seeded_machine(seed: u64, scheme: SchemeKind) -> Arc<Machine> {
    let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
    let hir = hlr::sema::analyze(&ast).expect("generated programs are valid");
    let program = dir::compiler::compile(&hir);
    let mut machine = Machine::new(&program, scheme);
    machine.freeze_translations();
    Arc::new(machine)
}

fn modes() -> Vec<Mode> {
    vec![
        Mode::Interpreter,
        Mode::Dtb(DtbConfig::with_capacity(32)),
        Mode::ICache {
            geometry: memsim::Geometry::new(16, 4),
        },
    ]
}

/// Builds a pool of seeded random tenants cycling schemes and modes;
/// machines are shared between tenants 8 apart.
fn seeded_pool(workers: usize, tenants: usize) -> MachinePool {
    let schemes = [
        SchemeKind::Packed,
        SchemeKind::Huffman,
        SchemeKind::ByteAligned,
    ];
    let machines: Vec<Arc<Machine>> = (0..8.min(tenants as u64))
        .map(|seed| seeded_machine(seed, schemes[seed as usize % schemes.len()]))
        .collect();
    let modes = modes();
    let mut pool = MachinePool::new(workers);
    for t in 0..tenants {
        pool.push(
            format!("seed-{}", t % machines.len()),
            Arc::clone(&machines[t % machines.len()]),
            modes[t % modes.len()].clone(),
        );
    }
    pool
}

fn outcomes(run: &uhm::PoolRun) -> Vec<&TenantOutcome> {
    run.results.iter().map(|r| &r.outcome).collect()
}

/// Pooled execution is bit-identical to sequential execution — outputs,
/// traps, and every modeled metric — across worker counts.
#[test]
fn pooled_execution_matches_sequential_across_worker_counts() {
    let tenants = 12;
    let reference = seeded_pool(1, tenants).run_sequential();
    assert_eq!(reference.results.len(), tenants);
    for workers in [1, 2, 4, 8] {
        let pooled = seeded_pool(workers, tenants).run();
        assert_eq!(
            outcomes(&reference),
            outcomes(&pooled),
            "{workers} workers diverged from sequential reference"
        );
    }
}

/// Per-tenant fault seeds are derived from the tenant index, so a fault
/// campaign replays identically under any schedule.
#[test]
fn fault_campaign_is_schedule_invariant() {
    let base = FaultConfig {
        seed: 0xC0FFEE,
        dtb_word_rate: 0.01,
        dir_bit_rate: 0.0005,
        ..FaultConfig::inert(0)
    };
    let mut reference = seeded_pool(1, 10);
    reference.set_faults(Some(base));
    let sequential = reference.run_sequential();
    for workers in [2, 4] {
        let mut pool = seeded_pool(workers, 10);
        pool.set_faults(Some(base));
        let pooled = pool.run();
        assert_eq!(
            outcomes(&sequential),
            outcomes(&pooled),
            "{workers}-worker fault campaign diverged"
        );
    }
}

/// A tenant whose host-side construction panics (invalid DTB geometry)
/// is reported as `Panicked`; every other tenant still completes with
/// results identical to an all-good pool.
#[test]
fn panicking_tenant_does_not_poison_the_pool() {
    let good = seeded_pool(4, 9);
    let reference = good.run_sequential();

    let mut pool = seeded_pool(4, 9);
    let machine = Arc::clone(&pool.tenants()[0].machine);
    let bad_mode = Mode::Dtb(DtbConfig {
        unit_words: 0,
        ..DtbConfig::with_capacity(16)
    });
    pool.push("saboteur", machine, bad_mode);

    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = pool.run();
    std::panic::set_hook(hook);

    assert_eq!(run.results.len(), 10);
    assert_eq!(run.completed(), 9);
    assert!(matches!(run.results[9].outcome, TenantOutcome::Panicked(_)));
    assert_eq!(&outcomes(&run)[..9], &outcomes(&reference)[..]);
}

/// A scheduling seed pins the pool schedule: the deal order is a seeded
/// permutation, stealing is disabled (steals always 0), and the
/// tenant→worker assignment replays exactly across runs — so latency
/// investigations and flake hunts can replay one specific schedule.
#[test]
fn schedule_seed_makes_the_schedule_replayable() {
    let assignment = |seed: Option<u64>| {
        let mut pool = seeded_pool(4, 12);
        pool.set_schedule_seed(seed);
        let run = pool.run();
        assert_eq!(run.results.len(), 12);
        if seed.is_some() {
            assert_eq!(run.steals, 0, "stealing is off under a pinned schedule");
        }
        run.results
            .iter()
            .map(|r| (r.tenant, r.worker))
            .collect::<Vec<_>>()
    };
    assert_eq!(assignment(Some(0xD1CE)), assignment(Some(0xD1CE)));
    // Different seeds deal different permutations (with 12 tenants a
    // collision is astronomically unlikely).
    assert_ne!(assignment(Some(1)), assignment(Some(2)));
    // And the pinned schedule never changes tenant outcomes.
    let reference = seeded_pool(1, 12).run_sequential();
    let mut pinned = seeded_pool(4, 12);
    pinned.set_schedule_seed(Some(0xD1CE));
    assert_eq!(outcomes(&reference), outcomes(&pinned.run()));
}

/// The pool report renders valid schema-v2 JSON that round-trips and
/// carries consistent aggregates.
#[test]
fn pool_report_json_is_consistent() {
    let run = seeded_pool(2, 6).run();
    let config = telemetry::Json::obj([
        ("workers", telemetry::Json::from(2i64)),
        ("tenants", telemetry::Json::from(6i64)),
    ]);
    let report = uhm::report::pool_report("pool_plane_test", config, &run);
    let back = telemetry::PoolReport::parse(&report.render()).unwrap();
    assert_eq!(back, report);
    let agg = &back.aggregate;
    assert_eq!(
        agg.get("completed").and_then(telemetry::Json::as_i64),
        Some(run.completed() as i64)
    );
    assert_eq!(
        agg.get("instructions").and_then(telemetry::Json::as_i64),
        Some(run.total_instructions() as i64)
    );
    assert_eq!(back.tenants.as_arr().unwrap().len(), 6);
    assert!(back.latency.p50 <= back.latency.p99);
}
