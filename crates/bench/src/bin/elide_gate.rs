//! **E22 — the elide gate (per-site check elision):** runs the
//! interprocedural dataflow pass over the full encoded corpus, gates the
//! fact-coverage ratios against a committed baseline, audits every
//! elided site dynamically (the guard is still evaluated; a guard that
//! would have fired refutes the static proof), checks that per-site
//! elided execution is bit-identical — outputs AND modeled stats — to
//! checked execution, and times checked vs per-site-elided vs
//! fully-trusted interpretation.
//!
//! Run with `cargo run -p uhm-bench --release --bin elide_gate`.
//! With `--json`, emits a versioned AnalyzeReport (schema 7): one fact
//! row per corpus image plus the aggregate discharge ratios and timing.
//! With `--smoke`, exits non-zero if (a) any audit guard fires, (b) any
//! sited run diverges from the checked run, or (c) a fact-coverage
//! ratio falls below its committed floor. The floors are *exact* gates,
//! not tolerance-scaled: static fact counts are deterministic, so any
//! drop is a real regression in the dataflow pass. Timing is reported
//! but never gates.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use analyze::FactsReport;
use dir::exec::Limits;
use dir::program::Program;
use telemetry::{AnalyzeReport, Json};
use uhm_bench::corpus::encoded_corpus;
use uhm_bench::workloads;

/// Committed fact-coverage floors (the `aggregate` object of a previous
/// `--json` run, pruned to the gated keys).
const BASELINE: &str = include_str!("../../baselines/elide_gate.json");

/// One analyzed corpus image with its fact coverage and audit verdict.
struct Row {
    name: String,
    facts: FactsReport,
    hot_regions: usize,
    audit_sound: bool,
    sited_identical: bool,
}

/// Dataflow + audit sweep over every encoded corpus image.
fn sweep() -> Vec<Row> {
    encoded_corpus()
        .into_iter()
        .map(|entry| {
            let name = format!("{}/{}", entry.name(), entry.scheme.label());
            let report = analyze::analyze(&entry.program, &entry.image);
            let (audit_sound, sited_identical) = audit(&entry.program, &report.site_facts);
            Row {
                name,
                facts: report.facts,
                hot_regions: report.hot_regions.len(),
                audit_sound,
                sited_identical,
            }
        })
        .collect()
}

/// Runs one program checked, sited and audited. Returns
/// `(audit_sound, sited_identical)` where `sited_identical` covers both
/// outputs and the full modeled [`dir::exec::ExecStats`].
fn audit(program: &Program, facts: &dir::facts::SiteFacts) -> (bool, bool) {
    let checked = dir::exec::run_with(program, Limits::default(), false);
    let sited = dir::exec::run_sited_with(program, facts, Limits::default(), false);
    let (audited, verdict) = dir::exec::run_audit_with(program, facts, Limits::default(), false);
    (verdict.is_sound() && audited == checked, sited == checked)
}

/// Times one call of `f`, returning elapsed ns.
fn time<T>(mut f: impl FnMut() -> T) -> u64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_nanos() as u64
}

/// Interleaved min-of-N timing of checked vs per-site-elided vs trusted
/// interpretation over the base-tier workloads, as in `analyze_gate`.
fn timing() -> (u64, u64, u64) {
    const ROUNDS: usize = 7;
    let (mut checked_ns, mut sited_ns, mut trusted_ns) = (0, 0, 0);
    for w in workloads() {
        let verified = analyze::verify(
            &w.base,
            dir::encode::SchemeKind::ByteAligned.encode(&w.base),
        )
        .expect("corpus verifies clean");
        let facts = verified.facts().clone();
        let (mut c, mut s, mut t) = (u64::MAX, u64::MAX, u64::MAX);
        for _ in 0..ROUNDS {
            c = c.min(time(|| dir::exec::run(&w.base).unwrap()));
            s = s.min(time(|| {
                dir::exec::run_sited_with(&w.base, &facts, Limits::default(), false).unwrap()
            }));
            t = t.min(time(|| {
                analyze::run_verified(&verified, Limits::default()).unwrap()
            }));
        }
        checked_ns += c;
        sited_ns += s;
        trusted_ns += t;
    }
    (checked_ns, sited_ns, trusted_ns)
}

/// A safe ratio: `proved / sites`, 1.0 when there are no sites.
fn ratio(proved: u32, sites: u32) -> f64 {
    if sites == 0 {
        1.0
    } else {
        proved as f64 / sites as f64
    }
}

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");

    let rows = sweep();
    let mut total = FactsReport::default();
    for r in &rows {
        total.div_sites += r.facts.div_sites;
        total.div_proved += r.facts.div_proved;
        total.idx_sites += r.facts.idx_sites;
        total.idx_proved += r.facts.idx_proved;
        total.depth_exact += r.facts.depth_exact;
        total.branches_never += r.facts.branches_never;
        total.branches_always += r.facts.branches_always;
        total.unreachable_insts += r.facts.unreachable_insts;
    }
    let div_ratio = ratio(total.div_proved, total.div_sites);
    let idx_ratio = ratio(total.idx_proved, total.idx_sites);
    let unsound = rows.iter().filter(|r| !r.audit_sound).count();
    let diverged = rows.iter().filter(|r| !r.sited_identical).count();

    let (checked_ns, sited_ns, trusted_ns) = timing();
    let sited_speedup = checked_ns as f64 / sited_ns.max(1) as f64;
    let trusted_speedup = checked_ns as f64 / trusted_ns.max(1) as f64;

    // Gate the deterministic fact counts against the committed floors.
    let baseline = Json::parse(BASELINE.trim()).expect("committed baseline parses");
    let mut violations: Vec<String> = Vec::new();
    let mut gate = |key: &str, measured: f64| {
        if let Some(want) = baseline.get(key).and_then(Json::as_f64) {
            if measured < want {
                violations.push(format!(
                    "fact-coverage regression: {key} = {measured:.4}, baseline floor {want:.4}"
                ));
            }
        }
    };
    gate("div_ratio", div_ratio);
    gate("idx_ratio", idx_ratio);
    gate("div_proved", total.div_proved as f64);
    gate("idx_proved", total.idx_proved as f64);
    gate("depth_exact", total.depth_exact as f64);

    let pass = unsound == 0 && diverged == 0 && violations.is_empty();

    if json {
        let images: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", r.name.as_str().into()),
                    ("div_sites", (r.facts.div_sites as i64).into()),
                    ("div_proved", (r.facts.div_proved as i64).into()),
                    ("idx_sites", (r.facts.idx_sites as i64).into()),
                    ("idx_proved", (r.facts.idx_proved as i64).into()),
                    ("depth_exact", (r.facts.depth_exact as i64).into()),
                    ("hot_regions", (r.hot_regions as i64).into()),
                    ("audit_sound", r.audit_sound.into()),
                    ("sited_identical", r.sited_identical.into()),
                ])
            })
            .collect();
        let report = AnalyzeReport::new(
            "elide_gate",
            Json::obj(vec![("images", (rows.len() as i64).into())]),
            Json::Arr(images),
            Json::obj(vec![
                ("div_sites", (total.div_sites as i64).into()),
                ("div_proved", (total.div_proved as i64).into()),
                ("div_ratio", div_ratio.into()),
                ("idx_sites", (total.idx_sites as i64).into()),
                ("idx_proved", (total.idx_proved as i64).into()),
                ("idx_ratio", idx_ratio.into()),
                ("depth_exact", (total.depth_exact as i64).into()),
                ("branches_never", (total.branches_never as i64).into()),
                ("branches_always", (total.branches_always as i64).into()),
                ("unreachable_insts", (total.unreachable_insts as i64).into()),
                ("audit_unsound", (unsound as i64).into()),
                ("sited_diverged", (diverged as i64).into()),
                ("checked_ns", (checked_ns as i64).into()),
                ("sited_ns", (sited_ns as i64).into()),
                ("trusted_ns", (trusted_ns as i64).into()),
                ("sited_speedup", sited_speedup.into()),
                ("trusted_speedup", trusted_speedup.into()),
                ("pass", pass.into()),
            ]),
        );
        println!("{}", report.render());
    } else {
        println!(
            "elide gate: {} corpus images | div {}/{} proved ({:.1}%), idx {}/{} proved ({:.1}%), \
             {} depth-exact",
            rows.len(),
            total.div_proved,
            total.div_sites,
            div_ratio * 100.0,
            total.idx_proved,
            total.idx_sites,
            idx_ratio * 100.0,
            total.depth_exact
        );
        println!(
            "audit: {} unsound, {} sited-diverged ({} never-taken, {} always-taken, {} \
             unreachable facts)",
            unsound, diverged, total.branches_never, total.branches_always, total.unreachable_insts
        );
        println!(
            "timing: checked {:.1} ms | sited {:.1} ms ({:.2}x) | trusted {:.1} ms ({:.2}x)",
            checked_ns as f64 / 1e6,
            sited_ns as f64 / 1e6,
            sited_speedup,
            trusted_ns as f64 / 1e6,
            trusted_speedup
        );
        for r in rows.iter().filter(|r| !r.audit_sound || !r.sited_identical) {
            println!(
                "  FAILED {}: audit_sound={} sited_identical={}",
                r.name, r.audit_sound, r.sited_identical
            );
        }
        for v in &violations {
            println!("  {v}");
        }
    }

    if smoke && !pass {
        eprintln!(
            "elide smoke FAIL: {unsound} unsound, {diverged} diverged, {} floor violations",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    if smoke {
        println!(
            "elide smoke PASS: div {:.1}%, idx {:.1}%, audit clean, sited path {:.2}x",
            div_ratio * 100.0,
            idx_ratio * 100.0,
            sited_speedup
        );
    }
    ExitCode::SUCCESS
}
