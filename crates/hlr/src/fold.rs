//! Constant folding and branch pruning on resolved programs.
//!
//! The paper frames compilation as *moving binding earlier*: "the effect of
//! the compilation step is to factor out large amounts of computation ...
//! by performing it just once before the interpretation phase" (§3.3).
//! This pass is that idea applied one more notch: computation whose inputs
//! are bound at compile time is performed at compile time, shrinking both
//! the static DIR and the dynamic instruction count.
//!
//! Folding is semantics-preserving, including traps: an expression that
//! would trap at run time (division by zero, wrapping is fine) is *not*
//! folded away unless it is unreachable, and `if`/`while` conditions are
//! pruned only when their constant value is known after evaluating no
//! effectful subexpressions.

use crate::ast::{BinOp, UnOp};
use crate::eval::apply_binop;
use crate::hir::{Expr, Program, Stmt};

/// Statistics from a folding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Expressions replaced by constants.
    pub folded_exprs: usize,
    /// Branches pruned because their condition was constant.
    pub pruned_branches: usize,
    /// Loops removed because their condition was constantly false.
    pub removed_loops: usize,
}

/// Folds constants throughout a program, returning the optimised program
/// and statistics.
///
/// # Example
///
/// ```
/// let hir = hlr::compile("proc main() begin write 2 * 3 + 4; end")?;
/// let (folded, stats) = hlr::fold::fold(&hir);
/// assert!(stats.folded_exprs > 0);
/// assert_eq!(hlr::eval::run(&folded).unwrap(), vec![10]);
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn fold(program: &Program) -> (Program, FoldStats) {
    let mut stats = FoldStats::default();
    let procs = program
        .procs
        .iter()
        .map(|p| crate::hir::Proc {
            name: p.name.clone(),
            n_params: p.n_params,
            frame_size: p.frame_size,
            ret: p.ret,
            body: fold_body(&p.body, &mut stats),
            contour_count: p.contour_count,
            max_visible_slots: p.max_visible_slots,
        })
        .collect();
    let global_init = fold_body(&program.global_init, &mut stats);
    (
        Program {
            globals_size: program.globals_size,
            procs,
            entry: program.entry,
            global_init,
        },
        stats,
    )
}

fn fold_body(body: &[Stmt], stats: &mut FoldStats) -> Vec<Stmt> {
    body.iter().flat_map(|s| fold_stmt(s, stats)).collect()
}

/// Returns the constant value of an already-folded expression, if any.
fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Bool(b) => Some(*b as i64),
        _ => None,
    }
}

fn fold_stmt(stmt: &Stmt, stats: &mut FoldStats) -> Vec<Stmt> {
    match stmt {
        Stmt::Store { var, value } => vec![Stmt::Store {
            var: *var,
            value: fold_expr(value, stats),
        }],
        Stmt::StoreIndexed { arr, index, value } => vec![Stmt::StoreIndexed {
            arr: *arr,
            index: fold_expr(index, stats),
            value: fold_expr(value, stats),
        }],
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond = fold_expr(cond, stats);
            match const_of(&cond) {
                Some(c) => {
                    stats.pruned_branches += 1;
                    let taken = if c != 0 { then_branch } else { else_branch };
                    fold_body(taken, stats)
                }
                None => vec![Stmt::If {
                    cond,
                    then_branch: fold_body(then_branch, stats),
                    else_branch: fold_body(else_branch, stats),
                }],
            }
        }
        Stmt::While { cond, body } => {
            let cond = fold_expr(cond, stats);
            match const_of(&cond) {
                Some(0) => {
                    stats.removed_loops += 1;
                    vec![]
                }
                // `while true` must be kept (it may contain a return).
                _ => vec![Stmt::While {
                    cond,
                    body: fold_body(body, stats),
                }],
            }
        }
        Stmt::For {
            var,
            from,
            to,
            body,
        } => {
            let from = fold_expr(from, stats);
            let to = fold_expr(to, stats);
            if let (Some(lo), Some(hi)) = (const_of(&from), const_of(&to)) {
                if lo > hi {
                    // Empty range: only the (dead) init store of the
                    // induction variable survives, for ALGOL fidelity the
                    // variable is not even assigned... the reference
                    // evaluator assigns on first iteration only, so an
                    // empty range leaves it untouched: drop everything.
                    stats.removed_loops += 1;
                    return vec![];
                }
            }
            vec![Stmt::For {
                var: *var,
                from,
                to,
                body: fold_body(body, stats),
            }]
        }
        Stmt::Block(body) => vec![Stmt::Block(fold_body(body, stats))],
        Stmt::CallStmt {
            proc,
            args,
            has_result,
        } => vec![Stmt::CallStmt {
            proc: *proc,
            args: args.iter().map(|a| fold_expr(a, stats)).collect(),
            has_result: *has_result,
        }],
        Stmt::Return(value) => vec![Stmt::Return(value.as_ref().map(|v| fold_expr(v, stats)))],
        Stmt::Write(value) => vec![Stmt::Write(fold_expr(value, stats))],
        Stmt::Skip => vec![],
    }
}

fn fold_expr(e: &Expr, stats: &mut FoldStats) -> Expr {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Load(_) => e.clone(),
        Expr::LoadIndexed { arr, index } => Expr::LoadIndexed {
            arr: *arr,
            index: Box::new(fold_expr(index, stats)),
        },
        Expr::Call { proc, args } => Expr::Call {
            proc: *proc,
            args: args.iter().map(|a| fold_expr(a, stats)).collect(),
        },
        Expr::Binary { op, lhs, rhs } => {
            let lhs = fold_expr(lhs, stats);
            let rhs = fold_expr(rhs, stats);
            if let (Some(a), Some(b)) = (const_of(&lhs), const_of(&rhs)) {
                // A folding that would trap is left in place so that the
                // program still traps at run time, at the same point.
                if let Ok(v) = apply_binop(*op, a, b) {
                    stats.folded_exprs += 1;
                    return literal(*op, v);
                }
            }
            // Algebraic identities that need only one constant side.
            if let Some(simplified) = identity(*op, &lhs, &rhs) {
                stats.folded_exprs += 1;
                return simplified;
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        }
        Expr::Unary { op, operand } => {
            let operand = fold_expr(operand, stats);
            if let Some(v) = const_of(&operand) {
                stats.folded_exprs += 1;
                return match op {
                    UnOp::Neg => Expr::Int(v.wrapping_neg()),
                    UnOp::Not => Expr::Bool(v == 0),
                };
            }
            Expr::Unary {
                op: *op,
                operand: Box::new(operand),
            }
        }
    }
}

/// Wraps a folded result in the right literal type for the operator.
fn literal(op: BinOp, v: i64) -> Expr {
    if op.produces_bool() {
        Expr::Bool(v != 0)
    } else {
        Expr::Int(v)
    }
}

/// Strength-reduction identities that are safe for effect-free operand
/// shapes: `x + 0`, `0 + x`, `x * 1`, `1 * x`, `x - 0`, `x * 0` (only when
/// `x` is effect-free), `b and true`, `b or false`, ...
fn identity(op: BinOp, lhs: &Expr, rhs: &Expr) -> Option<Expr> {
    let lc = const_of(lhs);
    let rc = const_of(rhs);
    match (op, lc, rc) {
        (BinOp::Add, Some(0), _) => Some(rhs.clone()),
        (BinOp::Add, _, Some(0)) => Some(lhs.clone()),
        (BinOp::Sub, _, Some(0)) => Some(lhs.clone()),
        (BinOp::Mul, Some(1), _) => Some(rhs.clone()),
        (BinOp::Mul, _, Some(1)) => Some(lhs.clone()),
        (BinOp::Mul, Some(0), _) if effect_free(rhs) => Some(Expr::Int(0)),
        (BinOp::Mul, _, Some(0)) if effect_free(lhs) => Some(Expr::Int(0)),
        (BinOp::Div, _, Some(1)) => Some(lhs.clone()),
        (BinOp::And, Some(1), _) => Some(rhs.clone()),
        (BinOp::And, _, Some(1)) => Some(lhs.clone()),
        (BinOp::Or, Some(0), _) => Some(rhs.clone()),
        (BinOp::Or, _, Some(0)) => Some(lhs.clone()),
        _ => None,
    }
}

/// Conservative effect analysis: no calls, no indexing (which may trap).
fn effect_free(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Load(_) => true,
        Expr::LoadIndexed { .. } | Expr::Call { .. } => false,
        Expr::Binary { op, lhs, rhs } => {
            !matches!(op, BinOp::Div | BinOp::Mod) && effect_free(lhs) && effect_free(rhs)
        }
        Expr::Unary { operand, .. } => effect_free(operand),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, eval};

    fn folded(src: &str) -> (Program, FoldStats) {
        fold(&compile(src).unwrap())
    }

    #[test]
    fn folds_arithmetic() {
        let (p, stats) = folded("proc main() begin write 2 * 3 + 4; end");
        assert!(stats.folded_exprs >= 2);
        assert_eq!(p.procs[0].body, vec![Stmt::Write(Expr::Int(10))]);
    }

    #[test]
    fn folds_comparisons_and_logic() {
        let (p, _) = folded("proc main() begin write 1 < 2 and not false; end");
        assert_eq!(p.procs[0].body, vec![Stmt::Write(Expr::Bool(true))]);
    }

    #[test]
    fn prunes_constant_branches() {
        let (p, stats) = folded("proc main() begin if 1 + 1 = 2 then write 7; else write 8; end");
        assert_eq!(stats.pruned_branches, 1);
        assert_eq!(p.procs[0].body, vec![Stmt::Write(Expr::Int(7))]);
    }

    #[test]
    fn removes_false_loops_keeps_true_loops() {
        let (p, stats) = folded(
            "proc main() begin
                while 1 > 2 do write 0;
                write 9;
            end",
        );
        assert_eq!(stats.removed_loops, 1);
        assert_eq!(p.procs[0].body, vec![Stmt::Write(Expr::Int(9))]);

        let (p, _) = folded(
            "proc f() -> int begin while true do return 3; end
             proc main() begin write f(); end",
        );
        assert!(matches!(p.procs[0].body[0], Stmt::While { .. }));
        assert_eq!(eval::run(&p).unwrap(), vec![3]);
    }

    #[test]
    fn empty_for_ranges_are_removed() {
        let (p, stats) =
            folded("proc main() begin int i; for i := 5 to 2 do write i; write 1; end");
        assert_eq!(stats.removed_loops, 1);
        assert_eq!(eval::run(&p).unwrap(), vec![1]);
    }

    #[test]
    fn division_by_zero_is_not_folded_away() {
        let (p, _) = folded("proc main() begin write 1 / 0; end");
        assert_eq!(eval::run(&p).unwrap_err(), eval::EvalError::DivByZero);
    }

    #[test]
    fn identities_simplify_without_constants() {
        let (p, stats) =
            folded("proc main() begin int x := 5; write x + 0; write 1 * x; write x - 0; end");
        assert!(stats.folded_exprs >= 3);
        for s in &p.procs[0].body[1..] {
            assert!(
                matches!(s, Stmt::Write(Expr::Load(_))),
                "identity not applied: {s:?}"
            );
        }
    }

    #[test]
    fn mul_zero_preserves_effects() {
        // f() has a side effect (writes); 0 * f() must not be folded.
        let (p, _) = folded(
            "proc f() -> int begin write 111; return 1; end
             proc main() begin write 0 * f(); end",
        );
        assert_eq!(eval::run(&p).unwrap(), vec![111, 0]);
    }

    #[test]
    fn mul_zero_folds_pure_operands() {
        let (p, _) = folded("proc main() begin int x := 3; write x * 0; end");
        assert_eq!(p.procs[0].body[1], Stmt::Write(Expr::Int(0)));
    }

    #[test]
    fn skip_statements_vanish() {
        let (p, _) = folded("proc main() begin skip; write 1; skip; end");
        assert_eq!(p.procs[0].body.len(), 1);
    }

    #[test]
    fn semantics_preserved_on_all_samples() {
        for s in crate::programs::ALL {
            let hir = s.compile().unwrap();
            let (opt, _) = fold(&hir);
            assert_eq!(
                eval::run(&opt).unwrap(),
                eval::run(&hir).unwrap(),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn semantics_preserved_on_generated_programs() {
        for seed in 0..30 {
            let ast = crate::generate::program(seed, &crate::generate::Config::default());
            let hir = crate::sema::analyze(&ast).unwrap();
            let (opt, _) = fold(&hir);
            assert_eq!(
                eval::run(&opt).unwrap(),
                eval::run(&hir).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn folding_shrinks_compiled_output_on_generated_programs() {
        let mut shrank = 0;
        let mut total = 0;
        for seed in 0..20 {
            let ast = crate::generate::program(seed, &crate::generate::Config::default());
            let hir = crate::sema::analyze(&ast).unwrap();
            let (opt, stats) = fold(&hir);
            if stats.folded_exprs + stats.pruned_branches + stats.removed_loops == 0 {
                continue;
            }
            total += 1;
            // Proxy for DIR size: total statement+expression node count.
            if size(&opt) < size(&hir) {
                shrank += 1;
            }
        }
        assert!(total > 10, "generator should produce foldable programs");
        assert!(shrank == total, "folding must never grow a program");
    }

    fn size(p: &Program) -> usize {
        fn stmt(s: &Stmt) -> usize {
            1 + match s {
                Stmt::Store { value, .. } => expr(value),
                Stmt::StoreIndexed { index, value, .. } => expr(index) + expr(value),
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => expr(cond) + body(then_branch) + body(else_branch),
                Stmt::While { cond, body: b } => expr(cond) + body(b),
                Stmt::For {
                    from, to, body: b, ..
                } => expr(from) + expr(to) + body(b),
                Stmt::Block(b) => body(b),
                Stmt::CallStmt { args, .. } => args.iter().map(expr).sum(),
                Stmt::Return(v) => v.as_ref().map(expr).unwrap_or(0),
                Stmt::Write(v) => expr(v),
                Stmt::Skip => 0,
            }
        }
        fn body(b: &[Stmt]) -> usize {
            b.iter().map(stmt).sum()
        }
        fn expr(e: &Expr) -> usize {
            1 + match e {
                Expr::Int(_) | Expr::Bool(_) | Expr::Load(_) => 0,
                Expr::LoadIndexed { index, .. } => expr(index),
                Expr::Call { args, .. } => args.iter().map(expr).sum(),
                Expr::Binary { lhs, rhs, .. } => expr(lhs) + expr(rhs),
                Expr::Unary { operand, .. } => expr(operand),
            }
        }
        body(&p.global_init) + p.procs.iter().map(|p| body(&p.body)).sum::<usize>()
    }
}
