//! Order statistics for latency aggregation.
//!
//! The pool report summarizes per-tenant latencies as p50/p95/p99/p99.9;
//! these helpers implement the one interpolation rule every surface shares
//! so numbers are comparable across reports (and across PRs). Nothing here
//! is specific to latency — the functions work on any sample set.
//!
//! For pool-scale aggregation the exact-sample [`Percentiles`] is joined
//! by [`LogHistogram`], a log-bucketed histogram whose shards merge
//! exactly: the merge of per-worker histograms equals the histogram of
//! the concatenated samples, bucket for bucket, so percentile estimates
//! are identical whether aggregation happened centrally or incrementally.

use crate::json::Json;

/// Summary percentiles of a sample set, as used by the pool report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// The median (p50).
    pub p50: f64,
    /// The 95th percentile.
    pub p95: f64,
    /// The 99th percentile.
    pub p99: f64,
    /// The 99.9th percentile.
    pub p999: f64,
}

impl Percentiles {
    /// Computes p50/p95/p99/p99.9 of `samples` (need not be sorted;
    /// empty yields all zeros).
    ///
    /// ```
    /// use telemetry::Percentiles;
    ///
    /// let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0]);
    /// assert_eq!(p.p50, 2.5);
    /// assert!(p.p99 > p.p50);
    /// assert!(p.p999 >= p.p99);
    /// assert_eq!(Percentiles::of(&[]), Percentiles::default());
    /// ```
    pub fn of(samples: &[f64]) -> Percentiles {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("percentile samples must not be NaN")
        });
        Percentiles {
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            p999: percentile_sorted(&sorted, 99.9),
        }
    }
}

/// The `p`-th percentile (0–100) of an ascending-sorted sample set,
/// linearly interpolated between the two nearest ranks (the common
/// "exclusive of neither end" definition: p0 = min, p100 = max). Empty
/// input yields 0.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Number of buckets in a [`LogHistogram`]: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so 65 buckets cover
/// the whole `u64` range.
const LOG_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples with exact merge.
///
/// Bucket boundaries are powers of two, fixed for every instance, so two
/// histograms built from disjoint sample shards merge by bucket-wise
/// addition into *exactly* the histogram of the concatenated samples —
/// the property that makes per-worker latency aggregation order-
/// independent. Percentile estimates interpolate linearly within the
/// winning bucket, so they are deterministic functions of the bucket
/// counts alone (and therefore also merge-stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; LOG_BUCKETS],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; LOG_BUCKETS],
            total: 0,
        }
    }

    /// The bucket index of `value`: 0 for 0, else `ceil(log2(value+1))`.
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The half-open range `[lo, hi)` of bucket `i` (bucket 0 is `[0,1)`).
    fn bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds every bucket of `other` into `self` (exact shard merge).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Estimates the `p`-th percentile (0–100) by linear interpolation
    /// within the bucket containing that rank. Empty yields 0.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * self.total as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                let (lo, hi) = Self::bounds(i);
                let into = (rank - seen as f64).max(0.0) / c as f64;
                return lo as f64 + into * (hi - lo) as f64;
            }
            seen += c;
        }
        let (_, hi) = Self::bounds(LOG_BUCKETS - 1);
        hi as f64
    }

    /// The non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, c)
            })
    }

    /// The histogram as a JSON object: total plus an array of non-empty
    /// `{lo, hi, count}` buckets (sparse, so small on skewed data).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets()
            .map(|(lo, hi, count)| {
                Json::obj([
                    ("lo", Json::from(lo as i64)),
                    ("hi", Json::from(hi.min(i64::MAX as u64) as i64)),
                    ("count", Json::from(count as i64)),
                ])
            })
            .collect();
        Json::obj([
            ("total", Json::from(self.total as i64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_min_and_max() {
        let s = [1.0, 2.0, 10.0];
        assert_eq!(percentile_sorted(&s, 0.0), 1.0);
        assert_eq!(percentile_sorted(&s, 100.0), 10.0);
        assert_eq!(percentile_sorted(&s, 50.0), 2.0);
    }

    #[test]
    fn interpolates_between_ranks() {
        let s = [0.0, 100.0];
        assert_eq!(percentile_sorted(&s, 95.0), 95.0);
        assert_eq!(percentile_sorted(&s, 25.0), 25.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let p = Percentiles::of(&[7.5]);
        assert_eq!((p.p50, p.p95, p.p99, p.p999), (7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let p = Percentiles::of(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(p.p50, 5.0);
        assert!(p.p95 <= 9.0 && p.p95 > 8.0);
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let s = [1.0, 2.0];
        assert_eq!(percentile_sorted(&s, -5.0), 1.0);
        assert_eq!(percentile_sorted(&s, 200.0), 2.0);
    }

    #[test]
    fn percentiles_are_monotone_on_random_samples() {
        // splitmix64-style generator, fixed seed: no external RNG crates.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let samples: Vec<f64> = (0..257).map(|_| next() * 1e6).collect();
        let p = Percentiles::of(&samples);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.p999);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(p.p50 >= lo && p.p999 <= hi);
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn log_histogram_buckets_are_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.total(), 9);
        let buckets: Vec<(u64, u64, u64)> = h.buckets().collect();
        // 0 → [0,1); 1 → [1,2); 2,3 → [2,4); 4,7 → [4,8); 8 → [8,16);
        // 1023 → [512,1024); 1024 → [1024,2048).
        assert_eq!(
            buckets,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 4, 2),
                (4, 8, 2),
                (8, 16, 1),
                (512, 1024, 1),
                (1024, 2048, 1),
            ]
        );
        // Every sample lies inside its bucket's half-open range.
        for (lo, hi, _) in buckets {
            assert!(lo < hi);
        }
    }

    #[test]
    fn merge_of_shards_equals_histogram_of_concatenation() {
        // The satellite invariant: shard-and-merge must be exactly the
        // same histogram as recording the concatenated samples.
        let mut state = 1u64;
        let samples: Vec<u64> = (0..10_000).map(|_| splitmix(&mut state) >> 40).collect();

        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }

        for shards in [2usize, 3, 7] {
            let mut merged = LogHistogram::new();
            for chunk in samples.chunks(samples.len().div_ceil(shards)) {
                let mut shard = LogHistogram::new();
                for &s in chunk {
                    shard.record(s);
                }
                merged.merge(&shard);
            }
            assert_eq!(merged, whole, "merge of {shards} shards diverged");
            // Percentiles are functions of the counts, so they agree too.
            for p in [50.0, 95.0, 99.0, 99.9] {
                assert_eq!(merged.percentile(p), whole.percentile(p));
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_empty_is_identity() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [1u64, 5, 100] {
            a.record(v);
        }
        for v in [2u64, 5, 1_000_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut with_empty = a.clone();
        with_empty.merge(&LogHistogram::new());
        assert_eq!(with_empty, a);
        assert_eq!(LogHistogram::new().percentile(50.0), 0.0);
    }

    #[test]
    fn log_histogram_percentiles_bracket_the_samples() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p999 = h.percentile(99.9);
        assert!((256.0..=1024.0).contains(&p50), "p50 = {p50}");
        assert!((512.0..=2048.0).contains(&p999), "p99.9 = {p999}");
        assert!(h.percentile(0.0) <= p50 && p50 <= p999);
    }

    #[test]
    fn log_histogram_serializes_sparse_buckets() {
        let mut h = LogHistogram::new();
        h.record(3);
        h.record(3);
        h.record(1 << 40);
        let j = h.to_json();
        assert_eq!(j.get("total").and_then(Json::as_i64), Some(3));
        let Some(Json::Arr(buckets)) = j.get("buckets") else {
            panic!("buckets array");
        };
        assert_eq!(buckets.len(), 2, "only non-empty buckets serialize");
        assert_eq!(buckets[0].get("count").and_then(Json::as_i64), Some(2));
    }
}
