//! Integration tests for the service plane: the request front-end over
//! the machine pool. The contract under test is the two-clocks split —
//! arrivals, queueing, shedding and latency live entirely on the
//! modeled clock (so a step is a pure function of the request mix, the
//! policy configuration, the rate and the seed), while the requests
//! that survive admission and backpressure are *really executed* on a
//! [`MachinePool`] and must produce outputs bit-identical to running
//! the same mix directly on a pool with no service front-end at all.

use std::sync::Arc;

use dir::encode::SchemeKind;
use uhm::resilience::AdmissionPolicy;
use uhm::service::{Service, ServiceConfig};
use uhm::{DtbConfig, Machine, Mode, RequestOutcome, TenantOutcome};

fn machine_for(source: &str) -> Arc<Machine> {
    let hir = hlr::compile(source).expect("test sources compile");
    let program = dir::compiler::compile(&hir);
    let mut machine = Machine::new(&program, SchemeKind::Packed);
    machine.freeze_translations();
    Arc::new(machine)
}

/// A loop that writes its counter: distinct `iters` gives distinct
/// outputs and service times.
fn looping(iters: u32) -> Arc<Machine> {
    machine_for(&format!(
        "proc main() begin int i := 0; while i < {iters} do i := i + 1; write i; end"
    ))
}

fn dtb() -> Mode {
    Mode::Dtb(DtbConfig::with_capacity(64))
}

/// Every submitted request has exactly one recorded outcome at every
/// arrival rate, from idle to far past saturation — the zero-lost
/// invariant the load bench gates on.
#[test]
fn full_accounting_across_the_rate_sweep() {
    let mut service = Service::new(ServiceConfig {
        workers: 2,
        queue_watermark: Some(4),
        tenant_quota: Some(3),
        seed: 9,
        ..ServiceConfig::default()
    });
    for i in 0..14 {
        service.submit(
            format!("t{}", i % 3),
            format!("r{i}"),
            looping(40 + (i % 4) * 25),
            dtb(),
        );
    }
    let run = service.run_load(&[1, 50, 5_000, 500_000]);
    assert_eq!(run.steps.len(), 4);
    for step in &run.steps {
        assert_eq!(step.results.len(), 14);
        assert_eq!(step.lost(), 0, "no request may vanish");
        let statuses = ["completed", "trapped", "panicked", "rejected", "shed"];
        let accounted: usize = statuses.iter().map(|s| step.outcome_count(s)).sum();
        assert_eq!(accounted, 14, "every outcome is one of the five states");
    }
    assert_eq!(run.lost(), 0);
    assert_eq!(run.total_requests(), 56);
}

/// Completed service-path outputs are bit-identical to executing the
/// same request mix directly on a [`uhm::MachinePool`] with no
/// admission, queueing or shedding in front of it.
#[test]
fn service_outputs_are_bit_identical_to_direct_pool_execution() {
    let mut service = Service::new(ServiceConfig {
        workers: 3,
        seed: 21,
        ..ServiceConfig::default()
    });
    for i in 0..12u32 {
        service.submit(
            format!("t{}", i % 4),
            format!("r{i}"),
            looping(30 + i * 7),
            dtb(),
        );
    }
    // A generous rate: nothing is shed, so both paths run the full mix.
    let step = service.run_at(1);
    assert_eq!(step.outcome_count("completed"), 12);

    let direct = service.direct_pool().run();
    assert_eq!(direct.results.len(), 12);
    for (svc, pool) in step.results.iter().zip(&direct.results) {
        assert_eq!(svc.name, pool.name, "same submission order");
        let (RequestOutcome::Completed(a), TenantOutcome::Completed(b)) =
            (&svc.outcome, &pool.outcome)
        else {
            panic!("both paths complete {}", svc.name);
        };
        assert_eq!(a.output, b.output, "outputs diverged for {}", svc.name);
        assert_eq!(
            a.metrics.cycles.total(),
            b.metrics.cycles.total(),
            "modeled cycles diverged for {}",
            svc.name
        );
    }
}

/// The same service replayed with the same seed reproduces the step
/// exactly — arrivals, dispatch, latencies, outcomes and outputs — and
/// a different seed moves the (jittered) arrival times.
#[test]
fn replay_with_the_same_seed_is_deterministic() {
    let build = |seed| {
        let mut service = Service::new(ServiceConfig {
            workers: 2,
            queue_watermark: Some(5),
            seed,
            ..ServiceConfig::default()
        });
        for i in 0..10u32 {
            service.submit(format!("t{}", i % 2), format!("r{i}"), looping(60), dtb());
        }
        service
    };
    let a = build(0xABC).run_at(2_000);
    let b = build(0xABC).run_at(2_000);
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.arrival_cycle, y.arrival_cycle);
        assert_eq!(x.start_cycle, y.start_cycle);
        assert_eq!(x.latency_cycles, y.latency_cycles);
        assert_eq!(x.worker, y.worker);
        assert_eq!(x.outcome.status(), y.outcome.status());
        match (&x.outcome, &y.outcome) {
            (RequestOutcome::Completed(p), RequestOutcome::Completed(q)) => {
                assert_eq!(p.output, q.output);
            }
            (RequestOutcome::Shed(p), RequestOutcome::Shed(q)) => assert_eq!(p, q),
            _ => {}
        }
    }
    assert_eq!(a.queue_peak, b.queue_peak);

    let c = build(0xDEF).run_at(2_000);
    assert!(
        a.results
            .iter()
            .zip(&c.results)
            .any(|(x, y)| x.arrival_cycle != y.arrival_cycle),
        "a different seed draws different arrival jitter"
    );
}

/// Under a skewed mix — one tenant flooding, others light — the
/// round-robin fair queue still serves every light tenant, and the
/// per-tenant quota sheds only the flooder's excess.
#[test]
fn fairness_under_skewed_tenants() {
    let mut service = Service::new(ServiceConfig {
        workers: 1,
        tenant_quota: Some(2),
        seed: 3,
        ..ServiceConfig::default()
    });
    // hog submits 10 requests, three light tenants one each.
    for i in 0..10 {
        service.submit("hog", format!("hog-{i}"), looping(150), dtb());
    }
    for t in 0..3 {
        service.submit(
            format!("light{t}"),
            format!("light-{t}"),
            looping(40),
            dtb(),
        );
    }
    let step = service.run_at(300_000);
    for r in &step.results {
        if r.tenant.starts_with("light") {
            assert_eq!(
                r.outcome.status(),
                "completed",
                "light tenant {} must not starve behind the flood",
                r.name
            );
        }
    }
    let quota_shed: Vec<_> = step
        .results
        .iter()
        .filter(|r| matches!(&r.outcome, RequestOutcome::Shed(m) if m.starts_with("quota:")))
        .collect();
    assert!(!quota_shed.is_empty(), "the flood exceeds its quota");
    assert!(
        quota_shed.iter().all(|r| r.tenant == "hog"),
        "only the flooding tenant is shed by quota"
    );

    // With lanes balanced, dispatch interleaves tenants round-robin
    // rather than draining one lane first.
    let mut balanced = Service::new(ServiceConfig {
        workers: 1,
        seed: 5,
        ..ServiceConfig::default()
    });
    for i in 0..4 {
        balanced.submit("a", format!("a{i}"), looping(50), dtb());
        balanced.submit("b", format!("b{i}"), looping(50), dtb());
    }
    let step = balanced.run_at(400_000);
    let mut served: Vec<_> = step.results.iter().filter(|r| r.outcome.served()).collect();
    served.sort_by_key(|r| r.start_cycle);
    let order: Vec<&str> = served.iter().map(|r| r.tenant.as_str()).collect();
    // The cursor may serve the same lane twice across an arrival
    // boundary (the other lane was empty at pop time), but it can never
    // serve one lane three times in a row while the other has backlog.
    assert!(
        order.windows(3).all(|w| !(w[0] == w[1] && w[1] == w[2])),
        "round-robin never drains one lane while the other waits, got {order:?}"
    );
    assert!(
        order.contains(&"a") && order.contains(&"b"),
        "both lanes are served: {order:?}"
    );
}

/// Backpressure engages exactly at the configured watermark: the
/// backlog never exceeds it, the overflow is shed with a
/// `backpressure:` reason, and removing the watermark serves everyone.
#[test]
fn backpressure_engages_at_the_watermark() {
    let build = |watermark| {
        let mut service = Service::new(ServiceConfig {
            workers: 1,
            queue_watermark: watermark,
            seed: 17,
            ..ServiceConfig::default()
        });
        for i in 0..12 {
            service.submit("t", format!("r{i}"), looping(200), dtb());
        }
        service
    };
    let step = build(Some(3)).run_at(500_000);
    assert!(step.queue_peak <= 3, "backlog is capped at the watermark");
    let shed: Vec<_> = step
        .results
        .iter()
        .filter(|r| r.outcome.status() == "shed")
        .collect();
    assert!(!shed.is_empty(), "the burst overflows a watermark of 3");
    for r in &shed {
        match &r.outcome {
            RequestOutcome::Shed(m) => assert!(
                m.starts_with("backpressure:"),
                "single-tenant overflow sheds via the watermark, got {m:?}"
            ),
            other => panic!("expected Shed, got {other:?}"),
        }
    }
    // Same burst, no watermark: everything queues and completes.
    let open = build(None).run_at(500_000);
    assert_eq!(open.outcome_count("completed"), 12);
    assert!(open.queue_peak > 3, "the uncapped backlog grows past 3");
}

/// Static admission rejects an oversized program before it executes —
/// and with `right_size` the same program is admitted on a grown DTB
/// geometry instead.
#[test]
fn admission_rejects_or_right_sizes_before_execution() {
    let big = machine_for(
        "proc main() begin \
         int a := 1; int b := 2; int c := 3; int d := 4; \
         int i := 0; \
         while i < 40 do begin \
           a := a + b; b := b + c; c := c + d; d := d + a; \
           i := i + 1; \
         end \
         write a + b + c + d; end",
    );
    let reject = |policy: AdmissionPolicy| {
        let mut service = Service::new(ServiceConfig {
            workers: 1,
            admission: policy,
            seed: 2,
            ..ServiceConfig::default()
        });
        service.submit("t", "big", Arc::clone(&big), dtb());
        service.run_at(10)
    };
    let step = reject(AdmissionPolicy {
        max_pressure_words: Some(1),
        right_size: false,
    });
    match &step.results[0].outcome {
        RequestOutcome::Rejected(m) => {
            assert!(m.starts_with("admission:"), "{m:?}");
            assert!(m.contains("translation words"), "{m:?}");
        }
        other => panic!("expected a static rejection, got {other:?}"),
    }
    assert_eq!(step.served(), 0, "a rejected request never executes");

    let step = reject(AdmissionPolicy {
        max_pressure_words: None,
        right_size: true,
    });
    assert_eq!(
        step.results[0].outcome.status(),
        "completed",
        "right-sizing admits the program on a recommended geometry"
    );
}
