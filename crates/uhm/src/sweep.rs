//! Parameter-sweep helpers: the experiment loops of the benchmark harness
//! as a reusable API.
//!
//! Downstream users exploring a design point (how big should the DTB be
//! for this workload? which encoding? which associativity?) get one-call
//! sweeps returning structured rows instead of re-writing the machine
//! loop.

use dir::encode::SchemeKind;
use dir::program::Program;
use memsim::Geometry;
use psder::MAX_TRANSLATION_WORDS;

use crate::dtb::{Allocation, DtbConfig, DtbStats, Replacement};
use crate::machine::{Machine, Mode};

/// One row of a DTB capacity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// DTB entries.
    pub entries: usize,
    /// DTB statistics of the run.
    pub stats: DtbStats,
    /// Average interpretation time per DIR instruction.
    pub time_per_instruction: f64,
}

/// Runs a program at each DTB capacity, returning hit ratios and times.
///
/// # Panics
///
/// Panics if the program traps (sweeps are meant for the trap-free
/// workloads; run the program once first to check).
pub fn capacity_sweep(
    program: &Program,
    scheme: SchemeKind,
    capacities: &[usize],
) -> Vec<CapacityPoint> {
    let machine = Machine::new(program, scheme);
    capacities
        .iter()
        .map(|&entries| {
            let report = machine
                .run(&Mode::Dtb(DtbConfig::with_capacity(entries)))
                .expect("sweep workloads must be trap-free");
            CapacityPoint {
                entries,
                stats: report.metrics.dtb.expect("dtb mode"),
                time_per_instruction: report.metrics.time_per_instruction(),
            }
        })
        .collect()
}

/// One row of an associativity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssocPoint {
    /// Ways per set (equal-capacity sweep).
    pub ways: usize,
    /// DTB statistics of the run.
    pub stats: DtbStats,
}

/// Runs a program at fixed capacity across associativity degrees.
///
/// # Panics
///
/// Panics if a degree does not divide `capacity`, or the program traps.
pub fn associativity_sweep(
    program: &Program,
    scheme: SchemeKind,
    capacity: usize,
    degrees: &[usize],
) -> Vec<AssocPoint> {
    let machine = Machine::new(program, scheme);
    degrees
        .iter()
        .map(|&ways| {
            assert!(
                capacity.is_multiple_of(ways),
                "degree {ways} does not divide capacity {capacity}"
            );
            let cfg = DtbConfig {
                geometry: Geometry::new(capacity / ways, ways),
                unit_words: MAX_TRANSLATION_WORDS,
                allocation: Allocation::Fixed,
                replacement: Replacement::Lru,
            };
            let report = machine.run(&Mode::Dtb(cfg)).expect("trap-free");
            AssocPoint {
                ways,
                stats: report.metrics.dtb.expect("dtb mode"),
            }
        })
        .collect()
}

/// One row of an encoding-scheme sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemePoint {
    /// The encoding scheme.
    pub scheme: SchemeKind,
    /// Static program size in bits.
    pub program_bits: u64,
    /// Mean measured decode cost (`d`).
    pub mean_decode_cost: f64,
    /// Interpreter (T1) time per instruction.
    pub interpreter_time: f64,
    /// DTB (T2) time per instruction at the given capacity.
    pub dtb_time: f64,
}

/// Sweeps all encoding schemes for one program, reporting the static-size
/// versus execution-time trade-off under both T1 and T2.
///
/// # Panics
///
/// Panics if the program traps.
pub fn scheme_sweep(program: &Program, dtb_entries: usize) -> Vec<SchemePoint> {
    SchemeKind::all()
        .into_iter()
        .map(|scheme| {
            let machine = Machine::new(program, scheme);
            let image = machine.image();
            let (program_bits, mean_decode_cost) = (image.program_bits(), image.mean_decode_cost());
            let t1 = machine
                .run(&Mode::Interpreter)
                .expect("trap-free")
                .metrics
                .time_per_instruction();
            let t2 = machine
                .run(&Mode::Dtb(DtbConfig::with_capacity(dtb_entries)))
                .expect("trap-free")
                .metrics
                .time_per_instruction();
            SchemePoint {
                scheme,
                program_bits,
                mean_decode_cost,
                interpreter_time: t1,
                dtb_time: t2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sieve() -> Program {
        dir::compiler::compile(&hlr::programs::SIEVE.compile().expect("compiles"))
    }

    #[test]
    fn capacity_sweep_is_monotone() {
        let points = capacity_sweep(&sieve(), SchemeKind::Huffman, &[4, 16, 64, 256]);
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(w[0].stats.hit_ratio() <= w[1].stats.hit_ratio() + 1e-12);
            assert!(w[0].time_per_instruction >= w[1].time_per_instruction - 1e-9);
        }
    }

    #[test]
    fn associativity_sweep_covers_degrees() {
        let points = associativity_sweep(&sieve(), SchemeKind::Packed, 32, &[1, 2, 4, 8]);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.stats.hit_ratio() > 0.9, "ways {}: {:?}", p.ways, p.stats);
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn associativity_sweep_rejects_bad_degree() {
        associativity_sweep(&sieve(), SchemeKind::Packed, 32, &[3]);
    }

    #[test]
    fn scheme_sweep_shows_the_tradeoff() {
        let points = scheme_sweep(&sieve(), 64);
        assert_eq!(points.len(), SchemeKind::all().len());
        let byte = &points[0];
        let pair = &points[4];
        assert!(pair.program_bits < byte.program_bits);
        assert!(pair.mean_decode_cost > byte.mean_decode_cost);
        // Under the DTB, the decode penalty of heavy encoding mostly
        // vanishes: T2 spread is far smaller than T1 spread.
        let t1_spread = points
            .iter()
            .map(|p| p.interpreter_time)
            .fold(f64::MIN, f64::max)
            - points
                .iter()
                .map(|p| p.interpreter_time)
                .fold(f64::MAX, f64::min);
        let t2_spread = points.iter().map(|p| p.dtb_time).fold(f64::MIN, f64::max)
            - points.iter().map(|p| p.dtb_time).fold(f64::MAX, f64::min);
        assert!(
            t2_spread < t1_spread / 2.0,
            "t1 spread {t1_spread}, t2 spread {t2_spread}"
        );
    }
}
