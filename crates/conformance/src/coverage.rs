//! Coverage accounting over the generated-program space.
//!
//! The hand-written sample corpus exercises a fixed, known slice of the
//! opcode/pair/trap space; the conformance sweep's value is exactly the
//! part it covers *beyond* that. This module measures what a batch of
//! cases actually touched — opcodes (static and dynamic), static opcode
//! pairs, encoding schemes, DTB execution tiers, DTB miss classes and
//! trap classes — so the sweep can gate on "coverage never shrinks"
//! instead of hoping the generator stays diverse.

use std::collections::BTreeSet;

use dir::isa::{Opcode, OPCODE_COUNT};
use dir::program::Program;
use telemetry::Json;
use uhm::DtbStats;

/// Accumulated coverage over any number of conformance cases.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Opcodes present in at least one compiled program.
    pub static_opcodes: BTreeSet<Opcode>,
    /// Opcodes dynamically retired at least once.
    pub dynamic_opcodes: BTreeSet<Opcode>,
    /// Adjacent static opcode pairs (the symbols of the pair encodings).
    pub opcode_pairs: BTreeSet<(Opcode, Opcode)>,
    /// Encoding schemes a case ran under.
    pub schemes: BTreeSet<&'static str>,
    /// Execution tiers exercised (`interp` / `psder` / `trusted` /
    /// `sited` — the last when per-site check-elision facts were
    /// non-empty and the elided run was audited).
    pub tiers: BTreeSet<&'static str>,
    /// DTB miss classes observed (`cold` / `capacity` / `conflict`).
    pub miss_classes: BTreeSet<&'static str>,
    /// Trap classes raised and cross-checked (`div_by_zero`, ...).
    pub trap_classes: BTreeSet<&'static str>,
    /// Distinct generated programs accounted.
    pub programs: u64,
    /// Oracle cases accounted (one program may contribute several).
    pub cases: u64,
    /// Dynamic DIR instructions retired by the reference DIR executor.
    pub dyn_instructions: u64,
}

impl Coverage {
    /// A fresh, empty accumulator.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Records the static shape of one compiled program: opcodes and
    /// adjacent opcode pairs.
    pub fn record_static(&mut self, program: &Program) {
        let mut prev: Option<Opcode> = None;
        for inst in &program.code {
            let op = inst.opcode();
            self.static_opcodes.insert(op);
            if let Some(p) = prev {
                self.opcode_pairs.insert((p, op));
            }
            prev = Some(op);
        }
    }

    /// Records dynamic opcode counts from a reference execution.
    pub fn record_dynamic(&mut self, counts: &[u64; OPCODE_COUNT]) {
        for (op, &n) in dir::isa::OPCODES.iter().zip(counts) {
            if n > 0 {
                self.dynamic_opcodes.insert(*op);
            }
        }
    }

    /// Records the miss-class taxonomy of one classified DTB run.
    pub fn record_miss_classes(&mut self, stats: &DtbStats) {
        if stats.cold_misses > 0 {
            self.miss_classes.insert("cold");
        }
        if stats.capacity_misses > 0 {
            self.miss_classes.insert("capacity");
        }
        if stats.conflict_misses > 0 {
            self.miss_classes.insert("conflict");
        }
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.static_opcodes
            .extend(other.static_opcodes.iter().copied());
        self.dynamic_opcodes
            .extend(other.dynamic_opcodes.iter().copied());
        self.opcode_pairs.extend(other.opcode_pairs.iter().copied());
        self.schemes.extend(other.schemes.iter().copied());
        self.tiers.extend(other.tiers.iter().copied());
        self.miss_classes.extend(other.miss_classes.iter().copied());
        self.trap_classes.extend(other.trap_classes.iter().copied());
        self.programs += other.programs;
        self.cases += other.cases;
        self.dyn_instructions += other.dyn_instructions;
    }

    /// The canonical JSON section: summary counts plus the exact sets,
    /// so a coverage diff between two sweeps is a line diff.
    pub fn to_json(&self) -> Json {
        let ops = |set: &BTreeSet<Opcode>| {
            Json::Arr(set.iter().map(|o| format!("{o:?}").into()).collect())
        };
        let strs =
            |set: &BTreeSet<&'static str>| Json::Arr(set.iter().map(|s| Json::from(*s)).collect());
        Json::obj(vec![
            ("programs", self.programs.into()),
            ("cases", self.cases.into()),
            ("dyn_instructions", self.dyn_instructions.into()),
            ("static_opcodes", (self.static_opcodes.len() as u64).into()),
            (
                "dynamic_opcodes",
                (self.dynamic_opcodes.len() as u64).into(),
            ),
            ("opcode_pairs", (self.opcode_pairs.len() as u64).into()),
            ("schemes", (self.schemes.len() as u64).into()),
            ("tiers", (self.tiers.len() as u64).into()),
            ("miss_classes", (self.miss_classes.len() as u64).into()),
            ("trap_classes", (self.trap_classes.len() as u64).into()),
            ("static_opcode_set", ops(&self.static_opcodes)),
            ("dynamic_opcode_set", ops(&self.dynamic_opcodes)),
            ("scheme_set", strs(&self.schemes)),
            ("tier_set", strs(&self.tiers)),
            ("miss_class_set", strs(&self.miss_classes)),
            ("trap_class_set", strs(&self.trap_classes)),
        ])
    }

    /// Checks this coverage against a committed floor (the `coverage`
    /// object of `baselines/conformance_sweep.json`). Returns one
    /// violation message per dimension that regressed below its floor.
    pub fn check_floor(&self, floor: &Json) -> Vec<String> {
        let mut violations = Vec::new();
        let mut gate = |key: &str, measured: u64| {
            if let Some(want) = floor.get(key).and_then(Json::as_i64) {
                if (measured as i64) < want {
                    violations.push(format!(
                        "coverage regression: {key} = {measured}, baseline floor {want}"
                    ));
                }
            }
        };
        gate("programs", self.programs);
        gate("static_opcodes", self.static_opcodes.len() as u64);
        gate("dynamic_opcodes", self.dynamic_opcodes.len() as u64);
        gate("opcode_pairs", self.opcode_pairs.len() as u64);
        gate("schemes", self.schemes.len() as u64);
        gate("tiers", self.tiers.len() as u64);
        gate("miss_classes", self.miss_classes.len() as u64);
        gate("trap_classes", self.trap_classes.len() as u64);
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let hir = hlr::compile("proc main() begin int i; for i := 0 to 9 do write i * 2; end")
            .expect("sample compiles");
        dir::compiler::compile(&hir)
    }

    #[test]
    fn static_accounting_sees_opcodes_and_pairs() {
        let mut cov = Coverage::new();
        cov.record_static(&sample());
        assert!(cov.static_opcodes.contains(&Opcode::Write));
        assert!(!cov.static_opcodes.is_empty());
        // A program of n instructions has at most n-1 distinct pairs.
        assert!(cov.opcode_pairs.len() < sample().code.len());
    }

    #[test]
    fn merge_is_a_union() {
        let mut a = Coverage::new();
        a.record_static(&sample());
        a.programs = 1;
        let mut b = Coverage::new();
        b.trap_classes.insert("div_by_zero");
        b.programs = 2;
        a.merge(&b);
        assert_eq!(a.programs, 3);
        assert!(a.trap_classes.contains("div_by_zero"));
        assert!(a.static_opcodes.contains(&Opcode::Write));
    }

    #[test]
    fn floor_check_flags_regressions_only() {
        let mut cov = Coverage::new();
        cov.record_static(&sample());
        cov.programs = 10;
        let floor = Json::obj(vec![
            ("programs", 5i64.into()),
            ("static_opcodes", 100i64.into()),
        ]);
        let v = cov.check_floor(&floor);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("static_opcodes"));
    }

    #[test]
    fn json_round_trips() {
        let mut cov = Coverage::new();
        cov.record_static(&sample());
        cov.schemes.insert("huffman");
        let text = cov.to_json().render();
        let back = Json::parse(&text).expect("coverage json parses");
        assert_eq!(back.get("schemes").and_then(Json::as_i64), Some(1));
    }
}
