//! Trace sinks: where emitted events go.
//!
//! The machines are generic over the sink so that the disabled case
//! ([`NullSink`]) monomorphizes to nothing — the `ENABLED` associated
//! constant lets call sites guard even the *construction* of an event
//! behind a compile-time constant, keeping the hot interpretation loop
//! identical to the pre-telemetry code when tracing is off.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::event::{Event, EventCounts};

/// A consumer of trace events.
pub trait TraceSink {
    /// Whether this sink observes events at all. When `false` (only
    /// [`NullSink`]), emitting code compiles out entirely.
    const ENABLED: bool = true;

    /// Whether the machine should run the shadow three-C miss
    /// classifier for this sink.
    ///
    /// The classifier fills the cold/capacity/conflict taxonomy in the
    /// run's `DtbStats` — observable in the metrics — and costs a shadow
    /// LRU probe per lookup. Diagnostic sinks (the flight-recorder ring,
    /// JSONL dumps) want it; profiling sinks set this `false` so a
    /// profiled run's metrics stay bit-identical to an untraced run and
    /// the counter plane's overhead stays within its gate.
    const CLASSIFY_MISSES: bool = true;

    /// Consumes one event.
    fn emit(&mut self, event: Event);
}

/// The disabled sink: all tracing code is eliminated at compile time.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: Event) {}
}

/// A bounded ring buffer of the most recent events, plus exact running
/// counts per event kind (counts never saturate, even after the ring
/// wraps). This is the "flight recorder" sink: cheap enough to leave on,
/// with the tail available for post-mortem inspection.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    counts: EventCounts,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            counts: EventCounts::default(),
            dropped: 0,
        }
    }

    /// Exact per-kind totals over the whole run.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// The retained tail of events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: Event) {
        self.counts.record(&event);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// Streams every event as one JSON object per line (JSONL) into a writer.
///
/// IO errors are recorded (and subsequent writes skipped) rather than
/// panicking mid-run; check [`JsonlSink::error`] after the run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out`. Wrap the writer in a
    /// `BufWriter` for file targets — events are small and frequent.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first IO error hit, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the deferred write error or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: Event) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.out, "{}", event.to_json()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Fans one event stream out to two sinks (e.g. a ring for counts plus a
/// JSONL file for offline analysis).
#[derive(Debug)]
pub struct TeeSink<'a, A: TraceSink, B: TraceSink>(pub &'a mut A, pub &'a mut B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    const CLASSIFY_MISSES: bool = A::CLASSIFY_MISSES || B::CLASSIFY_MISSES;

    fn emit(&mut self, event: Event) {
        if A::ENABLED {
            self.0.emit(event);
        }
        if B::ENABLED {
            self.1.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MissKind;
    use crate::json::Json;

    fn hit(addr: u32) -> Event {
        Event::DtbHit { addr }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        NullSink.emit(hit(1)); // compiles, does nothing
    }

    #[test]
    fn ring_keeps_tail_and_exact_counts() {
        let mut ring = RingSink::new(3);
        for addr in 0..10 {
            ring.emit(hit(addr));
        }
        ring.emit(Event::DtbMiss {
            addr: 99,
            kind: MissKind::Cold,
        });
        assert_eq!(ring.counts().dtb_hits, 10);
        assert_eq!(ring.counts().dtb_misses, 1);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 8);
        let tail: Vec<Event> = ring.events().copied().collect();
        assert_eq!(
            tail,
            vec![
                hit(8),
                hit(9),
                Event::DtbMiss {
                    addr: 99,
                    kind: MissKind::Cold
                }
            ]
        );
    }

    #[test]
    fn zero_capacity_ring_still_counts() {
        let mut ring = RingSink::new(0);
        ring.emit(hit(1));
        assert_eq!(ring.counts().dtb_hits, 1);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(hit(5));
        sink.emit(Event::Evict { addr: 5, victim: 2 });
        assert_eq!(sink.written(), 2);
        let out = sink.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ev").and_then(Json::as_str), Some("dtb_hit"));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("victim").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut ring = RingSink::new(8);
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut tee = TeeSink(&mut ring, &mut jsonl);
        tee.emit(hit(1));
        tee.emit(hit(2));
        assert_eq!(ring.counts().dtb_hits, 2);
        assert_eq!(jsonl.written(), 2);
    }
}
