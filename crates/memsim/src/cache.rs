//! Set-associative caches with true-LRU replacement.
//!
//! This is the organisation the paper prescribes both for the conventional
//! instruction cache of the T3 baseline and for the associative address
//! array of the dynamic translation buffer: the address is hashed to a set,
//! the set's ways are searched associatively, and "the one selected for
//! replacement is that which was used least recently" tracked by a
//! replacement array (§5.2).

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of sets (the hash range).
    pub sets: usize,
    /// Ways per set (associativity degree; the paper's default is 4).
    pub ways: usize,
}

impl Geometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Geometry {
        assert!(sets > 0, "sets must be positive");
        assert!(ways > 0, "ways must be positive");
        Geometry { sets, ways }
    }

    /// A fully associative geometry of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn fully_associative(capacity: usize) -> Geometry {
        Geometry::new(1, capacity)
    }

    /// The smallest geometry of the given associativity holding at least
    /// `capacity` entries, with a power-of-two set count (so the set hash
    /// stays a mask). This is how the analyze plane's DTB pressure pass
    /// turns a static working-set bound into a recommended geometry.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn with_capacity(capacity: usize, ways: usize) -> Geometry {
        assert!(ways > 0, "ways must be positive");
        let sets = capacity.div_ceil(ways).max(1).next_power_of_two();
        Geometry::new(sets, ways)
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The key was present.
    Hit,
    /// The key was absent and has been installed, possibly evicting
    /// another key.
    Miss {
        /// The key displaced to make room, if the set was full.
        evicted: Option<u64>,
    },
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that evicted a resident key.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in [0, 1]; zero when no accesses occurred.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache entry: a key plus its payload and recency stamp.
#[derive(Debug, Clone, Copy)]
struct Entry<P> {
    key: u64,
    payload: P,
    stamp: u64,
}

/// A set-associative LRU cache mapping `u64` keys to payloads.
///
/// The payload type parameter lets the same structure serve as a plain
/// instruction cache (`P = ()`) and as the DTB address array (`P =`
/// buffer-array location).
#[derive(Debug, Clone)]
pub struct SetAssocCache<P = ()> {
    geometry: Geometry,
    /// `sets * ways` optional entries, row-major by set.
    entries: Vec<Option<Entry<P>>>,
    clock: u64,
    stats: CacheStats,
}

impl<P: Copy> SetAssocCache<P> {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        SetAssocCache {
            geometry,
            entries: vec![None; geometry.capacity()],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let set = (key % self.geometry.sets as u64) as usize;
        let start = set * self.geometry.ways;
        start..start + self.geometry.ways
    }

    /// Looks up `key` without installing it or updating recency/statistics.
    pub fn probe(&self, key: u64) -> Option<&P> {
        self.entries[self.set_range(key)]
            .iter()
            .flatten()
            .find(|e| e.key == key)
            .map(|e| &e.payload)
    }

    /// Accesses `key`: on a hit the entry's recency is refreshed and its
    /// payload returned via `on_hit`; on a miss, `make_payload` supplies the
    /// payload to install and the LRU way of the set is replaced.
    pub fn access_with(&mut self, key: u64, make_payload: impl FnOnce() -> P) -> (Access, P) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(key);
        // Hit path.
        for e in self.entries[range.clone()].iter_mut().flatten() {
            if e.key == key {
                e.stamp = clock;
                self.stats.hits += 1;
                return (Access::Hit, e.payload);
            }
        }
        // Miss: pick an empty way, else the LRU way.
        self.stats.misses += 1;
        let payload = make_payload();
        let victim = self.entries[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, slot)| slot.as_ref().map(|e| e.stamp).unwrap_or(0))
            .map(|(i, _)| range.start + i)
            .expect("ways > 0");
        let evicted = self.entries[victim].as_ref().map(|e| e.key);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        self.entries[victim] = Some(Entry {
            key,
            payload,
            stamp: clock,
        });
        (Access::Miss { evicted }, payload)
    }

    /// Removes `key` if present, returning its payload.
    pub fn invalidate(&mut self, key: u64) -> Option<P> {
        let range = self.set_range(key);
        for slot in &mut self.entries[range] {
            if slot.as_ref().is_some_and(|e| e.key == key) {
                return slot.take().map(|e| e.payload);
            }
        }
        None
    }

    /// Number of resident entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Iterates over resident keys (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().flatten().map(|e| e.key)
    }
}

impl SetAssocCache<()> {
    /// Convenience access for payload-less caches.
    pub fn access(&mut self, key: u64) -> Access {
        self.access_with(key, || ()).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(Geometry::new(4, 2));
        assert!(matches!(c.access(10), Access::Miss { evicted: None }));
        assert_eq!(c.access(10), Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: keys 0, 1 fill it; touching 0 makes 1 the victim.
        let mut c = SetAssocCache::new(Geometry::new(1, 2));
        c.access(0);
        c.access(1);
        c.access(0); // refresh 0
        match c.access(2) {
            Access::Miss { evicted: Some(k) } => assert_eq!(k, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.access(0), Access::Hit);
    }

    #[test]
    fn sets_partition_by_modulo() {
        let mut c = SetAssocCache::new(Geometry::new(2, 1));
        c.access(0); // set 0
        c.access(1); // set 1
                     // key 2 maps to set 0, evicting 0 but not 1.
        match c.access(2) {
            Access::Miss { evicted: Some(k) } => assert_eq!(k, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.access(1), Access::Hit);
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = SetAssocCache::new(Geometry::fully_associative(4));
        for k in 0..4 {
            c.access(k);
        }
        for k in 0..4 {
            assert_eq!(c.access(k), Access::Hit, "key {k}");
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn payload_returned_on_hit_and_miss() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(Geometry::new(1, 2));
        let (a, p) = c.access_with(7, || 42);
        assert!(matches!(a, Access::Miss { .. }));
        assert_eq!(p, 42);
        let (a, p) = c.access_with(7, || unreachable!("hit must not rebuild"));
        assert_eq!(a, Access::Hit);
        assert_eq!(p, 42);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = SetAssocCache::new(Geometry::new(1, 1));
        c.access(5);
        let stats = c.stats();
        assert!(c.probe(5).is_some());
        assert!(c.probe(6).is_none());
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(Geometry::new(2, 2));
        c.access_with(3, || 9);
        assert_eq!(c.invalidate(3), Some(9));
        assert_eq!(c.invalidate(3), None);
        assert!(c.probe(3).is_none());
    }

    #[test]
    fn more_ways_at_fixed_sets_never_hurt() {
        // LRU inclusion holds per set when the set mapping is unchanged and
        // only the ways grow.
        let trace: Vec<u64> = (0..1000).map(|i| (i * 7) % 23).collect();
        let mut misses = Vec::new();
        for ways in [1usize, 2, 4, 8] {
            let mut c = SetAssocCache::new(Geometry::new(4, ways));
            for &k in &trace {
                c.access(k);
            }
            misses.push(c.stats().misses);
        }
        for w in misses.windows(2) {
            assert!(w[1] <= w[0], "associativity increased misses: {misses:?}");
        }
    }

    #[test]
    fn eviction_counting() {
        let mut c = SetAssocCache::new(Geometry::new(1, 1));
        c.access(1);
        c.access(2);
        c.access(3);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    #[should_panic(expected = "sets must be positive")]
    fn zero_sets_rejected() {
        Geometry::new(0, 1);
    }

    /// A trivially-correct LRU model: per set, a recency-ordered list.
    struct ModelLru {
        sets: usize,
        ways: usize,
        lists: Vec<Vec<u64>>, // most recent first
    }

    impl ModelLru {
        fn new(sets: usize, ways: usize) -> Self {
            ModelLru {
                sets,
                ways,
                lists: vec![Vec::new(); sets],
            }
        }

        fn access(&mut self, key: u64) -> bool {
            let list = &mut self.lists[(key % self.sets as u64) as usize];
            match list.iter().position(|&k| k == key) {
                Some(i) => {
                    list.remove(i);
                    list.insert(0, key);
                    true
                }
                None => {
                    if list.len() == self.ways {
                        list.pop();
                    }
                    list.insert(0, key);
                    false
                }
            }
        }
    }

    #[test]
    fn matches_reference_lru_model_on_random_streams() {
        // Deterministic pseudo-random streams across several geometries.
        for (sets, ways, seed) in [(1usize, 4usize, 11u64), (4, 2, 23), (8, 1, 5), (2, 8, 97)] {
            let mut cache = SetAssocCache::new(Geometry::new(sets, ways));
            let mut model = ModelLru::new(sets, ways);
            let mut x = seed | 1;
            for step in 0..5000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = x % 37;
                let want_hit = model.access(key);
                let got_hit = cache.access(key) == Access::Hit;
                assert_eq!(
                    got_hit, want_hit,
                    "divergence at step {step} ({sets}x{ways}, key {key})"
                );
            }
        }
    }

    #[test]
    fn keys_iterator_lists_residents() {
        let mut c = SetAssocCache::new(Geometry::new(2, 2));
        for k in [1, 2, 3] {
            c.access(k);
        }
        let mut keys: Vec<u64> = c.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2, 3]);
    }
}
