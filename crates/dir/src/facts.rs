//! Per-site check-elision facts proved by static analysis.
//!
//! [`SiteFacts`] is a pair of bitmaps over DIR addresses recording which
//! individual dynamic checks a static pass has discharged: a set `div_ok`
//! bit at address `a` means the divisor consumed by the instruction at `a`
//! was proved nonzero on every reachable path, and a set `idx_ok` bit means
//! the array index consumed at `a` was proved within `[0, len)`. Executors
//! consult the bitmap per instruction and skip just that one guard, even
//! when the whole-image trusted mode is unavailable — the fine-grained
//! counterpart of the all-or-nothing verification witness.
//!
//! Soundness is the *producer's* obligation (the analyze crate's dataflow
//! plane). The conformance auditor closes the loop dynamically: it re-runs
//! every elided site with the guard still evaluated and treats a firing
//! guard as a soundness divergence.

/// Bitmaps of per-address check-elision facts for one DIR program.
///
/// Addresses outside the recorded code length report `false` for every
/// fact, so a stale or truncated bitmap degrades to checked execution
/// rather than eliding anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteFacts {
    /// Length of the code array the facts were computed for.
    code_len: u32,
    /// One bit per address: divisor proved nonzero at this site.
    div_ok: Vec<u64>,
    /// One bit per address: array index proved in bounds at this site.
    idx_ok: Vec<u64>,
}

impl SiteFacts {
    /// Creates an all-false fact map for a program of `code_len`
    /// instructions (every check stays enabled).
    #[must_use]
    pub fn empty(code_len: u32) -> Self {
        let words = (code_len as usize).div_ceil(64);
        SiteFacts {
            code_len,
            div_ok: vec![0; words],
            idx_ok: vec![0; words],
        }
    }

    /// Length of the code array these facts describe.
    #[must_use]
    pub fn code_len(&self) -> u32 {
        self.code_len
    }

    /// True when no fact bit is set (pure checked execution).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.div_count() == 0 && self.idx_count() == 0
    }

    /// Records a proof that the divisor at `addr` is nonzero.
    pub fn set_div_ok(&mut self, addr: u32) {
        debug_assert!(addr < self.code_len, "fact address out of range");
        if let Some(w) = self.div_ok.get_mut(addr as usize / 64) {
            *w |= 1 << (addr % 64);
        }
    }

    /// Records a proof that the array index at `addr` is in bounds.
    pub fn set_idx_ok(&mut self, addr: u32) {
        debug_assert!(addr < self.code_len, "fact address out of range");
        if let Some(w) = self.idx_ok.get_mut(addr as usize / 64) {
            *w |= 1 << (addr % 64);
        }
    }

    /// True when the divide/remainder at `addr` may skip its zero guard.
    #[inline]
    #[must_use]
    pub fn div_ok(&self, addr: u32) -> bool {
        self.div_ok
            .get(addr as usize / 64)
            .is_some_and(|w| w >> (addr % 64) & 1 != 0)
    }

    /// True when the array access at `addr` may skip its bounds guard.
    #[inline]
    #[must_use]
    pub fn idx_ok(&self, addr: u32) -> bool {
        self.idx_ok
            .get(addr as usize / 64)
            .is_some_and(|w| w >> (addr % 64) & 1 != 0)
    }

    /// Number of sites whose divisor guard is discharged.
    #[must_use]
    pub fn div_count(&self) -> u32 {
        self.div_ok.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of sites whose bounds guard is discharged.
    #[must_use]
    pub fn idx_count(&self) -> u32 {
        self.idx_ok.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_facts_elide_nothing() {
        let f = SiteFacts::empty(130);
        assert!(f.is_empty());
        for a in 0..130 {
            assert!(!f.div_ok(a));
            assert!(!f.idx_ok(a));
        }
    }

    #[test]
    fn bits_round_trip_across_word_boundaries() {
        let mut f = SiteFacts::empty(130);
        for addr in [0, 1, 63, 64, 65, 127, 128, 129] {
            f.set_div_ok(addr);
            assert!(f.div_ok(addr), "div bit {addr}");
            assert!(!f.idx_ok(addr), "idx bit {addr} must stay clear");
        }
        f.set_idx_ok(64);
        assert!(f.idx_ok(64));
        assert_eq!(f.div_count(), 8);
        assert_eq!(f.idx_count(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn out_of_range_queries_report_false() {
        let f = SiteFacts::empty(10);
        assert!(!f.div_ok(5_000));
        assert!(!f.idx_ok(u32::MAX));
    }
}
