//! Generative conformance plane for the UHM reproduction.
//!
//! Rau's central claim is that a program means the same thing at every
//! representation level — high-level source, directly-interpretable
//! DIR, problem-sensitive PSDER — and that a universal host machine may
//! pick any translation/caching strategy between them without changing
//! observable behaviour. The workspace asserts this pointwise in unit
//! tests; this crate asserts it *generatively*: seeded random RAUL
//! programs (with feature toggles for arrays, calls, loop nesting,
//! division and trap-provoking inputs) are pushed through the full
//! cross-product of engines and machine configurations, and any
//! disagreement is automatically reduced to a minimal reproducing
//! source file.
//!
//! The pieces:
//!
//! * [`oracle`] — runs one program through every engine (reference
//!   evaluator, DIR executor, fused DIR, PSDER interpreter, machine
//!   interpreter/DTB/I-cache modes, tree and table decoders, trusted
//!   verified-image mode, profiled and miss-classified runs) and
//!   reports every divergence, including violations of the metric
//!   identities the planes promise.
//! * [`coverage`] — accounts what a batch of cases actually exercised
//!   (opcodes, opcode pairs, schemes, tiers, miss classes, trap
//!   classes) so the sweep can gate on coverage floors.
//! * [`mod@shrink`] — a delta-debugging minimizer over the RAUL AST
//!   driven by an arbitrary failure predicate.
//!
//! The `conformance_sweep` bench binary in `uhm-bench` drives these
//! over hundreds of seeds and enforces a committed coverage baseline.

#![warn(missing_docs)]

pub mod coverage;
pub mod oracle;
pub mod shrink;

pub use coverage::Coverage;
pub use oracle::{run_case, trap_class, CaseConfig, CaseReport, Divergence, Injection};
pub use shrink::{shrink, ShrinkStats};
