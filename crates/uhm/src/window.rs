//! Windowed time-series sampling of a machine run.
//!
//! End-of-run aggregates hide exactly what the paper's §6 is about:
//! working-set *phase transitions*. A machine with windowing enabled
//! (see [`Machine::set_window`](crate::Machine::set_window)) closes one
//! [`WindowSample`] every N dynamic DIR instructions, carrying the DTB
//! hit/miss deltas, the resident-translation occupancy at window close,
//! and the full per-activity cycle breakdown spent inside the window —
//! enough to plot hit-rate curves and see a loop's working set being
//! loaded, exploited and displaced.

use crate::metrics::CycleBreakdown;

/// One per-window sample of a machine run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowSample {
    /// Index of the first dynamic instruction in the window (0-based).
    pub start: u64,
    /// Dynamic instructions in the window (== the configured window
    /// length except for the final partial window).
    pub instructions: u64,
    /// DTB hits within the window (0 outside DTB modes).
    pub dtb_hits: u64,
    /// DTB misses within the window (0 outside DTB modes).
    pub dtb_misses: u64,
    /// Resident translations at window close (0 outside DTB modes).
    pub occupancy: usize,
    /// Cycles spent within the window, per activity.
    pub cycles: CycleBreakdown,
}

impl WindowSample {
    /// DTB hit rate within the window (`0.0` when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.dtb_hits + self.dtb_misses;
        if total == 0 {
            0.0
        } else {
            self.dtb_hits as f64 / total as f64
        }
    }

    /// Mean cycles per instruction within the window.
    pub fn time_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles.total() as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_guards_empty_windows() {
        assert_eq!(WindowSample::default().hit_rate(), 0.0);
        let w = WindowSample {
            dtb_hits: 3,
            dtb_misses: 1,
            ..WindowSample::default()
        };
        assert!((w.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn per_window_time_divides_by_window_instructions() {
        let w = WindowSample {
            instructions: 10,
            cycles: CycleBreakdown {
                decode: 25,
                semantic: 15,
                ..CycleBreakdown::default()
            },
            ..WindowSample::default()
        };
        assert!((w.time_per_instruction() - 4.0).abs() < 1e-12);
    }
}
