//! Textual assembler and disassembler for DIR programs.
//!
//! The disassembled form is a stable, line-oriented syntax that round-trips
//! exactly (`assemble(disassemble(p)) == p`), useful for golden tests,
//! debugging the compiler and fusion passes, and writing DIR programs by
//! hand in tests.
//!
//! ```text
//! .globals 3
//! .entry main
//! ; prelude
//!     push_const 5
//!     store_global 0
//!     call main
//!     halt
//! .proc main args=0 frame=2 returns=false
//!     push_local 0
//!     ...
//!     return
//! .end
//! ```

use std::collections::HashMap;

use crate::isa::{AluOp, Inst, ALU_OPS};
use crate::program::{ProcInfo, Program};

/// Renders a program to assembler text.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!(".globals {}\n", program.globals_size));
    out.push_str(&format!(
        ".entry {}\n",
        program.procs[program.entry_proc as usize].name
    ));
    let prelude_end = program
        .procs
        .iter()
        .map(|p| p.entry)
        .min()
        .unwrap_or(program.code.len() as u32);
    out.push_str("; prelude\n");
    for i in 0..prelude_end {
        out.push_str(&format!("    {}\n", format_inst(&program.code[i as usize])));
    }
    let mut procs: Vec<&ProcInfo> = program.procs.iter().collect();
    procs.sort_by_key(|p| p.entry);
    for p in procs {
        out.push_str(&format!(
            ".proc {} args={} frame={} returns={}\n",
            p.name, p.n_args, p.frame_size, p.returns_value
        ));
        for i in p.entry..p.end {
            out.push_str(&format!("    {}\n", format_inst(&program.code[i as usize])));
        }
        out.push_str(".end\n");
    }
    out
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Mod => "mod",
        AluOp::Eq => "eq",
        AluOp::Ne => "ne",
        AluOp::Lt => "lt",
        AluOp::Le => "le",
        AluOp::Gt => "gt",
        AluOp::Ge => "ge",
        AluOp::And => "and",
        AluOp::Or => "or",
    }
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    ALU_OPS.into_iter().find(|&op| alu_name(op) == name)
}

/// Formats one instruction in assembler syntax.
pub fn format_inst(inst: &Inst) -> String {
    match *inst {
        Inst::PushConst(v) => format!("push_const {v}"),
        Inst::PushLocal(s) => format!("push_local {s}"),
        Inst::PushGlobal(s) => format!("push_global {s}"),
        Inst::StoreLocal(s) => format!("store_local {s}"),
        Inst::StoreGlobal(s) => format!("store_global {s}"),
        Inst::LoadArrLocal { base, len } => format!("load_arr_local {base} {len}"),
        Inst::LoadArrGlobal { base, len } => format!("load_arr_global {base} {len}"),
        Inst::StoreArrLocal { base, len } => format!("store_arr_local {base} {len}"),
        Inst::StoreArrGlobal { base, len } => format!("store_arr_global {base} {len}"),
        Inst::Pop => "pop".to_string(),
        Inst::Bin(op) => format!("bin {}", alu_name(op)),
        Inst::Neg => "neg".to_string(),
        Inst::Not => "not".to_string(),
        Inst::Jump(t) => format!("jump {t}"),
        Inst::JumpIfFalse(t) => format!("jump_if_false {t}"),
        Inst::JumpIfTrue(t) => format!("jump_if_true {t}"),
        Inst::Call(p) => format!("call_idx {p}"),
        Inst::Return => "return".to_string(),
        Inst::Halt => "halt".to_string(),
        Inst::Write => "write".to_string(),
        Inst::BinLocals { op, a, b, dst } => {
            format!("bin_locals {} {a} {b} {dst}", alu_name(op))
        }
        Inst::IncLocal { slot, imm } => format!("inc_local {slot} {imm}"),
        Inst::SetLocalConst { slot, imm } => format!("set_local_const {slot} {imm}"),
        Inst::CmpConstBr {
            op,
            slot,
            imm,
            target,
        } => format!("cmp_const_br {} {slot} {imm} {target}", alu_name(op)),
        Inst::CmpLocalsBr { op, a, b, target } => {
            format!("cmp_locals_br {} {a} {b} {target}", alu_name(op))
        }
    }
}

/// An error raised by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assembly error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Parses assembler text back into a program. `call <name>` (by procedure
/// name) is accepted in addition to `call_idx <n>`.
///
/// # Errors
///
/// Returns the first syntax or reference error with its line number.
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    let err = |line: usize, message: String| AsmError { line, message };
    let mut globals_size = 0u32;
    let mut entry_name: Option<String> = None;
    let mut code: Vec<Inst> = Vec::new();
    let mut procs: Vec<ProcInfo> = Vec::new();
    let mut current: Option<usize> = None;
    // Named calls patched after the procedure table is complete.
    let mut named_calls: Vec<(usize, String, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match head {
            ".globals" => {
                globals_size = parse_num(&rest, 0, lineno)?;
            }
            ".entry" => {
                entry_name = Some(
                    rest.first()
                        .ok_or_else(|| err(lineno, ".entry needs a name".into()))?
                        .to_string(),
                );
            }
            ".proc" => {
                if current.is_some() {
                    return Err(err(lineno, "nested .proc".into()));
                }
                let name = rest
                    .first()
                    .ok_or_else(|| err(lineno, ".proc needs a name".into()))?
                    .to_string();
                let mut n_args = 0;
                let mut frame_size = 0;
                let mut returns_value = false;
                for kv in &rest[1..] {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("bad attribute `{kv}`")))?;
                    match k {
                        "args" => {
                            n_args = v
                                .parse()
                                .map_err(|_| err(lineno, format!("bad args `{v}`")))?;
                        }
                        "frame" => {
                            frame_size = v
                                .parse()
                                .map_err(|_| err(lineno, format!("bad frame `{v}`")))?;
                        }
                        "returns" => {
                            returns_value = v
                                .parse()
                                .map_err(|_| err(lineno, format!("bad returns `{v}`")))?;
                        }
                        other => return Err(err(lineno, format!("unknown attribute `{other}`"))),
                    }
                }
                current = Some(procs.len());
                procs.push(ProcInfo {
                    name,
                    entry: code.len() as u32,
                    end: code.len() as u32,
                    n_args,
                    frame_size,
                    returns_value,
                });
            }
            ".end" => {
                let idx = current
                    .take()
                    .ok_or_else(|| err(lineno, ".end without .proc".into()))?;
                procs[idx].end = code.len() as u32;
            }
            "call" => {
                let name = rest
                    .first()
                    .ok_or_else(|| err(lineno, "call needs a procedure name".into()))?
                    .to_string();
                named_calls.push((code.len(), name, lineno));
                code.push(Inst::Call(u32::MAX));
            }
            mnemonic => {
                code.push(parse_inst(mnemonic, &rest, lineno)?);
            }
        }
    }
    if current.is_some() {
        return Err(err(text.lines().count(), "missing .end".into()));
    }

    let by_name: HashMap<&str, u32> = procs
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i as u32))
        .collect();
    for (at, name, lineno) in named_calls {
        let idx = *by_name
            .get(name.as_str())
            .ok_or_else(|| err(lineno, format!("unknown procedure `{name}`")))?;
        code[at] = Inst::Call(idx);
    }
    let entry_name = entry_name.ok_or_else(|| err(1, "missing .entry directive".into()))?;
    let entry_proc = *by_name
        .get(entry_name.as_str())
        .ok_or_else(|| err(1, format!("entry procedure `{entry_name}` not defined")))?;

    Ok(Program {
        code,
        procs,
        entry_proc,
        globals_size,
    })
}

fn parse_num<T: std::str::FromStr>(
    rest: &[&str],
    index: usize,
    line: usize,
) -> Result<T, AsmError> {
    rest.get(index)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| AsmError {
            line,
            message: format!("expected numeric operand {index}"),
        })
}

fn parse_alu(rest: &[&str], line: usize) -> Result<AluOp, AsmError> {
    rest.first()
        .and_then(|s| alu_by_name(s))
        .ok_or_else(|| AsmError {
            line,
            message: "expected an alu operation".into(),
        })
}

fn parse_inst(mnemonic: &str, rest: &[&str], line: usize) -> Result<Inst, AsmError> {
    Ok(match mnemonic {
        "push_const" => Inst::PushConst(parse_num(rest, 0, line)?),
        "push_local" => Inst::PushLocal(parse_num(rest, 0, line)?),
        "push_global" => Inst::PushGlobal(parse_num(rest, 0, line)?),
        "store_local" => Inst::StoreLocal(parse_num(rest, 0, line)?),
        "store_global" => Inst::StoreGlobal(parse_num(rest, 0, line)?),
        "load_arr_local" => Inst::LoadArrLocal {
            base: parse_num(rest, 0, line)?,
            len: parse_num(rest, 1, line)?,
        },
        "load_arr_global" => Inst::LoadArrGlobal {
            base: parse_num(rest, 0, line)?,
            len: parse_num(rest, 1, line)?,
        },
        "store_arr_local" => Inst::StoreArrLocal {
            base: parse_num(rest, 0, line)?,
            len: parse_num(rest, 1, line)?,
        },
        "store_arr_global" => Inst::StoreArrGlobal {
            base: parse_num(rest, 0, line)?,
            len: parse_num(rest, 1, line)?,
        },
        "pop" => Inst::Pop,
        "bin" => Inst::Bin(parse_alu(rest, line)?),
        "neg" => Inst::Neg,
        "not" => Inst::Not,
        "jump" => Inst::Jump(parse_num(rest, 0, line)?),
        "jump_if_false" => Inst::JumpIfFalse(parse_num(rest, 0, line)?),
        "jump_if_true" => Inst::JumpIfTrue(parse_num(rest, 0, line)?),
        "call_idx" => Inst::Call(parse_num(rest, 0, line)?),
        "return" => Inst::Return,
        "halt" => Inst::Halt,
        "write" => Inst::Write,
        "bin_locals" => Inst::BinLocals {
            op: parse_alu(rest, line)?,
            a: parse_num(rest, 1, line)?,
            b: parse_num(rest, 2, line)?,
            dst: parse_num(rest, 3, line)?,
        },
        "inc_local" => Inst::IncLocal {
            slot: parse_num(rest, 0, line)?,
            imm: parse_num(rest, 1, line)?,
        },
        "set_local_const" => Inst::SetLocalConst {
            slot: parse_num(rest, 0, line)?,
            imm: parse_num(rest, 1, line)?,
        },
        "cmp_const_br" => Inst::CmpConstBr {
            op: parse_alu(rest, line)?,
            slot: parse_num(rest, 1, line)?,
            imm: parse_num(rest, 2, line)?,
            target: parse_num(rest, 3, line)?,
        },
        "cmp_locals_br" => Inst::CmpLocalsBr {
            op: parse_alu(rest, line)?,
            a: parse_num(rest, 1, line)?,
            b: parse_num(rest, 2, line)?,
            target: parse_num(rest, 3, line)?,
        },
        other => {
            return Err(AsmError {
                line,
                message: format!("unknown mnemonic `{other}`"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let text = disassemble(&p);
            let back = assemble(&text).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(back, p, "{}", s.name);
        }
    }

    #[test]
    fn round_trip_fused_samples() {
        for s in hlr::programs::ALL {
            let (p, _) = crate::fuse::fuse(&compile(&s.compile().unwrap()));
            let back = assemble(&disassemble(&p)).unwrap();
            assert_eq!(back, p, "{}", s.name);
        }
    }

    #[test]
    fn every_mnemonic_round_trips() {
        use crate::isa::AluOp;
        let insts = [
            Inst::PushConst(-9),
            Inst::LoadArrGlobal { base: 1, len: 2 },
            Inst::Bin(AluOp::Mod),
            Inst::CmpLocalsBr {
                op: AluOp::Ge,
                a: 0,
                b: 1,
                target: 3,
            },
            Inst::SetLocalConst { slot: 2, imm: -5 },
        ];
        for inst in insts {
            let text = format_inst(&inst);
            let mut parts = text.split_whitespace();
            let head = parts.next().unwrap();
            let rest: Vec<&str> = parts.collect();
            assert_eq!(parse_inst(head, &rest, 1).unwrap(), inst, "{text}");
        }
    }

    #[test]
    fn hand_written_program_assembles_and_runs() {
        let text = "
            .globals 1
            .entry main
            ; prelude
                call main
                halt
            .proc main args=0 frame=1
                push_const 6
                store_local 0
                push_local 0
                push_const 7
                bin mul
                write
                return
            .end
        ";
        let p = assemble(text).unwrap();
        p.validate().unwrap();
        assert_eq!(crate::exec::run(&p).unwrap(), vec![42]);
    }

    #[test]
    fn named_calls_resolve_forward() {
        let text = "
            .globals 0
            .entry main
                call main
                halt
            .proc main args=0 frame=0 returns=false
                call helper
                return
            .end
            .proc helper args=0 frame=0
                write
                return
            .end
        ";
        // `write` pops — stack underflow at run time, but assembly works.
        let p = assemble(text).unwrap();
        assert_eq!(p.code[2], Inst::Call(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".globals 0\n.entry main\nbogus_op 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus_op"));

        let e = assemble(".globals x\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = assemble(".globals 0\n.entry main\ncall nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn missing_end_detected() {
        let e = assemble(".globals 0\n.entry m\n.proc m args=0 frame=0\nreturn\n").unwrap_err();
        assert!(e.message.contains("missing .end"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            ".globals 0\n.entry m\n\n; nothing\ncall m ; to main\nhalt\n.proc m args=0 frame=0\nreturn\n.end\n",
        )
        .unwrap();
        assert_eq!(p.code.len(), 3);
    }
}
