//! The flat DIR program: a code array plus a procedure table.

use crate::isa::{Inst, Opcode};

/// Metadata for one procedure in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcInfo {
    /// Source-level name, for listings.
    pub name: String,
    /// Instruction index of the first instruction.
    pub entry: u32,
    /// One past the last instruction of this procedure.
    pub end: u32,
    /// Number of arguments popped by `Call`.
    pub n_args: u32,
    /// Frame slots to allocate on `Call` (includes compiler temporaries).
    pub frame_size: u32,
    /// Whether the procedure pushes a result before returning.
    pub returns_value: bool,
}

/// A compiled DIR program.
///
/// Instruction indices into [`Program::code`] form the *DIR address space*:
/// they key the dynamic translation buffer and are the operands of branch
/// instructions. Index 0 begins the prelude, which initialises globals,
/// calls the entry procedure and halts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The flat code array. The prelude occupies `0..procs[0].entry`.
    pub code: Vec<Inst>,
    /// Procedure table, in declaration order.
    pub procs: Vec<ProcInfo>,
    /// Index of the entry procedure (`main`).
    pub entry_proc: u32,
    /// Number of slots in the global area.
    pub globals_size: u32,
}

/// A structural defect found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Instruction index of the defect (or `code.len()` for global defects).
    pub at: usize,
    /// Description of the defect.
    pub message: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DIR program at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Returns the procedure containing instruction `index`, if any (the
    /// prelude belongs to no procedure).
    pub fn proc_of(&self, index: u32) -> Option<&ProcInfo> {
        self.procs
            .iter()
            .find(|p| p.entry <= index && index < p.end)
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Checks structural well-formedness: branch targets and callees in
    /// range, frame slots within the owning procedure's frame, and every
    /// procedure region closed (no fall-through past `end`).
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |at: usize, message: String| Err(ValidateError { at, message });
        if self.entry_proc as usize >= self.procs.len() {
            return err(self.code.len(), "entry procedure out of range".into());
        }
        for (pi, p) in self.procs.iter().enumerate() {
            if p.entry > p.end || p.end as usize > self.code.len() {
                return err(
                    p.entry as usize,
                    format!("procedure {} has invalid code range", p.name),
                );
            }
            if p.n_args > p.frame_size {
                return err(
                    p.entry as usize,
                    format!("procedure {} has more args than frame slots", p.name),
                );
            }
            for qi in 0..pi {
                let q = &self.procs[qi];
                if p.entry < q.end && q.entry < p.end {
                    return err(
                        p.entry as usize,
                        format!("procedures {} and {} overlap", q.name, p.name),
                    );
                }
            }
        }
        for (i, inst) in self.code.iter().enumerate() {
            let frame_size = self.proc_of(i as u32).map(|p| p.frame_size).unwrap_or(0);
            let check_slot = |slot: u32, count: u32, what: &str| -> Result<(), ValidateError> {
                if slot >= count {
                    Err(ValidateError {
                        at: i,
                        message: format!("{what} slot {slot} out of range (< {count})"),
                    })
                } else {
                    Ok(())
                }
            };
            if let Some(t) = inst.target() {
                if t as usize >= self.code.len() {
                    return err(i, format!("branch target {t} out of range"));
                }
            }
            match *inst {
                Inst::PushLocal(s) | Inst::StoreLocal(s) => {
                    check_slot(s, frame_size, "frame")?;
                }
                Inst::PushGlobal(s) | Inst::StoreGlobal(s) => {
                    check_slot(s, self.globals_size, "global")?;
                }
                Inst::LoadArrLocal { base, len } | Inst::StoreArrLocal { base, len }
                    if base + len > frame_size =>
                {
                    return err(i, format!("frame array {base}+{len} out of range"));
                }
                Inst::LoadArrGlobal { base, len } | Inst::StoreArrGlobal { base, len }
                    if base + len > self.globals_size =>
                {
                    return err(i, format!("global array {base}+{len} out of range"));
                }
                Inst::Call(p) if p as usize >= self.procs.len() => {
                    return err(i, format!("callee {p} out of range"));
                }
                Inst::BinLocals { a, b, dst, .. } => {
                    check_slot(a, frame_size, "frame")?;
                    check_slot(b, frame_size, "frame")?;
                    check_slot(dst, frame_size, "frame")?;
                }
                Inst::IncLocal { slot, .. } | Inst::SetLocalConst { slot, .. } => {
                    check_slot(slot, frame_size, "frame")?;
                }
                Inst::CmpConstBr { slot, .. } => {
                    check_slot(slot, frame_size, "frame")?;
                }
                Inst::CmpLocalsBr { a, b, .. } => {
                    check_slot(a, frame_size, "frame")?;
                    check_slot(b, frame_size, "frame")?;
                }
                _ => {}
            }
        }
        // Every procedure must end with an instruction that cannot fall
        // through into the next region.
        for p in &self.procs {
            if p.entry == p.end {
                return err(p.entry as usize, format!("procedure {} is empty", p.name));
            }
            let last = self.code[p.end as usize - 1];
            if !matches!(last.opcode(), Opcode::Return | Opcode::Jump | Opcode::Halt) {
                return err(
                    p.end as usize - 1,
                    format!("procedure {} can fall through its end", p.name),
                );
            }
        }
        Ok(())
    }

    /// Counts static occurrences of each opcode.
    pub fn opcode_histogram(&self) -> [u64; crate::isa::OPCODE_COUNT] {
        let mut h = [0u64; crate::isa::OPCODE_COUNT];
        for inst in &self.code {
            h[inst.opcode() as usize] += 1;
        }
        h
    }
}

impl std::fmt::Display for Program {
    /// Renders an assembler-style listing.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "; DIR program: {} instructions, {} procedures, {} globals",
            self.code.len(),
            self.procs.len(),
            self.globals_size
        )?;
        for (i, inst) in self.code.iter().enumerate() {
            if let Some(p) = self.procs.iter().find(|p| p.entry as usize == i) {
                writeln!(f, "{}: ; frame={} args={}", p.name, p.frame_size, p.n_args)?;
            }
            writeln!(f, "  {i:5}  {inst:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::AluOp;

    fn tiny() -> Program {
        Program {
            code: vec![
                Inst::Call(0), // prelude
                Inst::Halt,
                Inst::PushConst(2), // main
                Inst::PushConst(3),
                Inst::Bin(AluOp::Add),
                Inst::Write,
                Inst::Return,
            ],
            procs: vec![ProcInfo {
                name: "main".into(),
                entry: 2,
                end: 7,
                n_args: 0,
                frame_size: 0,
                returns_value: false,
            }],
            entry_proc: 0,
            globals_size: 0,
        }
    }

    #[test]
    fn valid_program_passes() {
        tiny().validate().unwrap();
    }

    #[test]
    fn detects_out_of_range_target() {
        let mut p = tiny();
        p.code[0] = Inst::Jump(99);
        assert!(p.validate().is_err());
    }

    #[test]
    fn detects_bad_slot() {
        let mut p = tiny();
        p.code[2] = Inst::PushLocal(0); // frame_size is 0
        assert!(p.validate().is_err());
    }

    #[test]
    fn detects_bad_callee() {
        let mut p = tiny();
        p.code[0] = Inst::Call(3);
        assert!(p.validate().is_err());
    }

    #[test]
    fn detects_fall_through() {
        let mut p = tiny();
        p.code[6] = Inst::Pop;
        let e = p.validate().unwrap_err();
        assert!(e.message.contains("fall through"));
    }

    #[test]
    fn detects_empty_proc() {
        let mut p = tiny();
        p.procs[0].end = p.procs[0].entry;
        assert!(p.validate().is_err());
    }

    #[test]
    fn proc_of_finds_owner() {
        let p = tiny();
        assert_eq!(p.proc_of(3).unwrap().name, "main");
        assert!(p.proc_of(0).is_none()); // prelude
    }

    #[test]
    fn histogram_counts() {
        let p = tiny();
        let h = p.opcode_histogram();
        assert_eq!(h[Opcode::PushConst as usize], 2);
        assert_eq!(h[Opcode::Halt as usize], 1);
    }

    #[test]
    fn listing_contains_proc_names() {
        let text = tiny().to_string();
        assert!(text.contains("main:"));
        assert!(text.contains("PushConst"));
    }
}
