//! Decoder-plane differential tests: the table-driven fast decoders must
//! be *bit-identical* to the seed's tree/reference decoders — same
//! instructions, same consumed widths, same modeled costs — on every
//! scheme, over the whole sample corpus and thousands of seeded random
//! programs. The table plane is a host-implementation change only; any
//! observable difference is a bug.

use dir::encode::{DecodeMode, SchemeKind};

fn compile(seed: u64) -> dir::Program {
    let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
    let hir = hlr::sema::analyze(&ast).expect("generated programs are valid");
    dir::compiler::compile(&hir)
}

fn sample_programs() -> Vec<(String, dir::Program)> {
    hlr::programs::ALL
        .iter()
        .map(|s| {
            (
                s.name.to_string(),
                dir::compiler::compile(&s.compile().expect("samples compile")),
            )
        })
        .collect()
}

/// Asserts both planes agree on `program` under `scheme`, per index and
/// streaming, and that both recover the original code. Returns the number
/// of per-instruction comparisons performed.
fn assert_planes_agree(name: &str, scheme: SchemeKind, program: &dir::Program) -> u64 {
    let image = scheme.encode(program);
    let mut per_index = Vec::with_capacity(image.len());
    for i in 0..image.len() as u32 {
        let tree = image
            .decode_with(&image.bytes, i, DecodeMode::Tree)
            .unwrap_or_else(|e| panic!("{name} {scheme} tree decode at {i}: {e:?}"));
        let table = image
            .decode_with(&image.bytes, i, DecodeMode::Table)
            .unwrap_or_else(|e| panic!("{name} {scheme} table decode at {i}: {e:?}"));
        assert_eq!(tree, table, "{name} {scheme} per-index divergence at {i}");
        per_index.push(table);
    }
    // The streaming entry must agree with per-index decoding in both
    // modes — `stream_table` is a separate code path from `decode_with`.
    for mode in [DecodeMode::Tree, DecodeMode::Table] {
        let streamed = image
            .decode_all_with(mode)
            .unwrap_or_else(|e| panic!("{name} {scheme} {mode:?} streaming decode: {e:?}"));
        assert_eq!(
            streamed, per_index,
            "{name} {scheme} {mode:?} streaming vs per-index divergence"
        );
    }
    let insts: Vec<dir::isa::Inst> = per_index.iter().map(|d| d.inst).collect();
    assert_eq!(insts, program.code, "{name} {scheme} decode != source");
    image.len() as u64
}

/// Every scheme over the full sample corpus: tree and table planes are
/// bit-identical per index, streaming agrees with per-index decoding,
/// and both recover the compiled code.
#[test]
fn sample_corpus_tree_table_identical() {
    for (name, program) in sample_programs() {
        for scheme in SchemeKind::all() {
            assert_planes_agree(&name, scheme, &program);
        }
    }
}

/// Seeded random programs: the same bit-identity property over >10k
/// instruction decodes per scheme pairing, exploring operand widths,
/// region layouts and opcode mixes the samples never hit.
#[test]
fn random_programs_tree_table_identical() {
    let mut comparisons = 0u64;
    for seed in 0..40 {
        let program = compile(seed);
        for scheme in SchemeKind::all() {
            comparisons += assert_planes_agree(&format!("seed {seed}"), scheme, &program);
        }
    }
    assert!(
        comparisons >= 10_000,
        "only {comparisons} differential comparisons"
    );
}

/// Encode → decode → re-encode is a fixpoint for every scheme, including
/// the conditional (pair/value) schemes whose codebooks depend on
/// predecessor context: the decoded program must measure to the exact
/// same frequency tables and produce a bit-identical image.
#[test]
fn reencode_is_a_fixpoint() {
    let mut programs = sample_programs();
    programs.extend((100..112).map(|seed| (format!("seed {seed}"), compile(seed))));
    for (name, program) in &programs {
        for scheme in SchemeKind::all() {
            let image = scheme.encode(program);
            let decoded = dir::Program {
                code: image
                    .decode_all()
                    .unwrap_or_else(|e| panic!("{name} {scheme}: {e:?}")),
                ..program.clone()
            };
            let again = scheme.encode(&decoded);
            assert_eq!(image.bytes, again.bytes, "{name} {scheme} bytes drift");
            assert_eq!(image.bit_len, again.bit_len, "{name} {scheme} length drift");
            assert_eq!(image.offsets, again.offsets, "{name} {scheme} offset drift");
        }
    }
}

/// The image-level mode switch is transparent: flipping an image to the
/// tree plane changes nothing observable about `decode`.
#[test]
fn set_decode_mode_is_transparent() {
    let program = compile(7);
    for scheme in SchemeKind::all() {
        let mut image = scheme.encode(&program);
        let table: Vec<_> = (0..image.len() as u32).map(|i| image.decode(i)).collect();
        image.set_decode_mode(DecodeMode::Tree);
        let tree: Vec<_> = (0..image.len() as u32).map(|i| image.decode(i)).collect();
        assert_eq!(table, tree, "{scheme}");
    }
}
