//! Criterion benchmark of the analytic model grid (Tables 2/3) and of the
//! working-set analytics used by the locality experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uhm::model::{grid, printed};

fn bench_grid(c: &mut Criterion) {
    c.bench_function("model_grid_f1_f2", |b| {
        b.iter(|| {
            black_box(grid(printed::f1));
            black_box(grid(printed::f2));
        })
    });
}

fn bench_workset(c: &mut Criterion) {
    let trace: Vec<u64> = (0..100_000u64).map(|i| (i * 31 + i % 17) % 509).collect();
    c.bench_function("lru_hit_ratios_100k", |b| {
        b.iter(|| black_box(memsim::workset::lru_hit_ratios(&trace, &[16, 64, 256])))
    });
    c.bench_function("working_set_100k", |b| {
        b.iter(|| black_box(memsim::workset::working_set_size(&trace, 1000)))
    });
}

criterion_group!(benches, bench_grid, bench_workset);
criterion_main!(benches);
