//! Canonical JSON serialization of machine runs: the bridge between
//! [`Metrics`] and the versioned [`telemetry::RunReport`] schema.
//!
//! Every machine-readable emitter in the workspace — `raul run --json`,
//! `raul profile --json`, the bench binaries — goes through these
//! builders so the reports share one shape: a `metrics` section with the
//! raw counters and per-activity cycle breakdown, and a `derived`
//! section with the paper's Section 7 parameters (`T`, `d`, `g`, `x`,
//! `s1`, `s2`) plus hit ratios. Consumers should dispatch on
//! `schema_version` (currently [`telemetry::SCHEMA_VERSION`]).

use telemetry::{Json, Percentiles, PoolReport, RunReport, ServiceReport};

use crate::dtb::DtbStats;
use crate::fault::FaultStats;
use crate::metrics::{CycleBreakdown, Metrics};
use crate::pool::{PoolRun, TenantOutcome, TenantResult};
use crate::service::{ServiceRun, StepRun};
use crate::window::WindowSample;
use memsim::CacheStats;

/// Serializes a cycle breakdown as an object of per-activity counts plus
/// the total.
pub fn cycles_json(c: &CycleBreakdown) -> Json {
    Json::obj(vec![
        ("fetch_l2", c.fetch_l2.into()),
        ("fetch_dtb", c.fetch_dtb.into()),
        ("fetch_cache", c.fetch_cache.into()),
        ("lookup", c.lookup.into()),
        ("lookup2", c.lookup2.into()),
        ("promote", c.promote.into()),
        ("decode", c.decode.into()),
        ("generate", c.generate.into()),
        ("store", c.store.into()),
        ("steering", c.steering.into()),
        ("semantic", c.semantic.into()),
        ("total", c.total().into()),
    ])
}

/// Serializes DTB statistics, including the cold/capacity/conflict
/// taxonomy (the per-kind counters are zero unless the run had
/// classification enabled, i.e. ran under an enabled trace sink).
pub fn dtb_stats_json(s: &DtbStats) -> Json {
    Json::obj(vec![
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("evictions", s.evictions.into()),
        ("uncached", s.uncached.into()),
        ("overflow_peak", s.overflow_peak.into()),
        ("hit_ratio", s.hit_ratio().into()),
        ("cold_misses", s.cold_misses.into()),
        ("capacity_misses", s.capacity_misses.into()),
        ("conflict_misses", s.conflict_misses.into()),
        ("recoveries", s.recoveries.into()),
    ])
}

/// Serializes fault-injection totals (fault plane only).
pub fn fault_stats_json(s: &FaultStats) -> Json {
    Json::obj(vec![
        ("dir_bits_flipped", s.dir_bits_flipped.into()),
        ("dtb_words_corrupted", s.dtb_words_corrupted.into()),
        ("dtb_tags_poisoned", s.dtb_tags_poisoned.into()),
        ("fetches_dropped", s.fetches_dropped.into()),
        ("total", s.total().into()),
    ])
}

fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("evictions", s.evictions.into()),
        ("hit_ratio", s.hit_ratio().into()),
    ])
}

/// Serializes the raw counters of a run: instruction/word counts, the
/// cycle breakdown, the IU1/IU2/memory cycle partition, and any DTB or
/// i-cache statistics.
pub fn metrics_json(m: &Metrics) -> Json {
    let mut fields = vec![
        ("instructions", m.instructions.into()),
        ("decoded", m.decoded.into()),
        ("l2_words", m.l2_words.into()),
        ("short_words", m.short_words.into()),
        ("routine_words", m.routine_words.into()),
        ("cycles", cycles_json(&m.cycles)),
        ("iu1_cycles", m.iu1_cycles().into()),
        ("iu2_cycles", m.iu2_cycles().into()),
        ("memory_cycles", m.memory_cycles().into()),
        ("recoveries", m.recoveries.into()),
        ("degraded_instructions", m.degraded_instructions.into()),
        ("fetch_retries", m.fetch_retries.into()),
    ];
    if let Some(s) = &m.dtb {
        fields.push(("dtb", dtb_stats_json(s)));
    }
    if let Some(s) = &m.dtb2 {
        fields.push(("dtb2", dtb_stats_json(s)));
    }
    if let Some(s) = &m.icache {
        fields.push(("icache", cache_stats_json(s)));
    }
    if let Some(s) = &m.faults {
        fields.push(("faults", fault_stats_json(s)));
    }
    Json::obj(fields)
}

/// Serializes the measured Section 7 parameters of a run.
pub fn derived_json(m: &Metrics) -> Json {
    Json::obj(vec![
        ("time_per_instruction", m.time_per_instruction().into()),
        ("d", m.mean_decode().into()),
        ("g", m.mean_generate().into()),
        ("x", m.mean_semantic().into()),
        ("s1", m.mean_s1().into()),
        ("s2", m.mean_s2().into()),
    ])
}

/// Serializes one window sample.
pub fn window_json(w: &WindowSample) -> Json {
    Json::obj(vec![
        ("start", w.start.into()),
        ("instructions", w.instructions.into()),
        ("dtb_hits", w.dtb_hits.into()),
        ("dtb_misses", w.dtb_misses.into()),
        ("hit_rate", w.hit_rate().into()),
        ("occupancy", w.occupancy.into()),
        ("time_per_instruction", w.time_per_instruction().into()),
        ("cycles", cycles_json(&w.cycles)),
    ])
}

/// Builds the canonical [`RunReport`] for a finished run: `tool` names
/// the emitting binary, `config` describes the run's inputs (free-form,
/// tool-specific). Windows are included when the run sampled them.
pub fn run_report(tool: &str, config: Json, metrics: &Metrics) -> RunReport {
    let mut report = RunReport::new(tool, config, metrics_json(metrics), derived_json(metrics));
    if let Some(ws) = &metrics.windows {
        report.windows = Some(Json::Arr(ws.iter().map(window_json).collect()));
    }
    report
}

/// Serializes trace-sink health for a report's `trace_health` section:
/// `ring` is the flight recorder's `(retained, dropped)` split, `file`
/// the streaming sink's `(written, deferred write error)` status. Pass
/// what the run used; absent sinks are simply omitted, and an all-`None`
/// call yields an empty object (callers should then skip the section).
pub fn trace_health_json(ring: Option<(u64, u64)>, file: Option<(u64, Option<String>)>) -> Json {
    let mut fields = Vec::new();
    if let Some((retained, dropped)) = ring {
        fields.push((
            "ring",
            Json::obj(vec![
                ("retained", (retained as i64).into()),
                ("dropped", (dropped as i64).into()),
            ]),
        ));
    }
    if let Some((written, error)) = file {
        let mut f = vec![("written", Json::from(written as i64))];
        if let Some(e) = error {
            f.push(("write_error", e.as_str().into()));
        }
        fields.push(("file", Json::obj(f)));
    }
    Json::obj(fields)
}

/// Serializes one tenant's result: identity, placement, latency,
/// supervision counters, and — for completed tenants — the modeled
/// instruction/cycle totals. Every non-completed outcome carries a
/// `detail` string instead.
pub fn tenant_json(r: &TenantResult) -> Json {
    let mut fields = vec![
        ("tenant", (r.tenant as i64).into()),
        ("name", r.name.as_str().into()),
        ("worker", (r.worker as i64).into()),
        ("status", r.outcome.status().into()),
        ("latency_ns", (r.latency_ns as i64).into()),
        ("attempts", (r.attempts as i64).into()),
        ("backoff_ns", (r.backoff_ns as i64).into()),
    ];
    match &r.outcome {
        TenantOutcome::Completed(report) => {
            fields.push(("instructions", report.metrics.instructions.into()));
            fields.push(("cycles", report.metrics.cycles.total().into()));
            fields.push(("output_len", (report.output.len() as i64).into()));
        }
        TenantOutcome::Trapped(trap) | TenantOutcome::TimedOut(trap) => {
            fields.push(("detail", format!("{trap:?}").as_str().into()));
        }
        TenantOutcome::Panicked(msg)
        | TenantOutcome::Shed(msg)
        | TenantOutcome::Quarantined(msg) => {
            fields.push(("detail", msg.as_str().into()));
        }
    }
    Json::obj(fields)
}

/// Builds the canonical schema-v2 [`PoolReport`] for a finished pool
/// run: per-tenant results in tenant order, pool aggregates (wall-clock,
/// modeled totals, aggregate Minstr/s, steal count) and per-tenant
/// latency percentiles.
pub fn pool_report(tool: &str, config: Json, run: &PoolRun) -> PoolReport {
    let tenants = Json::Arr(run.results.iter().map(tenant_json).collect());
    let utilization = run.worker_utilization();
    let aggregate = Json::obj(vec![
        ("wall_ns", (run.wall_ns as i64).into()),
        ("workers", (run.workers as i64).into()),
        ("tenants", (run.results.len() as i64).into()),
        ("completed", (run.completed() as i64).into()),
        ("trapped", (run.outcome_count("trapped") as i64).into()),
        ("panicked", (run.outcome_count("panicked") as i64).into()),
        ("timed_out", (run.outcome_count("timed_out") as i64).into()),
        ("shed", (run.outcome_count("shed") as i64).into()),
        (
            "quarantined",
            (run.outcome_count("quarantined") as i64).into(),
        ),
        ("retries", (run.retries as i64).into()),
        ("worker_crashes", (run.worker_crashes as i64).into()),
        ("steals", (run.steals as i64).into()),
        ("instructions", run.total_instructions().into()),
        ("cycles", run.total_cycles().into()),
        ("minstr_per_sec", run.minstr_per_sec().into()),
        (
            "queue_depth_max",
            (run.queue_depth.iter().copied().max().unwrap_or(0) as i64).into(),
        ),
        (
            "utilization",
            Json::Arr(utilization.iter().map(|&u| Json::from(u)).collect()),
        ),
    ]);
    PoolReport::new(tool, config, tenants, aggregate, run.latency_percentiles())
}

/// Serializes a percentile quadruple under the given unit label.
fn percentiles_json(p: &Percentiles) -> Json {
    Json::obj(vec![
        ("p50", p.p50.into()),
        ("p95", p.p95.into()),
        ("p99", p.p99.into()),
        ("p999", p.p999.into()),
    ])
}

/// Serializes one load step of a service run: the arrival rate, the
/// request outcome table, queue behavior, the step's modeled-latency
/// percentiles (the deterministic trajectory point), and the host-side
/// pool observables (wall-clock, throughput — never asserted against).
pub fn step_json(s: &StepRun) -> Json {
    Json::obj(vec![
        ("rate_per_mcycle", (s.rate_per_mcycle as i64).into()),
        ("requests", (s.results.len() as i64).into()),
        ("completed", (s.outcome_count("completed") as i64).into()),
        ("trapped", (s.outcome_count("trapped") as i64).into()),
        ("panicked", (s.outcome_count("panicked") as i64).into()),
        ("rejected", (s.outcome_count("rejected") as i64).into()),
        ("shed", (s.outcome_count("shed") as i64).into()),
        ("served", (s.served() as i64).into()),
        ("lost", (s.lost() as i64).into()),
        ("queue_peak", (s.queue_peak as i64).into()),
        ("makespan_cycles", (s.makespan_cycles() as i64).into()),
        ("latency_cycles", percentiles_json(&s.latency_percentiles())),
        (
            "host",
            Json::obj(vec![
                ("wall_ns", (s.pool.wall_ns as i64).into()),
                ("minstr_per_sec", s.pool.minstr_per_sec().into()),
                ("steals", (s.pool.steals as i64).into()),
            ]),
        ),
    ])
}

/// Builds the canonical schema-v6 [`ServiceReport`] for a finished load
/// sweep: one trajectory entry per step plus the cross-step outcome
/// aggregate. The caller supplies `config` (free-form: policy knobs,
/// request mix) and may attach SLO verdicts afterwards.
pub fn service_report(tool: &str, config: Json, run: &ServiceRun) -> ServiceReport {
    let steps = Json::Arr(run.steps.iter().map(step_json).collect());
    let aggregate = Json::obj(vec![
        ("steps", (run.steps.len() as i64).into()),
        ("requests", (run.total_requests() as i64).into()),
        ("completed", (run.outcome_count("completed") as i64).into()),
        ("trapped", (run.outcome_count("trapped") as i64).into()),
        ("panicked", (run.outcome_count("panicked") as i64).into()),
        ("rejected", (run.outcome_count("rejected") as i64).into()),
        ("shed", (run.outcome_count("shed") as i64).into()),
        ("lost", (run.lost() as i64).into()),
        ("workers", (run.workers as i64).into()),
        ("seed", (run.seed as i64).into()),
    ]);
    ServiceReport::new(tool, config, steps, aggregate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::SCHEMA_VERSION;

    fn sample_metrics() -> Metrics {
        Metrics {
            instructions: 100,
            decoded: 10,
            l2_words: 20,
            short_words: 250,
            routine_words: 90,
            cycles: CycleBreakdown {
                fetch_l2: 40,
                fetch_dtb: 250,
                lookup: 100,
                decode: 80,
                generate: 30,
                store: 10,
                semantic: 90,
                ..CycleBreakdown::default()
            },
            dtb: Some(DtbStats {
                hits: 90,
                misses: 10,
                evictions: 2,
                cold_misses: 8,
                capacity_misses: 1,
                conflict_misses: 1,
                ..DtbStats::default()
            }),
            ..Metrics::default()
        }
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let m = sample_metrics();
        let config = Json::obj(vec![("mode", "dtb".into()), ("capacity", 64i64.into())]);
        let rendered = run_report("raul", config, &m).render();
        let back = RunReport::parse(&rendered).unwrap();
        assert_eq!(back.tool, "raul");
        assert_eq!(back.config.get("capacity").unwrap().as_i64(), Some(64));
        let metrics = &back.metrics;
        assert_eq!(metrics.get("instructions").unwrap().as_i64(), Some(100));
        let dtb = metrics.get("dtb").unwrap();
        assert_eq!(dtb.get("hits").unwrap().as_i64(), Some(90));
        assert_eq!(dtb.get("cold_misses").unwrap().as_i64(), Some(8));
        let t = back.derived.get("time_per_instruction").unwrap().as_f64();
        assert_eq!(t, Some(6.0));
    }

    #[test]
    fn schema_version_is_stamped() {
        let m = Metrics::default();
        let json = run_report("t", Json::obj(vec![]), &m).to_json();
        assert_eq!(
            json.get("schema_version").and_then(Json::as_i64),
            Some(SCHEMA_VERSION)
        );
    }

    #[test]
    fn cycle_partition_matches_breakdown_total() {
        let m = sample_metrics();
        let json = metrics_json(&m);
        let total = json
            .get("cycles")
            .and_then(|c| c.get("total"))
            .and_then(Json::as_i64)
            .unwrap();
        let parts = ["iu1_cycles", "iu2_cycles", "memory_cycles"]
            .iter()
            .map(|k| json.get(k).and_then(Json::as_i64).unwrap())
            .sum::<i64>();
        assert_eq!(parts, total);
    }

    #[test]
    fn fault_plane_counters_serialize_when_present() {
        let mut m = sample_metrics();
        m.recoveries = 4;
        m.degraded_instructions = 2;
        m.faults = Some(FaultStats {
            dtb_words_corrupted: 5,
            dtb_tags_poisoned: 1,
            ..FaultStats::default()
        });
        let json = metrics_json(&m);
        assert_eq!(json.get("recoveries").unwrap().as_i64(), Some(4));
        assert_eq!(json.get("degraded_instructions").unwrap().as_i64(), Some(2));
        let f = json.get("faults").unwrap();
        assert_eq!(f.get("dtb_words_corrupted").unwrap().as_i64(), Some(5));
        assert_eq!(f.get("total").unwrap().as_i64(), Some(6));
        // Absent fault plane: no "faults" object at all.
        assert!(metrics_json(&sample_metrics()).get("faults").is_none());
    }

    #[test]
    fn windows_serialize_when_present() {
        let mut m = sample_metrics();
        m.windows = Some(vec![WindowSample {
            start: 0,
            instructions: 50,
            dtb_hits: 40,
            dtb_misses: 10,
            occupancy: 7,
            ..WindowSample::default()
        }]);
        let report = run_report("raul", Json::obj(vec![]), &m);
        let arr = report.windows.as_ref().unwrap();
        let w0 = &arr.as_arr().unwrap()[0];
        assert_eq!(w0.get("occupancy").unwrap().as_i64(), Some(7));
        assert_eq!(w0.get("hit_rate").unwrap().as_f64(), Some(0.8));
    }

    #[test]
    fn service_report_round_trips_with_trajectory_and_aggregate() {
        use crate::machine::{Machine, Mode};
        use crate::service::{Service, ServiceConfig};
        use dir::encode::SchemeKind;
        use std::sync::Arc;

        let hir = hlr::compile("proc main() begin write 3; end").unwrap();
        let prog = dir::compiler::compile(&hir);
        let machine = Arc::new(Machine::new(&prog, SchemeKind::Packed));
        let mut service = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        for i in 0..4 {
            service.submit(
                format!("t{}", i % 2),
                format!("r{i}"),
                Arc::clone(&machine),
                Mode::Interpreter,
            );
        }
        let run = service.run_load(&[2, 50]);

        let config = Json::obj(vec![("workers", 2i64.into())]);
        let report = service_report("raul load", config, &run);
        let back = ServiceReport::parse(&report.render()).unwrap();
        assert_eq!(back, report);

        let steps = back.steps.as_arr().unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(
            steps[0].get("rate_per_mcycle").and_then(Json::as_i64),
            Some(2)
        );
        assert_eq!(steps[0].get("completed").and_then(Json::as_i64), Some(4));
        assert_eq!(steps[0].get("lost").and_then(Json::as_i64), Some(0));
        assert!(
            steps[1]
                .get("latency_cycles")
                .and_then(|l| l.get("p99"))
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        let agg = &back.aggregate;
        assert_eq!(agg.get("requests").and_then(Json::as_i64), Some(8));
        assert_eq!(agg.get("completed").and_then(Json::as_i64), Some(8));
        assert_eq!(agg.get("lost").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn pool_report_round_trips_with_tenant_and_aggregate_sections() {
        use crate::machine::{Machine, Mode};
        use crate::pool::MachinePool;
        use dir::encode::SchemeKind;
        use std::sync::Arc;

        let hir = hlr::compile("proc main() begin write 3; end").unwrap();
        let prog = dir::compiler::compile(&hir);
        let machine = Arc::new(Machine::new(&prog, SchemeKind::Packed));
        let mut pool = MachinePool::new(2);
        for i in 0..3 {
            pool.push(format!("t{i}"), Arc::clone(&machine), Mode::Interpreter);
        }
        let run = pool.run();

        let config = Json::obj(vec![("workers", 2i64.into())]);
        let report = pool_report("raul pool", config, &run);
        let back = PoolReport::parse(&report.render()).unwrap();
        assert_eq!(back, report);

        let tenants = back.tenants.as_arr().unwrap();
        assert_eq!(tenants.len(), 3);
        assert_eq!(
            tenants[0].get("status").and_then(Json::as_str),
            Some("completed")
        );
        assert_eq!(tenants[1].get("name").and_then(Json::as_str), Some("t1"));
        assert!(tenants[2].get("latency_ns").unwrap().as_i64().unwrap() > 0);
        let agg = &back.aggregate;
        assert_eq!(agg.get("completed").and_then(Json::as_i64), Some(3));
        assert_eq!(
            agg.get("instructions").and_then(Json::as_i64),
            Some(run.total_instructions() as i64)
        );
        assert!(back.latency.p50 > 0.0);
    }
}
