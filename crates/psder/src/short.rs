//! The short-format instruction set executed by IU2 out of the dynamic
//! translation buffer.
//!
//! Section 6.2: "the instruction set recognized by IU2 includes CALL, PUSH
//! and POP instructions ... the most important short format instruction is
//! the INTERP instruction", and "the short format instructions come in
//! different flavors to permit the operand specification to be immediate,
//! direct or indirect". Here PUSH/POP carry immediate and direct (frame or
//! global slot) modes; INTERP comes in the immediate and stack flavors the
//! paper describes.

use dir::AluOp;

/// Operand flavour of a `PUSH` short instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PushMode {
    /// Push the literal value (immediate mode).
    Imm(i64),
    /// Push the contents of a frame slot (direct mode).
    Local(u32),
    /// Push the contents of a global slot (direct mode).
    Global(u32),
}

/// Operand flavour of a `POP` short instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopMode {
    /// Discard the popped value.
    Discard,
    /// Store the popped value into a frame slot.
    Local(u32),
    /// Store the popped value into a global slot.
    Global(u32),
}

/// Operand flavour of the `INTERP` instruction: "the INTERP instruction,
/// therefore, must come in two flavors depending on whether the operand is
/// specified immediately or left on the stack".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterpMode {
    /// The next DIR address is an immediate operand.
    Imm(u32),
    /// The next DIR address is popped from the operand stack.
    Stack,
}

/// A short-format (vertical) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShortInstr {
    /// Push a value onto the operand stack.
    Push(PushMode),
    /// Pop a value from the operand stack.
    Pop(PopMode),
    /// Call a semantic routine; control passes to IU1 until it returns.
    Call(RoutineId),
    /// Transfer control to the PSDER translation of the next DIR
    /// instruction, exercising the DTB.
    Interp(InterpMode),
}

impl ShortInstr {
    /// Returns the routine invoked by this instruction, if it is a CALL.
    pub fn routine(self) -> Option<RoutineId> {
        match self {
            ShortInstr::Call(r) => Some(r),
            _ => None,
        }
    }
}

/// Identifies a semantic routine in the [`routine
/// library`](crate::routines::RoutineLib).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutineId {
    /// Binary ALU operation: pops `b` then `a`, pushes `a op b`.
    Bin(AluOp),
    /// Arithmetic negation of the top of stack.
    NegR,
    /// Logical negation of the top of stack.
    NotR,
    /// Bounds-checked array load from the frame.
    LoadArrLocal,
    /// Bounds-checked array load from the global area.
    LoadArrGlobal,
    /// Bounds-checked array store into the frame.
    StoreArrLocal,
    /// Bounds-checked array store into the global area.
    StoreArrGlobal,
    /// Two-way select: pops fall-through and taken addresses, then the
    /// condition; pushes the chosen address for `INTERP stack`.
    Select,
    /// Fused compare-and-branch: pops next, target, operand `b`, operand
    /// `a`; pushes `target` when `a op b` is false, else `next`.
    CmpBr(AluOp),
    /// DIR-level procedure call: builds the callee frame, saves the return
    /// DIR address on the return-address stack, pushes the callee entry.
    DirCall,
    /// DIR-level return: drops the frame, pushes the saved return address.
    DirRet,
    /// Pops and appends to the program output.
    WriteR,
    /// Stops the machine.
    HaltR,
}

/// Number of distinct routines in the library.
pub const ROUTINE_COUNT: usize = 13 * 2 + 11;

impl RoutineId {
    /// Dense index of this routine within the library table.
    pub fn index(self) -> usize {
        match self {
            RoutineId::Bin(op) => op as usize,
            RoutineId::CmpBr(op) => 13 + op as usize,
            RoutineId::NegR => 26,
            RoutineId::NotR => 27,
            RoutineId::LoadArrLocal => 28,
            RoutineId::LoadArrGlobal => 29,
            RoutineId::StoreArrLocal => 30,
            RoutineId::StoreArrGlobal => 31,
            RoutineId::Select => 32,
            RoutineId::DirCall => 33,
            RoutineId::DirRet => 34,
            RoutineId::WriteR => 35,
            RoutineId::HaltR => 36,
        }
    }

    /// All routines, in index order.
    pub fn all() -> Vec<RoutineId> {
        let mut v = Vec::with_capacity(ROUTINE_COUNT);
        for op in dir::isa::ALU_OPS {
            v.push(RoutineId::Bin(op));
        }
        for op in dir::isa::ALU_OPS {
            v.push(RoutineId::CmpBr(op));
        }
        v.extend([
            RoutineId::NegR,
            RoutineId::NotR,
            RoutineId::LoadArrLocal,
            RoutineId::LoadArrGlobal,
            RoutineId::StoreArrLocal,
            RoutineId::StoreArrGlobal,
            RoutineId::Select,
            RoutineId::DirCall,
            RoutineId::DirRet,
            RoutineId::WriteR,
            RoutineId::HaltR,
        ]);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routine_indices_are_dense_and_unique() {
        let all = RoutineId::all();
        assert_eq!(all.len(), ROUTINE_COUNT);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.index(), i, "{r:?}");
        }
    }

    #[test]
    fn routine_accessor() {
        assert_eq!(
            ShortInstr::Call(RoutineId::WriteR).routine(),
            Some(RoutineId::WriteR)
        );
        assert_eq!(ShortInstr::Pop(PopMode::Discard).routine(), None);
    }
}
