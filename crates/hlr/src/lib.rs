//! # RAUL — a high-level representation (HLR) for the UHM reproduction
//!
//! This crate implements the *high-level representation* tier of Rau (1978),
//! "Levels of Representation of Programs and the Architecture of Universal
//! Host Machines". The paper characterises an HLR as a block-structured,
//! ALGOL-like language with hierarchical syntax, symbolic names and scope
//! rules (the *contour model*). RAUL is exactly that: a small ALGOL-60-like
//! language with nested blocks, procedures, integer and boolean scalars and
//! integer arrays.
//!
//! The crate provides:
//!
//! * [`lexer`] and [`parser`] — source text to [`ast::Program`];
//! * [`sema`] — name resolution (contour-model scoping), type checking, and
//!   slot assignment, producing a resolved [`hir::Program`];
//! * [`programs`] — a library of sample workloads used throughout the
//!   reproduction's experiments;
//! * [`generate`] — a seeded random program generator used by property tests
//!   and the benchmark harness.
//!
//! # Example
//!
//! ```
//! use hlr::compile;
//!
//! let src = r#"
//!     proc main() begin
//!         int i := 0;
//!         int sum := 0;
//!         while i < 10 do begin
//!             sum := sum + i;
//!             i := i + 1;
//!         end
//!         write sum;
//!     end
//! "#;
//! let program = compile(src).expect("valid RAUL program");
//! assert_eq!(program.procs.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod fold;
pub mod generate;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod programs;
pub mod rng;
pub mod sema;
pub mod token;
pub mod types;

pub use error::{Error, Result};
pub use types::Type;

/// A half-open byte range into the source text, used for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Parses and semantically analyses RAUL source text in one step.
///
/// This is the main entry point for downstream crates: it runs the lexer,
/// parser and semantic analyser and returns the resolved [`hir::Program`]
/// ready for compilation to a DIR.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error encountered.
///
/// # Example
///
/// ```
/// let p = hlr::compile("proc main() begin write 42; end")?;
/// assert_eq!(p.entry, 0);
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn compile(source: &str) -> Result<hir::Program> {
    let ast = parser::parse(source)?;
    sema::analyze(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }

    #[test]
    fn compile_smoke() {
        let p = compile("proc main() begin write 1; end").unwrap();
        assert_eq!(p.procs.len(), 1);
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(compile("proc main( begin end").is_err());
    }
}
