//! Pass 6: loop-nesting region formation and hot-region ranking.
//!
//! The dataflow pass proves *facts per site*; this pass decides *where
//! those facts pay off*. It detects natural loops the same way the DTB
//! pressure pass does — a backward branch inside a procedure region forms
//! the span `[target, branch]` — computes each span's nesting depth, and
//! ranks the spans as hot-region candidates: deepest nesting first (the
//! innermost loop dominates dynamic instruction count), then tightest
//! span. Each candidate carries its guard-site discharge counts from the
//! [`SiteFacts`] bitmap, so `raul analyze --regions` (and the report
//! render) can show at a glance which loops run fully unguarded and which
//! still pay for checks.

use dir::facts::SiteFacts;
use dir::isa::Inst;
use dir::program::Program;

use crate::absint;

/// One ranked hot-region candidate: a natural-loop span with its nesting
/// depth and per-site fact coverage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionCandidate {
    /// Name of the owning procedure region (`<prelude>` possible but rare).
    pub region: String,
    /// First instruction of the span (the back-edge target).
    pub start: u32,
    /// One past the back edge.
    pub end: u32,
    /// Loop nesting depth: 1 for an outermost loop, +1 per enclosing loop.
    pub depth: u32,
    /// Static instructions in the span.
    pub insts: u32,
    /// `Div`/`Mod` sites inside the span.
    pub div_sites: u32,
    /// Of those, sites with a discharged nonzero-divisor fact.
    pub div_proved: u32,
    /// Array-access sites inside the span.
    pub idx_sites: u32,
    /// Of those, sites with a discharged in-bounds fact.
    pub idx_proved: u32,
}

impl RegionCandidate {
    /// Guard sites of either kind inside the span.
    #[must_use]
    pub fn sites(&self) -> u32 {
        self.div_sites + self.idx_sites
    }

    /// Discharged guard sites of either kind.
    #[must_use]
    pub fn proved(&self) -> u32 {
        self.div_proved + self.idx_proved
    }

    /// Fraction of guard sites discharged, in `[0, 1]`; `1.0` for a span
    /// with no guard sites (nothing left to pay for).
    #[must_use]
    pub fn discharge(&self) -> f64 {
        if self.sites() == 0 {
            1.0
        } else {
            f64::from(self.proved()) / f64::from(self.sites())
        }
    }
}

/// Detects natural-loop spans, computes nesting, and ranks the candidates
/// (depth descending, then span size ascending, then address).
pub(crate) fn form(program: &Program, facts: &SiteFacts) -> Vec<RegionCandidate> {
    // (region name, span start, span end) for every backward branch.
    let mut spans: Vec<(String, u32, u32)> = Vec::new();
    for r in absint::regions(program) {
        let lo = r.start as usize;
        let hi = (r.end as usize).min(program.code.len());
        for (i, inst) in program.code[lo..hi].iter().enumerate() {
            let addr = (lo + i) as u32;
            if let Some(t) = inst.target() {
                if t <= addr && t >= r.start {
                    spans.push((r.name.clone(), t, addr + 1));
                }
            }
        }
    }

    let mut out: Vec<RegionCandidate> = spans
        .iter()
        .map(|(name, start, end)| {
            // Nesting: 1 + the number of *other* spans strictly containing
            // this one. Identical spans (two back edges to one head) tie
            // rather than nest.
            let depth = 1 + spans
                .iter()
                .filter(|(_, s, e)| (*s <= *start && *end <= *e) && !(*s == *start && *e == *end))
                .count() as u32;
            let mut c = RegionCandidate {
                region: name.clone(),
                start: *start,
                end: *end,
                depth,
                insts: end - start,
                div_sites: 0,
                div_proved: 0,
                idx_sites: 0,
                idx_proved: 0,
            };
            for addr in *start..*end {
                let Some(inst) = program.code.get(addr as usize) else {
                    continue;
                };
                let divides = match *inst {
                    Inst::Bin(op)
                    | Inst::BinLocals { op, .. }
                    | Inst::CmpConstBr { op, .. }
                    | Inst::CmpLocalsBr { op, .. } => op.traps_on_zero(),
                    _ => false,
                };
                if divides {
                    c.div_sites += 1;
                    if facts.div_ok(addr) {
                        c.div_proved += 1;
                    }
                }
                if matches!(
                    inst,
                    Inst::LoadArrLocal { .. }
                        | Inst::LoadArrGlobal { .. }
                        | Inst::StoreArrLocal { .. }
                        | Inst::StoreArrGlobal { .. }
                ) {
                    c.idx_sites += 1;
                    if facts.idx_ok(addr) {
                        c.idx_proved += 1;
                    }
                }
            }
            c
        })
        .collect();

    out.sort_by(|a, b| {
        b.depth
            .cmp(&a.depth)
            .then(a.insts.cmp(&b.insts))
            .then(a.start.cmp(&b.start))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::compiler::compile;

    fn candidates(src: &str) -> Vec<RegionCandidate> {
        let program = compile(&hlr::compile(src).unwrap());
        let mut diags = Vec::new();
        let (facts, _) = crate::dataflow::analyze(&program, &mut diags);
        form(&program, &facts)
    }

    #[test]
    fn straight_line_code_has_no_candidates() {
        assert!(candidates("proc main() begin write 1 + 2; end").is_empty());
    }

    #[test]
    fn nested_loops_rank_innermost_first() {
        let cs = candidates(
            "proc main() begin
                int i; int j; int acc;
                for i := 0 to 9 do
                    for j := 0 to 9 do
                        acc := acc + i * j;
                write acc;
            end",
        );
        assert!(cs.len() >= 2, "two loops expected: {cs:?}");
        assert!(cs[0].depth > cs[cs.len() - 1].depth);
        // The inner loop span is contained in the outer one.
        let (inner, outer) = (&cs[0], &cs[cs.len() - 1]);
        assert!(outer.start <= inner.start && inner.end <= outer.end);
    }

    #[test]
    fn discharge_counts_cover_the_span_sites() {
        let cs = candidates(
            "proc main() begin
                int a[8]; int i;
                for i := 0 to 7 do a[i] := a[i] + 1;
                write a[0];
            end",
        );
        assert!(!cs.is_empty());
        let hot = &cs[0];
        assert!(hot.idx_sites >= 2, "load + store inside the loop: {hot:?}");
        assert!(hot.proved() <= hot.sites());
        assert!(hot.discharge() >= 0.0 && hot.discharge() <= 1.0);
    }
}
