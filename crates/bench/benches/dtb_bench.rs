//! Criterion benchmarks of the DTB data structure in isolation: lookup
//! and fill paths under hit- and miss-heavy address streams.

use criterion::{criterion_group, criterion_main, Criterion};
use psder::{PushMode, ShortInstr};
use std::hint::black_box;
use uhm::{Dtb, DtbConfig};

fn translation() -> Vec<ShortInstr> {
    (0..4)
        .map(|i| ShortInstr::Push(PushMode::Imm(i)))
        .collect()
}

fn bench_hit_path(c: &mut Criterion) {
    let mut dtb = Dtb::new(DtbConfig::with_capacity(256));
    let t = translation();
    for addr in 0..256u32 {
        dtb.fill(addr, &t);
    }
    let mut i = 0u32;
    c.bench_function("dtb_lookup_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 256;
            black_box(dtb.lookup(black_box(i)))
        })
    });
}

fn bench_miss_fill_path(c: &mut Criterion) {
    let mut dtb = Dtb::new(DtbConfig::with_capacity(64));
    let t = translation();
    let mut addr = 0u32;
    c.bench_function("dtb_miss_fill", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(97); // always a fresh address
            if dtb.lookup(black_box(addr)).is_none() {
                black_box(dtb.fill(addr, &t));
            }
        })
    });
}

fn bench_translate(c: &mut Criterion) {
    let inst = dir::Inst::CmpConstBr {
        op: dir::AluOp::Lt,
        slot: 1,
        imm: 100,
        target: 17,
    };
    c.bench_function("translate_template", |b| {
        b.iter(|| black_box(psder::translate(black_box(inst), 18)))
    });
}

criterion_group!(benches, bench_hit_path, bench_miss_fill_path, bench_translate);
criterion_main!(benches);
