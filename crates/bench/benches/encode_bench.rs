//! Benchmarks of the encoding dimension: encode and decode throughput of
//! each scheme on a representative program.

use dir::encode::SchemeKind;
use std::hint::black_box;
use uhm_bench::timing::Harness;

fn program() -> dir::Program {
    let hir = hlr::programs::QUEENS.compile().expect("sample compiles");
    dir::compiler::compile(&hir)
}

fn main() {
    let mut h = Harness::new("encode_bench");
    let prog = program();

    for scheme in SchemeKind::all() {
        h.bench(&format!("encode/{}", scheme.label()), || {
            black_box(scheme.encode(black_box(&prog)))
        });
    }

    for scheme in SchemeKind::all() {
        let image = scheme.encode(&prog);
        h.bench(&format!("decode_all/{}", scheme.label()), || {
            black_box(image.decode_all().expect("round trip"))
        });
    }

    for scheme in SchemeKind::all() {
        let image = scheme.encode(&prog);
        let mid = (image.len() / 2) as u32;
        h.bench(&format!("decode_one/{}", scheme.label()), || {
            black_box(image.decode(black_box(mid)).expect("valid index"))
        });
    }

    h.finish();
}
