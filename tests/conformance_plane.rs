//! Integration tests for the generative conformance plane: the honest
//! cross-engine oracle over generated programs, the delta-debugging
//! shrinker against an injected fault, and replay of every committed
//! regression repro under `tests/golden/regressions/`.

use std::path::PathBuf;

use conformance::{run_case, shrink, CaseConfig, Injection};
use hlr::generate::Config;

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/regressions")
}

/// Strips `//` comment lines from a committed `.raul` repro; the RAUL
/// grammar itself has no comments.
fn strip_comments(source: &str) -> String {
    source
        .lines()
        .filter(|l| !l.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The noisy fixture the shrinker is demonstrated on: plenty of
/// structure to strip away around the single `%` that triggers the
/// injected fault.
fn noisy_fixture() -> hlr::ast::Program {
    let src = "int g := 4;\n\
               proc scale(int a) -> int begin return a * 3; end\n\
               proc main() begin\n\
                 int i; int acc := 0;\n\
                 for i := 1 to 6 do begin\n\
                   acc := acc + scale(i) % 5;\n\
                   if acc > 7 then write acc; else write 0 - acc;\n\
                 end\n\
                 write acc % 3;\n\
               end";
    hlr::parser::parse(src).expect("fixture parses")
}

#[test]
fn honest_generated_batch_conforms() {
    let cfg = CaseConfig::default();
    for seed in 0..32u64 {
        let ast = hlr::generate::program(seed, &Config::default());
        let report = run_case(&ast, &cfg, Injection::None)
            .unwrap_or_else(|e| panic!("seed {seed}: oracle refused the program: {e}"));
        assert!(
            report.conforms(),
            "seed {seed} diverged: {:?}",
            report.divergences
        );
    }
}

#[test]
fn trapping_generated_batch_conforms() {
    let cfg = CaseConfig::default();
    let gen_cfg = Config {
        trapping: true,
        ..Config::default()
    };
    for seed in 100..120u64 {
        let ast = hlr::generate::program(seed, &gen_cfg);
        let report = run_case(&ast, &cfg, Injection::None)
            .unwrap_or_else(|e| panic!("seed {seed}: oracle refused the program: {e}"));
        assert!(
            report.conforms(),
            "seed {seed} diverged: {:?}",
            report.divergences
        );
    }
}

#[test]
fn injected_fault_shrinks_to_the_committed_golden() {
    let cfg = CaseConfig::default();
    let fails = |p: &hlr::ast::Program| {
        run_case(p, &cfg, Injection::FlipOnMod)
            .map(|r| !r.conforms())
            .unwrap_or(false)
    };
    let start = noisy_fixture();
    assert!(fails(&start), "fixture must diverge under injection");

    let (small, stats) = shrink(&start, 2_000, fails);
    assert!(stats.accepted > 0, "shrinker accepted nothing");
    let text = hlr::pretty::print(&small);
    assert!(
        text.lines().count() <= 30,
        "repro too large ({} lines):\n{text}",
        text.lines().count()
    );

    let golden_path = regressions_dir().join("mod_injection.raul");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        text.trim_end(),
        strip_comments(&golden).trim_end(),
        "shrunk repro drifted from the committed golden; if the shrinker \
         changed intentionally, update tests/golden/regressions/mod_injection.raul"
    );
}

#[test]
fn committed_regressions_replay_clean() {
    let cfg = CaseConfig::default();
    let dir = regressions_dir();
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("regressions dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("raul") {
            continue;
        }
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let ast = hlr::parser::parse(&strip_comments(&source))
            .unwrap_or_else(|e| panic!("{} does not parse: {e:?}", path.display()));
        let report = run_case(&ast, &cfg, Injection::None)
            .unwrap_or_else(|e| panic!("{}: oracle refused: {e}", path.display()));
        assert!(
            report.conforms(),
            "{} still diverges: {:?}",
            path.display(),
            report.divergences
        );
        replayed += 1;
    }
    assert!(replayed >= 1, "no .raul repros found in {}", dir.display());
}
