//! The RAUL lexer.
//!
//! Converts source text into a vector of [`Token`]s. Comments run from `#`
//! to end of line, mirroring the "redundancy for intelligibility" the paper
//! ascribes to HLRs (and which the compiler strips away).

use crate::error::{Error, Result};
use crate::token::{Token, TokenKind};
use crate::Span;

/// Tokenises `source`, returning all tokens including a trailing
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns an error on unrecognised characters or malformed literals.
///
/// # Example
///
/// ```
/// let toks = hlr::lexer::tokenize("x := 1;")?;
/// assert_eq!(toks.len(), 5); // ident, :=, int, ;, eof
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                });
                return Ok(tokens);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.word(),
                _ => self.punct()?,
            };
            tokens.push(Token {
                kind,
                span: Span::new(start, self.pos),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_trivia(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| Error::lex("integer literal out of range", Span::new(start, self.pos)))
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn punct(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let c = self.bump().expect("caller checked non-empty");
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'+' => TokenKind::Plus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' => TokenKind::Eq,
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b':' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Assign
                } else {
                    return Err(Error::lex(
                        "expected `=` after `:`",
                        Span::new(start, self.pos),
                    ));
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    TokenKind::Le
                }
                Some(b'>') => {
                    self.pos += 1;
                    TokenKind::Ne
                }
                _ => TokenKind::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(Error::lex(
                    format!("unrecognised character `{}`", other as char),
                    Span::new(start, self.pos),
                ))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn whitespace_and_comments_are_skipped() {
        assert_eq!(
            kinds("  # a comment\n  x # trailing\n"),
            vec![TokenKind::Ident("x".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            kinds("x1 42"),
            vec![
                TokenKind::Ident("x1".into()),
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_recognised() {
        assert_eq!(
            kinds("while do"),
            vec![TokenKind::While, TokenKind::Do, TokenKind::Eof]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds(":= <> <= >= -> < >"),
            vec![
                TokenKind::Assign,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Arrow,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn all_single_punct() {
        assert_eq!(
            kinds("()[];,+-*/%="),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Semi,
                TokenKind::Comma,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = tokenize("ab 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn bad_colon_is_an_error() {
        let err = tokenize("x : y").unwrap_err();
        assert!(err.message.contains("expected `=`"));
    }

    #[test]
    fn unknown_character_is_an_error() {
        assert!(tokenize("@").is_err());
        assert!(tokenize("x & y").is_err());
    }

    #[test]
    fn huge_literal_is_an_error() {
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn i64_max_is_accepted() {
        assert_eq!(
            kinds("9223372036854775807"),
            vec![TokenKind::Int(i64::MAX), TokenKind::Eof]
        );
    }
}
