//! # uhm-profile — the deep profiling plane
//!
//! Observability for the UHM reproduction, built entirely on the
//! machines' typed event stream ([`telemetry::Event`]) so that profiling
//! is a property of the *sink*, never of the machine: every surface in
//! this crate attaches through [`telemetry::TraceSink`] and sets
//! `CLASSIFY_MISSES = false`, which keeps a profiled run's output and
//! modeled metrics bit-identical to an untraced run (the differential
//! test in `tests/profile_plane.rs` holds the line, and the
//! `profile_gate` bench bounds the host-side overhead at ≤ 5 %).
//!
//! Four surfaces, one event stream:
//!
//! * [`CounterPlane`] — the always-on counter plane: per-DIR-region,
//!   per-opcode and per-tier (INTERP / PSDER / TRUSTED) retire + cycle
//!   attribution, opcode-pair frequencies, and sampled DTB
//!   occupancy/eviction timelines, rendered into the schema-v4
//!   [`telemetry::ProfileReport`] by [`report::profile_report`];
//! * [`SpanTracer`] — hierarchical span tracing on the modeled clock,
//!   exported as Chrome `trace_event` JSON loadable in Perfetto
//!   (`raul ... --trace-out trace.json`);
//! * [`FlameBuilder`] — collapsed-stack flamegraph output from the
//!   reconstructed procedure call stack (`--flame-out`);
//! * [`Profile`] — the classic per-instruction execution profile and
//!   coverage curves (grown out of the old `uhm::profile` module), the
//!   empirical justification for a small DTB.
//!
//! Pool-wide aggregation ([`report::pool_profile_json`]) folds a
//! [`uhm::pool::PoolRun`] into per-worker [`telemetry::LogHistogram`]
//! latency shards whose merge is bucket-exact, plus worker utilization
//! and the queue-depth timeline.

#![warn(missing_docs)]

pub mod counters;
pub mod flame;
pub mod map;
#[allow(clippy::module_inception)]
pub mod profile;
pub mod report;
pub mod span;

pub use counters::{Attribution, CounterPlane};
pub use flame::FlameBuilder;
pub use map::{CallStack, ProcMap, StackStep};
pub use profile::Profile;
pub use report::{pool_profile_json, profile_report};
pub use span::SpanTracer;
