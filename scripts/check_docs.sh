#!/usr/bin/env bash
# Checks the four top-level docs (README, ARCHITECTURE, DESIGN,
# EXPERIMENTS) for drift against the repo:
#
#   1. every relative markdown link [text](path) resolves to a file,
#   2. every intra-document anchor [text](#heading) matches a heading,
#   3. every backticked repo path (crates/..., tests/..., *.rs, ...)
#      exists on disk,
#   4. every `--bin <name>` in a command example is a real binary,
#   5. every long `--flag` mentioned in the docs appears in the rust
#      sources (so renamed/removed CLI flags can't linger in prose),
#   6. every analyzer diagnostic code defined in
#      crates/analyze/src/diag.rs is documented in README.md or
#      ARCHITECTURE.md (new ANxyz codes must land with their table row).
#
# Usage: scripts/check_docs.sh [extra-docs...]
# Exits non-zero listing every stale reference found.
set -uo pipefail
cd "$(dirname "$0")/.."
export LC_ALL=C

DOCS=(README.md ARCHITECTURE.md DESIGN.md EXPERIMENTS.md "$@")
fail=0
err() { echo "check_docs: $1: $2" >&2; fail=1; }

# GitHub-style anchor for a markdown heading: lowercase, drop anything
# that is not alphanumeric/space/hyphen/underscore, spaces -> hyphens.
anchors_of() {
    grep -E '^#{1,6} ' "$1" 2>/dev/null \
        | sed -E 's/^#+[[:space:]]+//; s/`//g' \
        | tr '[:upper:]' '[:lower:]' \
        | sed -E 's/[^a-z0-9 _-]//g; s/[[:space:]]+/-/g'
}

# Flags that belong to cargo/CI command lines quoted in the docs, not
# to our binaries.
TOOLCHAIN_FLAGS='--release --bin --example --workspace --all-targets --all
                 --check --no-deps --doc --features --quiet --locked --offline'

for doc in "${DOCS[@]}"; do
    if [ ! -f "$doc" ]; then
        err "$doc" "document not found"
        continue
    fi
    anchors=$(anchors_of "$doc")

    # --- 1 + 2: markdown links ------------------------------------
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        '#'*)
            want=${target#\#}
            if ! printf '%s\n' "$anchors" | grep -qx "$want"; then
                err "$doc" "dead anchor '$target' (no matching heading)"
            fi
            ;;
        *)
            path=${target%%#*}
            frag=""
            [ "$path" != "$target" ] && frag=${target#*#}
            if [ ! -e "$path" ]; then
                err "$doc" "broken link '$target' ($path does not exist)"
            elif [ -n "$frag" ] && [[ $path == *.md ]]; then
                if ! anchors_of "$path" | grep -qx "$frag"; then
                    err "$doc" "dead anchor '$target' in $path"
                fi
            fi
            ;;
        esac
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')

    # --- 3: backticked repo paths ---------------------------------
    while IFS= read -r tok; do
        [ -n "$tok" ] || continue
        tok=${tok%%::*} # `tests/foo.rs::test_name` -> the file part
        case "$tok" in
        *'*'* | *' '* | *'|'*) continue ;; # globs / prose / alternations
        esac
        looks_like_path=0
        case "$tok" in
        crates/* | src/* | tests/* | examples/* | scripts/* | \
            baselines/* | .github/*) looks_like_path=1 ;;
        results/*) continue ;; # generated at run time, not committed
        *.rs | *.md | *.sh | *.toml | *.raul)
            [[ $tok == */* ]] && looks_like_path=1 ;;
        esac
        [ "$looks_like_path" = 1 ] || continue
        if [ ! -e "$tok" ] && [ ! -e "${tok%/}" ]; then
            err "$doc" "backticked path '$tok' does not exist"
        fi
    done < <(grep -oE '`[^`]+`' "$doc" | sed -E 's/^`//; s/`$//' | sort -u)

    # --- 4: --bin targets in command examples ---------------------
    while IFS= read -r bin; do
        [ -n "$bin" ] || continue
        if [ ! -f "crates/bench/src/bin/$bin.rs" ] &&
            [ ! -f "src/bin/$bin.rs" ]; then
            err "$doc" "'--bin $bin' names no binary in crates/bench/src/bin or src/bin"
        fi
    done < <(grep -oE -- '--bin [a-z_0-9]+' "$doc" | awk '{print $2}' | sort -u)

    # --- 5: long flags must exist in the sources ------------------
    while IFS= read -r flag; do
        [ -n "$flag" ] || continue
        case " $TOOLCHAIN_FLAGS " in
        *" $flag "*) continue ;;
        esac
        if ! grep -rqF --include='*.rs' -e "\"$flag\"" src crates; then
            err "$doc" "flag '$flag' not found in any rust source"
        fi
    done < <(grep -oP -- '--[a-z][a-z0-9-]+(?![a-z0-9:/-])' "$doc" | sort -u)
done

# --- 6: analyzer diagnostic codes must be documented ------------------
# The single source of truth is the `id()` table in diag.rs; every code
# string it returns must appear somewhere in README or ARCHITECTURE.
while IFS= read -r code; do
    [ -n "$code" ] || continue
    if ! grep -q "$code" README.md ARCHITECTURE.md; then
        err "crates/analyze/src/diag.rs" \
            "diagnostic code $code is not documented in README.md or ARCHITECTURE.md"
    fi
done < <(grep -oE '"AN[0-9]{3}"' crates/analyze/src/diag.rs | tr -d '"' | sort -u)

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED" >&2
    exit 1
fi
echo "check_docs: OK (${#DOCS[@]} documents clean)"
