//! Decoder hardening fuzz: every scheme's decoder must return a typed
//! [`ImageError`] on arbitrary garbage — random byte strings, truncated
//! streams and single-bit corruptions — and never panic. Over 10k seeded
//! inputs per run.

use dir::encode::SchemeKind;
use hlr::rng::Rng;

fn sample_program() -> dir::Program {
    dir::compiler::compile(&hlr::programs::GCD_CHAIN.compile().unwrap())
}

/// Random byte strings in place of the encoded stream: decoding at any
/// valid index must not panic.
#[test]
fn random_bytes_never_panic_the_decoders() {
    let program = sample_program();
    let mut rng = Rng::new(0xD0DE);
    let mut inputs = 0u32;
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&program);
        for _ in 0..300 {
            let garbage: Vec<u8> = (0..image.bytes.len())
                .map(|_| rng.next_u64() as u8)
                .collect();
            for _ in 0..6 {
                let index = rng.range_u64(0, image.len() as u64) as u32;
                // Ok (garbage that happens to decode) and Err are both
                // fine; only a panic is a failure.
                let _ = image.decode_from(&garbage, index);
                inputs += 1;
            }
        }
    }
    assert!(inputs >= 10_000, "only {inputs} fuzz inputs");
}

/// Single-bit corruptions of a well-formed stream: the realistic fault
/// model the machine's fault plane injects.
#[test]
fn bit_flips_never_panic_the_decoders() {
    let program = sample_program();
    let mut rng = Rng::new(0xF11B_F10B);
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&program);
        for _ in 0..200 {
            let mut bytes = image.bytes.clone();
            let bit = rng.range_u64(0, image.bit_len);
            bytes[(bit / 8) as usize] ^= 0x80 >> (bit % 8);
            for index in 0..image.len() as u32 {
                let _ = image.decode_from(&bytes, index);
            }
        }
    }
}

/// Truncated streams: every prefix of the byte buffer reports
/// `Exhausted` (or decodes, for instructions before the cut) instead of
/// reading out of bounds.
#[test]
fn truncated_streams_error_cleanly() {
    let program = sample_program();
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&program);
        for cut in 0..image.bytes.len() {
            let truncated = &image.bytes[..cut];
            for index in 0..image.len() as u32 {
                let _ = image.decode_from(truncated, index);
            }
        }
    }
}

/// Error parity: on arbitrary garbage, bit-flipped and truncated
/// streams, the table decoder returns the *same* `Result` as the tree
/// decoder — same instruction when both decode, same typed error when
/// either fails. The fast plane may not even differ in how it breaks.
/// Over 10k adversarial inputs per run.
#[test]
fn tree_and_table_agree_on_corrupt_streams() {
    use dir::encode::DecodeMode;
    let program = sample_program();
    let mut rng = Rng::new(0x7AB1_E5EE);
    let mut inputs = 0u64;
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&program);
        // Pure garbage of the original length.
        for _ in 0..150 {
            let garbage: Vec<u8> = (0..image.bytes.len())
                .map(|_| rng.next_u64() as u8)
                .collect();
            for _ in 0..4 {
                let index = rng.range_u64(0, image.len() as u64) as u32;
                let tree = image.decode_with(&garbage, index, DecodeMode::Tree);
                let table = image.decode_with(&garbage, index, DecodeMode::Table);
                assert_eq!(tree, table, "{scheme} garbage at {index}");
                inputs += 1;
            }
        }
        // Single-bit corruptions of the well-formed stream.
        for _ in 0..40 {
            let mut bytes = image.bytes.clone();
            let bit = rng.range_u64(0, image.bit_len);
            bytes[(bit / 8) as usize] ^= 0x80 >> (bit % 8);
            for index in 0..image.len() as u32 {
                let tree = image.decode_with(&bytes, index, DecodeMode::Tree);
                let table = image.decode_with(&bytes, index, DecodeMode::Table);
                assert_eq!(tree, table, "{scheme} bit {bit} at {index}");
                inputs += 1;
            }
        }
        // Truncations: exhaustion must surface identically.
        for cut in 0..image.bytes.len() {
            let truncated = &image.bytes[..cut];
            for index in 0..image.len() as u32 {
                let tree = image.decode_with(truncated, index, DecodeMode::Tree);
                let table = image.decode_with(truncated, index, DecodeMode::Table);
                assert_eq!(tree, table, "{scheme} cut {cut} at {index}");
                inputs += 1;
            }
        }
    }
    assert!(inputs >= 10_000, "only {inputs} parity inputs");
}

/// The unmodified buffer decodes identically through `decode_from` and
/// `decode` — the fault plane's zero-rate path is exact.
#[test]
fn decode_from_matches_decode_on_clean_bytes() {
    let program = sample_program();
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&program);
        for index in 0..image.len() as u32 {
            let a = image.decode(index).unwrap();
            let b = image.decode_from(&image.bytes, index).unwrap();
            assert_eq!(a.inst, b.inst, "{scheme} at {index}");
            assert_eq!(a.bits, b.bits, "{scheme} at {index}");
            assert_eq!(a.cost, b.cost, "{scheme} at {index}");
        }
    }
}
