//! Encoding lab: one program through all five encodings of §3.2, with the
//! size/decode-cost trade-off made visible, plus a peek at the fused
//! (higher semantic level) tier.
//!
//! Run with `cargo run --example encoding_lab`.

use dir::encode::SchemeKind;
use dir::stats::{ImageSummary, StaticStats};

fn main() {
    let sample = hlr::programs::SIEVE;
    println!("Workload: {} — {}\n", sample.name, sample.description);
    let hir = sample.compile().expect("sample compiles");
    let base = dir::compiler::compile(&hir);
    let (fused, fstats) = dir::fuse::fuse(&base);

    let stats = StaticStats::collect(&base);
    println!(
        "Stack-tier DIR: {} instructions, opcode entropy {:.2} bits",
        stats.instructions, stats.opcode_entropy
    );
    println!(
        "Fused tier: {} instructions ({:.0}% smaller), {} fused ops\n",
        fstats.after,
        fstats.reduction() * 100.0,
        fstats.fused
    );

    for (tier, prog) in [("stack", &base), ("fused", &fused)] {
        println!("== {tier} tier ==");
        println!(
            "{:>12} {:>10} {:>12} {:>10} {:>12}",
            "scheme", "prog bits", "bits/instr", "decode d", "side bits"
        );
        for kind in SchemeKind::all() {
            let image = kind.encode(prog);
            // Every encoding must round-trip exactly.
            assert_eq!(image.decode_all().expect("decodes"), prog.code);
            let s = ImageSummary::of(&image);
            println!(
                "{:>12} {:>10} {:>12.1} {:>10.1} {:>12}",
                kind.label(),
                s.program_bits,
                s.mean_inst_bits,
                s.mean_decode_cost,
                s.side_table_bits
            );
        }
        println!();
    }
    println!("Rightward moves shrink the program and grow the decode cost and the");
    println!("interpreter-side tables; upward (fused) moves shrink both. This is");
    println!("Figure 1 of the paper, measured.");
}
