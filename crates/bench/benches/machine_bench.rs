//! Criterion benchmarks of the three machine configurations (host-side
//! throughput of the simulator, not simulated cycles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dir::encode::SchemeKind;
use std::hint::black_box;
use uhm::{DtbConfig, Machine, Mode};

fn bench_modes(c: &mut Criterion) {
    let hir = hlr::programs::GCD_CHAIN.compile().expect("sample compiles");
    let prog = dir::compiler::compile(&hir);
    let machine = Machine::new(&prog, SchemeKind::Huffman);
    let modes: Vec<(&str, Mode)> = vec![
        ("interpreter", Mode::Interpreter),
        ("dtb", Mode::Dtb(DtbConfig::with_capacity(64))),
        (
            "icache",
            Mode::ICache {
                geometry: memsim::Geometry::new(32, 4),
            },
        ),
    ];
    let mut group = c.benchmark_group("machine");
    for (label, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, mode| {
            b.iter(|| black_box(machine.run(black_box(mode)).expect("trap-free")))
        });
    }
    group.finish();
}

fn bench_schemes_under_dtb(c: &mut Criterion) {
    let hir = hlr::programs::FIB_REC.compile().expect("sample compiles");
    let prog = dir::compiler::compile(&hir);
    let mut group = c.benchmark_group("dtb_by_scheme");
    for scheme in SchemeKind::all() {
        let machine = Machine::new(&prog, scheme);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &machine,
            |b, machine| {
                b.iter(|| {
                    black_box(
                        machine
                            .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
                            .expect("trap-free"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_schemes_under_dtb);
criterion_main!(benches);
