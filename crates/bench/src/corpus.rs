//! The shared encoded sample corpus.
//!
//! Several gate binaries used to rebuild the same nested loop — every
//! sample workload, at both semantic tiers, under every encoding
//! scheme — each with its own copy of the tier labels. This module is
//! the single definition of that cross-product (and of the canonical
//! tier labels `base`/`fused`), so the gates agree on what "the corpus"
//! means and a new scheme or tier shows up in all of them at once.

use dir::encode::{Image, SchemeKind};
use dir::program::Program;

use crate::{workloads, Workload};

/// Canonical tier labels, in corpus order.
pub const TIERS: [&str; 2] = ["base", "fused"];

/// The two semantic tiers of one workload, labelled canonically.
pub fn tiers(w: &Workload) -> [(&'static str, &Program); 2] {
    [("base", &w.base), ("fused", &w.fused)]
}

/// One encoded corpus entry: a workload at one tier under one scheme.
pub struct CorpusImage {
    /// Sample name.
    pub workload: &'static str,
    /// Semantic tier label (`base` or `fused`).
    pub tier: &'static str,
    /// Encoding scheme the image uses.
    pub scheme: SchemeKind,
    /// The DIR program at this tier.
    pub program: Program,
    /// The encoded level-2 image.
    pub image: Image,
}

impl CorpusImage {
    /// `workload/tier`, the display name the gates print.
    pub fn name(&self) -> String {
        format!("{}/{}", self.workload, self.tier)
    }
}

/// The full encoded corpus: every workload × tier × scheme.
pub fn encoded_corpus() -> Vec<CorpusImage> {
    let mut entries = Vec::new();
    for w in workloads() {
        for (tier, program) in tiers(&w) {
            for scheme in SchemeKind::all() {
                entries.push(CorpusImage {
                    workload: w.name,
                    tier,
                    scheme,
                    program: program.clone(),
                    image: scheme.encode(program),
                });
            }
        }
    }
    entries
}

/// Base-tier programs only, for gates that measure the unfused form.
pub fn base_programs() -> Vec<Program> {
    workloads().into_iter().map(|w| w.base).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_the_full_cross_product() {
        let entries = encoded_corpus();
        assert_eq!(
            entries.len(),
            workloads().len() * TIERS.len() * SchemeKind::all().len()
        );
        for e in &entries {
            assert!(TIERS.contains(&e.tier));
            assert_eq!(e.image.len(), e.program.code.len());
        }
    }

    #[test]
    fn base_programs_match_workload_count() {
        assert_eq!(base_programs().len(), workloads().len());
    }
}
