//! # uhm-memsim — memory-hierarchy substrate
//!
//! The memory subsystems Rau (1978) assumes: a two-level store with the
//! Section-7 cost parameters ([`hierarchy`]), set-associative LRU caches
//! used both as the T3 baseline instruction cache and as the DTB address
//! array ([`cache`]), and Denning working-set / LRU stack-distance analysis
//! of reference traces ([`workset`]) backing the paper's locality argument.
//!
//! # Example
//!
//! ```
//! use memsim::cache::{Access, Geometry, SetAssocCache};
//!
//! let mut cache = SetAssocCache::new(Geometry::new(64, 4));
//! assert!(matches!(cache.access(0x1234), Access::Miss { .. }));
//! assert_eq!(cache.access(0x1234), Access::Hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod workset;

pub use cache::{Access, CacheStats, Geometry, SetAssocCache};
pub use hierarchy::{Level, MemoryCosts, ReferenceCounter};
