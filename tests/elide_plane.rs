//! Elide-plane integration tests: per-site check elision driven by the
//! dataflow pass's fact bitmap is observably identical to checked
//! execution — outputs AND modeled metrics — across every encoding
//! scheme and both decoder planes; the audit mode (guards still
//! evaluated at elided sites) never sees a guard fire over the sample
//! corpus; and an attached fault injector voids site facts exactly as
//! it voids whole-image trust.

use dir::encode::{DecodeMode, SchemeKind};
use dir::exec::Limits;
use std::sync::Arc;
use uhm::{CostModel, DtbConfig, FaultConfig, Machine, Mode};

fn sample_programs() -> Vec<(&'static str, dir::Program)> {
    hlr::programs::ALL
        .iter()
        .map(|s| {
            (
                s.name,
                dir::compiler::compile(&s.compile().expect("samples compile")),
            )
        })
        .collect()
}

/// Per-site elision at the DIR and PSDER levels is bit-identical to
/// checked execution, outputs and stats, for every sample and scheme.
#[test]
fn sited_level_engines_are_bit_identical() {
    for (name, program) in sample_programs() {
        for scheme in SchemeKind::all() {
            let verified = analyze::verify(&program, scheme.encode(&program))
                .unwrap_or_else(|r| panic!("{name} verifies under {scheme}:\n{}", r.render()));
            let facts = verified.facts();
            let checked = dir::exec::run_with(&program, Limits::default(), false);
            let sited = dir::exec::run_sited_with(&program, facts, Limits::default(), false);
            assert_eq!(sited, checked, "{name} under {scheme}: dir sited");
            assert_eq!(
                psder::interp::run_sited_with(&program, facts, psder::interp::Limits::default()),
                psder::interp::run(&program),
                "{name} under {scheme}: psder sited"
            );
        }
    }
}

/// Audit mode evaluates the guard at every elided site: no guard fires
/// anywhere in the corpus, and the audited run equals the checked run.
#[test]
fn audit_mode_finds_no_unsound_site() {
    for (name, program) in sample_programs() {
        let verified = analyze::verify(&program, SchemeKind::ByteAligned.encode(&program))
            .expect("corpus verifies clean");
        let facts = verified.facts();
        let checked = dir::exec::run_with(&program, Limits::default(), false);
        let (audited, verdict) =
            dir::exec::run_audit_with(&program, facts, Limits::default(), false);
        assert!(
            verdict.is_sound(),
            "{name}: elided guards fired: {verdict:?}"
        );
        assert_eq!(audited, checked, "{name}: dir audit");
        let (audited, fired) =
            psder::interp::run_audit_with(&program, facts, psder::interp::Limits::default());
        assert_eq!(fired, 0, "{name}: psder elided guards fired");
        assert_eq!(audited, psder::interp::run(&program), "{name}: psder audit");
    }
}

/// A machine consulting the fact bitmap per retired instruction matches
/// a plain checked machine in output and every modeled metric, across
/// all six schemes, both decoders and every machine mode.
#[test]
fn sited_machine_is_observably_identical() {
    for (name, program) in sample_programs() {
        for scheme in SchemeKind::all() {
            let verified =
                analyze::verify(&program, scheme.encode(&program)).expect("corpus verifies clean");
            let facts = Arc::new(verified.facts().clone());
            for decoder in [DecodeMode::Tree, DecodeMode::Table] {
                let mut sited = Machine::new(&program, scheme);
                sited
                    .set_decoder(decoder)
                    .set_site_facts(Some(Arc::clone(&facts)));
                let mut plain = Machine::new(&program, scheme);
                plain.set_decoder(decoder);
                for mode in [Mode::Interpreter, Mode::Dtb(DtbConfig::with_capacity(64))] {
                    let a = sited.run(&mode).unwrap();
                    let b = plain.run(&mode).unwrap();
                    assert_eq!(a.output, b.output, "{name} {scheme} {decoder:?} {mode:?}");
                    assert_eq!(a.metrics, b.metrics, "{name} {scheme} {decoder:?} {mode:?}");
                }
            }
        }
    }
}

/// An attached fault injector voids site facts exactly as it voids
/// whole-image trust: under an identical seeded fault plan — inert or
/// aggressive DIR corruption — a machine carrying the fact bitmap is
/// bit-identical (output, metrics, fault totals, recoveries, traps) to
/// a machine with no facts at all.
#[test]
fn faults_void_site_facts_like_trusted() {
    let limits = uhm::Limits {
        max_steps: 2_000_000,
        ..uhm::Limits::default()
    };
    let plans = [
        FaultConfig::inert(7),
        FaultConfig::only(0xE11D, telemetry::FaultKind::DirBit, 1e-3),
        FaultConfig::only(0xE11D, telemetry::FaultKind::DtbWord, 1e-2),
    ];
    for (name, program) in sample_programs() {
        let verified = analyze::verify(&program, SchemeKind::Huffman.encode(&program))
            .expect("corpus verifies clean");
        let facts = Arc::new(verified.facts().clone());
        for plan in &plans {
            let mut sited =
                Machine::with(&program, SchemeKind::Huffman, CostModel::default(), limits);
            sited.set_site_facts(Some(Arc::clone(&facts)));
            sited.set_faults(Some(*plan));
            let mut plain =
                Machine::with(&program, SchemeKind::Huffman, CostModel::default(), limits);
            plain.set_faults(Some(*plan));
            let mode = Mode::Dtb(DtbConfig::with_capacity(64));
            match (sited.run(&mode), plain.run(&mode)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.output, b.output, "{name} under {plan:?}");
                    assert_eq!(a.metrics, b.metrics, "{name} under {plan:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{name} under {plan:?}"),
                (a, b) => panic!("{name} under {plan:?}: sited {a:?} vs plain {b:?}"),
            }
        }
    }
}
