//! **E15 — the perf gate (host decode throughput):** measures *host*
//! wall-clock throughput of the two decoder implementations — the
//! seed's bit-at-a-time tree walker (`--decoder tree`) and the
//! word-batched canonical-Huffman table decoder (`--decoder table`) —
//! in MB/s over the full sample corpus, plus DIR→PSDER translation
//! throughput plain vs memoized vs block-fused.
//!
//! The paper's *modeled* decode costs (E6/E12) are a property of the
//! representation, not of the host, and are identical in both modes by
//! construction; this binary never touches them. See DESIGN.md's note
//! on the modeled-cost / host-throughput separation.
//!
//! Run with `cargo run -p uhm-bench --release --bin perf_gate`.
//! With `--json`, emits a versioned RunReport instead of the text table.
//! With `--smoke`, exits non-zero if (a) the two decoders diverge on any
//! instruction of any scheme — output, consumed bits, or modeled cost —
//! or (b) any scheme's table/tree speedup ratio regresses more than 20%
//! below the committed baseline (`baselines/perf_gate.json`). Ratios,
//! not absolute MB/s, so the gate is robust across CI machines.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use dir::encode::{DecodeMode, Image, SchemeKind};
use dir::program::Program;
use telemetry::Json;
use uhm_bench::corpus::base_programs;
use uhm_bench::{bench_report, json_flag};

/// Committed reference speedups; `--smoke` fails when a measured
/// table/tree ratio falls below `TOLERANCE` times the baseline.
const BASELINE: &str = include_str!("../../baselines/perf_gate.json");
const TOLERANCE: f64 = 0.8;

/// One scheme's encoded corpus: every sample program under one scheme.
struct Corpus {
    scheme: SchemeKind,
    images: Vec<Image>,
    /// Total encoded program size across the corpus, in bits.
    bits: u64,
    instrs: u64,
}

fn corpora(programs: &[Program]) -> Vec<Corpus> {
    SchemeKind::all()
        .into_iter()
        .map(|scheme| {
            let images: Vec<Image> = programs.iter().map(|p| scheme.encode(p)).collect();
            let bits = images.iter().map(Image::program_bits).sum();
            let instrs = images.iter().map(|im| im.len() as u64).sum();
            Corpus {
                scheme,
                images,
                bits,
                instrs,
            }
        })
        .collect()
}

/// Decodes the whole corpus through `mode`, folding the results into an
/// accumulator so the work cannot be optimized away. Each plane decodes
/// the way it actually would: the tree plane per-index, exactly as the
/// seed's `decode_all` did, the table plane through the streaming entry.
fn decode_pass(images: &[Image], mode: DecodeMode) -> u64 {
    let mut acc = 0u64;
    for im in images {
        match mode {
            DecodeMode::Tree => {
                for i in 0..im.len() as u32 {
                    let d = im
                        .decode_with(&im.bytes, i, mode)
                        .expect("clean images decode");
                    acc = acc.wrapping_add(d.bits).wrapping_add(u64::from(d.cost));
                }
            }
            DecodeMode::Table => {
                for d in im.decode_all_with(mode).expect("clean images decode") {
                    acc = acc.wrapping_add(d.bits).wrapping_add(u64::from(d.cost));
                }
            }
        }
    }
    acc
}

const TARGET_NANOS: u128 = 5_000_000; // 5 ms per sampled batch
const MAX_ITERS: u64 = 1 << 22;
const SAMPLES: usize = 5;

/// Batch size that makes one sample of `f` take roughly [`TARGET_NANOS`].
fn calibrate(f: &mut impl FnMut() -> u64) -> u64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t.elapsed().as_nanos().max(1);
        if dt >= TARGET_NANOS || iters >= MAX_ITERS {
            return iters;
        }
        let scale = (TARGET_NANOS * 2 / dt) as u64;
        iters = iters.saturating_mul(scale.max(2)).min(MAX_ITERS);
    }
}

fn sample(f: &mut impl FnMut() -> u64, iters: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// Fastest observed ns per call of `a` and of `b`, sampled alternately.
/// Interleaving matters on shared machines: a throttling episode hits
/// both sides instead of biasing whichever ran second, so the *ratio*
/// of the two minima is far more stable than back-to-back runs.
fn min_ns_interleaved(mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (f64, f64) {
    let (ia, ib) = (calibrate(&mut a), calibrate(&mut b));
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..SAMPLES {
        best_a = best_a.min(sample(&mut a, ia));
        best_b = best_b.min(sample(&mut b, ib));
    }
    (best_a, best_b)
}

/// One scheme's measured decode throughput in both modes.
struct DecodeRow {
    scheme: SchemeKind,
    megabytes: f64,
    instrs: u64,
    tree_mb_s: f64,
    table_mb_s: f64,
    speedup: f64,
}

fn measure_decode(c: &Corpus) -> DecodeRow {
    // Both decoders must fold to the same accumulator before either is
    // worth timing.
    assert_eq!(
        decode_pass(&c.images, DecodeMode::Tree),
        decode_pass(&c.images, DecodeMode::Table),
        "{} decoders diverge",
        c.scheme
    );
    let bytes = c.bits as f64 / 8.0;
    let (tree_ns, table_ns) = min_ns_interleaved(
        || decode_pass(&c.images, DecodeMode::Tree),
        || decode_pass(&c.images, DecodeMode::Table),
    );
    let mb_s = |ns: f64| bytes / (ns / 1e9) / 1e6;
    DecodeRow {
        scheme: c.scheme,
        megabytes: bytes / 1e6,
        instrs: c.instrs,
        tree_mb_s: mb_s(tree_ns),
        table_mb_s: mb_s(table_ns),
        speedup: tree_ns / table_ns,
    }
}

/// Translates the whole corpus instruction by instruction, fresh
/// template construction every time (the seed's translator path).
fn translate_plain(programs: &[Program]) -> u64 {
    let mut acc = 0u64;
    for p in programs {
        for (i, &inst) in p.code.iter().enumerate() {
            acc = acc.wrapping_add(psder::translate(inst, i as u32 + 1).len() as u64);
        }
    }
    acc
}

/// Same pass through a shared memo cache: after the first pass every
/// lookup is a hit, modelling a hot DTB-miss handler.
fn translate_cached(programs: &[Program], cache: &mut psder::TransCache) -> u64 {
    let mut acc = 0u64;
    for p in programs {
        for (i, &inst) in p.code.iter().enumerate() {
            acc = acc.wrapping_add(cache.translate(inst, i as u32 + 1).len() as u64);
        }
    }
    acc
}

/// Whole-corpus superinstruction fusion: translate straight-line runs
/// as single blocks, dropping interior fall-through terminators.
fn translate_fused(programs: &[Program]) -> u64 {
    let mut acc = 0u64;
    for p in programs {
        let mut pc = 0usize;
        while pc < p.code.len() {
            let (words, taken) = psder::fuse_block(&p.code[pc..], pc as u32);
            acc = acc.wrapping_add(words.len() as u64);
            pc += taken.max(1);
        }
    }
    acc
}

/// One translation stage's measured throughput.
struct TransRow {
    stage: &'static str,
    minstr_s: f64,
}

fn measure_translation(programs: &[Program]) -> Vec<TransRow> {
    let total: u64 = programs.iter().map(|p| p.code.len() as u64).sum();
    let minstr_s = |ns: f64| total as f64 / (ns / 1e9) / 1e6;
    let mut cache = psder::TransCache::new();
    translate_cached(programs, &mut cache); // warm: measure the hit path
    let (plain, cached) = min_ns_interleaved(
        || translate_plain(programs),
        || translate_cached(programs, &mut cache),
    );
    let mut f = || translate_fused(programs);
    let fused_iters = calibrate(&mut f);
    let fused = (0..SAMPLES)
        .map(|_| sample(&mut f, fused_iters))
        .fold(f64::INFINITY, f64::min);
    vec![
        TransRow {
            stage: "plain",
            minstr_s: minstr_s(plain),
        },
        TransRow {
            stage: "memoized",
            minstr_s: minstr_s(cached),
        },
        TransRow {
            stage: "fused",
            minstr_s: minstr_s(fused),
        },
    ]
}

fn baseline_speedup(baseline: &Json, scheme: SchemeKind) -> f64 {
    baseline
        .get("speedup")
        .and_then(|s| s.get(scheme.label()))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("baseline missing speedup for {scheme}"))
}

/// The CI gate: divergence is a hard failure, and so is a speedup ratio
/// regressing more than 20% below the committed baseline.
fn smoke(programs: &[Program]) -> ExitCode {
    let corpora = corpora(programs);
    let mut checks = 0u64;
    for c in &corpora {
        for im in &c.images {
            for i in 0..im.len() as u32 {
                let tree = im.decode_with(&im.bytes, i, DecodeMode::Tree);
                let table = im.decode_with(&im.bytes, i, DecodeMode::Table);
                if tree != table {
                    eprintln!(
                        "perf smoke: {} decoder divergence at instruction {i}: \
                         tree={tree:?} table={table:?}",
                        c.scheme
                    );
                    return ExitCode::FAILURE;
                }
                checks += 1;
            }
        }
    }
    let baseline = Json::parse(BASELINE.trim()).expect("committed baseline parses");
    let mut failed = false;
    for c in &corpora {
        let row = measure_decode(c);
        let want = baseline_speedup(&baseline, c.scheme);
        if row.speedup < want * TOLERANCE {
            eprintln!(
                "perf smoke: {} table/tree speedup {:.2}x is >20% below the \
                 committed baseline {want:.2}x",
                c.scheme, row.speedup
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "perf smoke PASS: {checks} decodes bit-identical across decoders, \
         speedup ratios within 20% of baseline"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let programs: Vec<Program> = base_programs();
    if std::env::args().any(|a| a == "--smoke") {
        return smoke(&programs);
    }

    let decode_rows: Vec<DecodeRow> = corpora(&programs).iter().map(measure_decode).collect();
    let trans_rows = measure_translation(&programs);

    if json_flag() {
        let mut rows: Vec<Json> = decode_rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("kind", "decode".to_string().into()),
                    ("scheme", r.scheme.label().to_string().into()),
                    ("megabytes", r.megabytes.into()),
                    ("instructions", r.instrs.into()),
                    ("tree_mb_s", r.tree_mb_s.into()),
                    ("table_mb_s", r.table_mb_s.into()),
                    ("speedup", r.speedup.into()),
                ])
            })
            .collect();
        rows.extend(trans_rows.iter().map(|r| {
            Json::obj(vec![
                ("kind", "translate".to_string().into()),
                ("stage", r.stage.to_string().into()),
                ("minstr_s", r.minstr_s.into()),
            ])
        }));
        let config = Json::obj(vec![
            ("lut_bits", u64::from(dir::huffman::LUT_BITS).into()),
            ("workloads", (programs.len() as u64).into()),
            ("tolerance", TOLERANCE.into()),
        ]);
        println!("{}", bench_report("perf_gate", config, rows).render());
        return ExitCode::SUCCESS;
    }

    println!(
        "host decode throughput over {} workloads (wall clock; modeled \
         costs identical in both modes)",
        programs.len()
    );
    println!(
        "{:>12} {:>9} {:>8} {:>12} {:>12} {:>9}",
        "scheme", "MB", "instrs", "tree MB/s", "table MB/s", "speedup"
    );
    for r in &decode_rows {
        println!(
            "{:>12} {:>9.3} {:>8} {:>12.1} {:>12.1} {:>8.2}x",
            r.scheme.label(),
            r.megabytes,
            r.instrs,
            r.tree_mb_s,
            r.table_mb_s,
            r.speedup
        );
    }
    println!();
    println!("DIR -> PSDER translation throughput");
    println!("{:>12} {:>12}", "stage", "Minstr/s");
    for r in &trans_rows {
        println!("{:>12} {:>12.2}", r.stage, r.minstr_s);
    }
    ExitCode::SUCCESS
}
