//! Assembler playground: write a DIR program by hand, validate it, run it
//! through the machines, inspect its PSDER translations and IU occupancy.
//!
//! Run with `cargo run --example asm_playground`.

use dir::encode::SchemeKind;
use uhm::{DtbConfig, Machine, Mode};

/// A hand-written DIR program: the 3n+1 trajectory length of 27, written
/// directly in assembler syntax (no RAUL involved). Instruction indices
/// are absolute; comments mark the branch targets.
const SOURCE: &str = "
    .globals 0
    .entry main
    ; prelude
        call main                  ; 0
        halt                       ; 1
    .proc main args=0 frame=2
        ; slot 0 = n, slot 1 = steps
        set_local_const 0 27       ; 2
        set_local_const 1 0        ; 3
        cmp_const_br ne 0 1 22     ; 4: loop head; n = 1 -> epilogue (22)
        push_local 0               ; 5
        push_const 2               ; 6
        bin mod                    ; 7
        jump_if_false 16           ; 8: even -> 16
        push_const 3               ; 9: odd: n := 3n + 1
        push_local 0               ; 10
        bin mul                    ; 11
        push_const 1               ; 12
        bin add                    ; 13
        store_local 0              ; 14
        jump 20                    ; 15
        push_local 0               ; 16: even: n := n / 2
        push_const 2               ; 17
        bin div                    ; 18
        store_local 0              ; 19
        inc_local 1 1              ; 20
        jump 4                     ; 21
        push_local 1               ; 22: epilogue
        write                      ; 23
        return                     ; 24
    .end
";

fn main() {
    let program = match dir::asm::assemble(SOURCE) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = program.validate() {
        eprintln!("invalid program: {e}");
        std::process::exit(1);
    }
    println!("assembled {} instructions\n", program.len());

    // Show the PSDER translation of the fused compare-and-branch.
    let cmp_at = program
        .code
        .iter()
        .position(|i| matches!(i, dir::Inst::CmpConstBr { .. }))
        .expect("program contains cmp_const_br") as u32;
    println!(
        "PSDER translation of `{}`:",
        dir::asm::format_inst(&program.code[cmp_at as usize])
    );
    print!(
        "{}",
        psder::listing::sequence_listing(&psder::translate(
            program.code[cmp_at as usize],
            cmp_at + 1
        ))
    );

    let machine = Machine::new(&program, SchemeKind::Huffman);
    for (label, mode) in [
        ("interpreter", Mode::Interpreter),
        ("dtb", Mode::Dtb(DtbConfig::with_capacity(32))),
    ] {
        let report = machine.run(&mode).expect("program is trap-free");
        let m = &report.metrics;
        println!(
            "\n{label}: output {:?}, T = {:.2}",
            report.output,
            m.time_per_instruction()
        );
        println!(
            "  control-word occupancy: IU1 {} cycles, IU2 {} cycles, memory {} cycles",
            m.iu1_cycles(),
            m.iu2_cycles(),
            m.memory_cycles()
        );
    }
    println!("\nThe 3n+1 trajectory of 27 takes 111 steps; under the DTB the short-");
    println!("format unit (IU2) takes over the cycles the interpreter spent in IU1");
    println!("decode and steering — Figure 3's two instruction units, measured.");
}
