//! Frequency-based (Huffman) opcode encoding over contextual operand
//! fields (§3.2: "a more sophisticated encoding of the Huffman type may be
//! employed by measuring the frequency of occurrence of each operator ...
//! in the static representation of the program").
//!
//! Decoding a Huffman code "entails traversing a decoding tree guided by an
//! examination of the encoded field"; the cost model charges the paper's
//! two host instructions per level of the walk.

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::Tree;
use crate::isa::Opcode;
use crate::program::Program;

use super::contextual::{read_inst, write_fields};
use super::{
    ContextTables, DecodeMode, Decoded, DecoderData, Image, ImageError, Region, Scheme, SchemeKind,
};

/// The Huffman scheme (unit struct; the codebook is measured from the
/// program's static opcode frequencies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HuffmanScheme;

impl Scheme for HuffmanScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Huffman
    }

    fn encode(&self, program: &Program) -> Image {
        let tables = ContextTables::build(program);
        let tree = Tree::from_frequencies(&program.opcode_histogram());
        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for (i, inst) in program.code.iter().enumerate() {
            offsets.push(w.bit_len());
            let region = tables.region_of(i as u32);
            tree.encode(inst.opcode() as usize, &mut w);
            write_fields(&mut w, inst, region);
        }
        let (bytes, bit_len) = w.finish();
        Image {
            kind: SchemeKind::Huffman,
            bytes,
            bit_len,
            offsets,
            side_table_bits: tables.table_bits() + tree.table_bits(),
            mode: DecodeMode::default(),
            decoder: DecoderData::Huffman { tree, tables },
        }
    }
}

/// Decodes one instruction; cost: region lookup (1) + tree walk (2 per code
/// bit) + width lookup/extract/mask per field (3 each).
#[inline]
pub(super) fn decode(
    reader: &mut BitReader<'_>,
    tree: &Tree,
    region: &Region,
    mode: DecodeMode,
) -> Result<Decoded, ImageError> {
    let (symbol, code_bits) = mode.huff(tree, reader)?;
    let opcode = Opcode::from_u8(symbol as u8).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(symbol as u8),
    ))?;
    let inst = read_inst(reader, opcode, region, mode)?;
    Ok(Decoded {
        inst,
        cost: 1 + 2 * code_bits + 3 * opcode.field_kinds().len() as u32,
        bits: 0,
    })
}

/// Streaming table-plane decoder: one 57-bit peek per instruction
/// resolves the opcode through the Huffman LUT *and* supplies every
/// operand field, so the common case costs a single window probe, one
/// `consume`, and shift extraction straight into the instruction — no
/// per-field reads, no intermediate field buffer, no second opcode
/// dispatch. Region widths are hoisted into a [`super::template`] per
/// contour, so the loop does no width arithmetic beyond a table lookup.
/// Long codes and instructions wider than the window fall back to the
/// per-field reader. Instructions, consumed widths, modeled costs, and
/// errors are bit-identical to [`decode`] in `Table` mode on the same
/// stream.
pub(super) fn stream_table(
    im: &Image,
    tree: &Tree,
    tables: &ContextTables,
) -> Result<Vec<Decoded>, ImageError> {
    let n = im.len() as u32;
    let mut out = Vec::with_capacity(n as usize);
    let mut reader = BitReader::new(&im.bytes, im.bit_len);
    for region in &tables.regions {
        let tpl = super::template::RegionTpl::new(region);
        for _index in region.start..region.end.min(n) {
            let window = reader.peek(57);
            let d = match tree.lut_hit(window) {
                Some((symbol, code_bits)) => {
                    let opcode = Opcode::from_u8(symbol as u8).ok_or(ImageError::Decode(
                        crate::isa::DecodeError::BadOpcode(symbol as u8),
                    ))?;
                    let total = code_bits + tpl.fields_total(symbol);
                    if total <= 57 {
                        // One consume covers the opcode and all fields;
                        // the peeked window already zero-masks padding,
                        // and the consume proves every extracted bit is
                        // in-stream.
                        reader.consume(total)?;
                        let inst = super::template::decode_window(opcode, window, code_bits, &tpl)?;
                        Decoded {
                            inst,
                            cost: 1 + 2 * code_bits + tpl.field_cost(symbol),
                            bits: total as u64,
                        }
                    } else {
                        slow_step(&mut reader, tree, region)?
                    }
                }
                None => slow_step(&mut reader, tree, region)?,
            };
            out.push(d);
        }
    }
    Ok(out)
}

/// Fallback for codes longer than the LUT window or instructions wider
/// than one peek: the ordinary per-field table decoder.
#[cold]
fn slow_step(
    reader: &mut BitReader<'_>,
    tree: &Tree,
    region: &Region,
) -> Result<Decoded, ImageError> {
    let start = reader.position();
    let d = decode(reader, tree, region, DecodeMode::Table)?;
    Ok(Decoded {
        bits: reader.position() - start,
        ..d
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let image = HuffmanScheme.encode(&p);
            assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
        }
    }

    #[test]
    fn huffman_beats_contextual_on_skewed_programs() {
        // Array-heavy code has very skewed opcode usage.
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let ctx = super::super::Contextual.encode(&p);
        let huff = HuffmanScheme.encode(&p);
        assert!(huff.bit_len < ctx.bit_len);
    }

    #[test]
    fn opcode_stream_is_within_a_bit_of_entropy() {
        let p = compile(&hlr::programs::MATMUL.compile().unwrap());
        let freqs = p.opcode_histogram();
        let tree = Tree::from_frequencies(&freqs);
        let h = crate::huffman::entropy(&freqs);
        let w = tree.expected_width(&freqs);
        assert!(w < h + 1.0, "expected width {w}, entropy {h}");
    }

    #[test]
    fn decode_cost_reflects_code_length() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let image = HuffmanScheme.encode(&p);
        // Costs must vary across instructions (rare opcodes walk deeper).
        let costs: Vec<u32> = (0..image.len() as u32)
            .map(|i| image.decode(i).unwrap().cost)
            .collect();
        let min = costs.iter().min().unwrap();
        let max = costs.iter().max().unwrap();
        assert!(
            max > min,
            "uniform costs suggest the tree walk is not charged"
        );
    }
}
