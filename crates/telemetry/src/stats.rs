//! Order statistics for latency aggregation.
//!
//! The pool report summarizes per-tenant latencies as p50/p95/p99; these
//! helpers implement the one interpolation rule every surface shares so
//! numbers are comparable across reports (and across PRs). Nothing here
//! is specific to latency — the functions work on any sample set.

/// Summary percentiles of a sample set, as used by the pool report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// The median (p50).
    pub p50: f64,
    /// The 95th percentile.
    pub p95: f64,
    /// The 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Computes p50/p95/p99 of `samples` (need not be sorted; empty
    /// yields all zeros).
    ///
    /// ```
    /// use telemetry::Percentiles;
    ///
    /// let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0]);
    /// assert_eq!(p.p50, 2.5);
    /// assert!(p.p99 > p.p50);
    /// assert_eq!(Percentiles::of(&[]), Percentiles::default());
    /// ```
    pub fn of(samples: &[f64]) -> Percentiles {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("percentile samples must not be NaN")
        });
        Percentiles {
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }
}

/// The `p`-th percentile (0–100) of an ascending-sorted sample set,
/// linearly interpolated between the two nearest ranks (the common
/// "exclusive of neither end" definition: p0 = min, p100 = max). Empty
/// input yields 0.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_min_and_max() {
        let s = [1.0, 2.0, 10.0];
        assert_eq!(percentile_sorted(&s, 0.0), 1.0);
        assert_eq!(percentile_sorted(&s, 100.0), 10.0);
        assert_eq!(percentile_sorted(&s, 50.0), 2.0);
    }

    #[test]
    fn interpolates_between_ranks() {
        let s = [0.0, 100.0];
        assert_eq!(percentile_sorted(&s, 95.0), 95.0);
        assert_eq!(percentile_sorted(&s, 25.0), 25.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let p = Percentiles::of(&[7.5]);
        assert_eq!((p.p50, p.p95, p.p99), (7.5, 7.5, 7.5));
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let p = Percentiles::of(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(p.p50, 5.0);
        assert!(p.p95 <= 9.0 && p.p95 > 8.0);
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let s = [1.0, 2.0];
        assert_eq!(percentile_sorted(&s, -5.0), 1.0);
        assert_eq!(percentile_sorted(&s, 200.0), 2.0);
    }

    #[test]
    fn percentiles_are_monotone_on_random_samples() {
        // splitmix64-style generator, fixed seed: no external RNG crates.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let samples: Vec<f64> = (0..257).map(|_| next() * 1e6).collect();
        let p = Percentiles::of(&samples);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(p.p50 >= lo && p.p99 <= hi);
    }
}
