//! Pass 3a: whole-program call graph.
//!
//! Builds the procedure-level call graph from the static `Call` sites,
//! then reports procedures unreachable from the prelude (dead code the
//! image still pays to carry) and statically detected recursion (the call
//! chain the DTB must hold is unbounded; only the dynamic depth limit
//! bounds it). For acyclic graphs the maximum call-chain depth is
//! computed exactly — the frame-storage bound a host needs.

use dir::isa::Inst;
use dir::program::Program;

use crate::diag::{DiagCode, Diagnostic};

/// The static call graph and the facts derived from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Deduplicated callee lists, indexed by caller procedure.
    pub callees: Vec<Vec<u32>>,
    /// Procedures called directly from the prelude.
    pub roots: Vec<u32>,
    /// Reachability from the prelude, per procedure.
    pub reachable: Vec<bool>,
    /// Whether each procedure sits on a call-graph cycle.
    pub recursive: Vec<bool>,
    /// Longest call chain from the prelude, in frames — `None` when the
    /// graph is cyclic (statically unbounded).
    pub max_chain: Option<u32>,
}

/// Builds the call graph and appends reachability/recursion findings.
pub(crate) fn build(program: &Program, diags: &mut Vec<Diagnostic>) -> CallGraph {
    let np = program.procs.len();
    let prelude_end = program
        .procs
        .iter()
        .map(|p| p.entry)
        .min()
        .unwrap_or(program.code.len() as u32) as usize;

    let calls_in = |start: usize, end: usize| -> Vec<u32> {
        let mut out: Vec<u32> = program.code[start..end.min(program.code.len())]
            .iter()
            .filter_map(|inst| match *inst {
                Inst::Call(p) if (p as usize) < np => Some(p),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };

    let roots = calls_in(0, prelude_end);
    let callees: Vec<Vec<u32>> = program
        .procs
        .iter()
        .map(|p| calls_in(p.entry as usize, p.end as usize))
        .collect();

    // Reachability from the prelude.
    let mut reachable = vec![false; np];
    let mut stack: Vec<u32> = roots.clone();
    while let Some(p) = stack.pop() {
        if !std::mem::replace(&mut reachable[p as usize], true) {
            stack.extend(callees[p as usize].iter().copied());
        }
    }

    // Cycle membership: iterative DFS coloring. A procedure is recursive
    // when some back edge closes a path through it.
    let mut on_cycle = vec![false; np];
    // 0 = white, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; np];
    let mut path: Vec<u32> = Vec::new();
    for root in 0..np as u32 {
        if color[root as usize] != 0 {
            continue;
        }
        // Each stack entry is (proc, next-callee cursor).
        let mut dfs: Vec<(u32, usize)> = vec![(root, 0)];
        color[root as usize] = 1;
        path.push(root);
        while let Some(&mut (p, ref mut cursor)) = dfs.last_mut() {
            if let Some(&q) = callees[p as usize].get(*cursor) {
                *cursor += 1;
                match color[q as usize] {
                    0 => {
                        color[q as usize] = 1;
                        path.push(q);
                        dfs.push((q, 0));
                    }
                    1 => {
                        // Everyone on the path from q onward is on a cycle.
                        let from = path.iter().position(|&x| x == q).expect("q is on path");
                        for &x in &path[from..] {
                            on_cycle[x as usize] = true;
                        }
                    }
                    _ => {}
                }
            } else {
                color[p as usize] = 2;
                path.pop();
                dfs.pop();
            }
        }
    }

    // Longest chain, only meaningful on acyclic graphs.
    let cyclic = on_cycle.iter().any(|&c| c);
    let max_chain = if cyclic {
        None
    } else {
        let mut memo = vec![None::<u32>; np];
        fn depth(p: u32, callees: &[Vec<u32>], memo: &mut Vec<Option<u32>>) -> u32 {
            if let Some(d) = memo[p as usize] {
                return d;
            }
            let d = 1 + callees[p as usize]
                .iter()
                .map(|&q| depth(q, callees, memo))
                .max()
                .unwrap_or(0);
            memo[p as usize] = Some(d);
            d
        }
        Some(
            roots
                .iter()
                .map(|&r| depth(r, &callees, &mut memo))
                .max()
                .unwrap_or(0),
        )
    };

    for (i, p) in program.procs.iter().enumerate() {
        if !reachable[i] {
            diags.push(Diagnostic::at(
                DiagCode::UnreachableProcedure,
                p.entry,
                p.name.clone(),
                format!("procedure {} is unreachable from the prelude", p.name),
            ));
        }
        if on_cycle[i] {
            diags.push(Diagnostic::at(
                DiagCode::RecursionDetected,
                p.entry,
                p.name.clone(),
                format!(
                    "procedure {} is on a call-graph cycle (static depth unbounded)",
                    p.name
                ),
            ));
        }
    }

    CallGraph {
        callees,
        roots,
        reachable,
        recursive: on_cycle,
        max_chain,
    }
}
