//! **E14 — the fault plane (robustness):** sweep seeded fault injection
//! across fault classes and rates, reporting recovery rate, degraded-mode
//! fraction and cycle overhead per workload.
//!
//! Run with `cargo run -p uhm-bench --bin fault_campaign --release`.
//! With `--json`, emits a versioned RunReport instead of the text table.
//! With `--smoke`, runs only the DTB corruption classes at a fixed seed
//! and rate and exits non-zero unless every single run recovers with the
//! clean run's output — the CI gate for the integrity machinery.

use std::process::ExitCode;

use dir::encode::SchemeKind;
use telemetry::{FaultKind, Json, RingSink};
use uhm::{CostModel, DtbConfig, FaultConfig, Limits, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads, Workload};

const SEED: u64 = 0xFA14;
const RATES: [f64; 3] = [1e-4, 1e-3, 1e-2];
const KINDS: [FaultKind; 4] = [
    FaultKind::DtbWord,
    FaultKind::DtbTag,
    FaultKind::DirBit,
    FaultKind::FetchDrop,
];

/// One (workload, kind, rate) cell of the campaign.
struct Cell {
    workload: &'static str,
    kind: FaultKind,
    rate: f64,
    outcome: String,
    output_matches: bool,
    injected: u64,
    recoveries: u64,
    degraded_fraction: f64,
    overhead: f64,
    /// Telemetry event totals agree with the machine's counters.
    corroborated: bool,
}

impl Cell {
    /// A run "recovers" when it completes with the clean run's output —
    /// guaranteed for the DTB classes, best-effort elsewhere.
    fn recovered(&self) -> bool {
        self.outcome == "ok" && self.output_matches
    }
}

fn machine(w: &Workload) -> Machine {
    // Corrupted control flow can loop: bound every faulty run.
    let limits = Limits {
        max_steps: 5_000_000,
        ..Limits::default()
    };
    Machine::with(&w.base, SchemeKind::Huffman, CostModel::default(), limits)
}

fn run_cell(w: &Workload, clean: &uhm::Report, kind: FaultKind, rate: f64, seed: u64) -> Cell {
    let mut m = machine(w);
    m.set_faults(Some(FaultConfig::only(seed, kind, rate)));
    let mode = Mode::Dtb(DtbConfig::with_capacity(64));
    let mut ring = RingSink::new(1024);
    match m.run_with(&mode, &mut ring) {
        Ok(report) => {
            let metrics = &report.metrics;
            let faults = metrics.faults.unwrap_or_default();
            let counts = ring.counts();
            Cell {
                workload: w.name,
                kind,
                rate,
                outcome: "ok".into(),
                output_matches: report.output == clean.output,
                injected: faults.total(),
                recoveries: metrics.recoveries,
                degraded_fraction: metrics.degraded_instructions as f64
                    / metrics.instructions.max(1) as f64,
                overhead: metrics.cycles.total() as f64
                    / clean.metrics.cycles.total().max(1) as f64
                    - 1.0,
                corroborated: counts.faults_injected == faults.total()
                    && counts.recovery_misses == metrics.recoveries,
            }
        }
        Err(trap) => Cell {
            workload: w.name,
            kind,
            rate,
            outcome: format!("trap: {trap}"),
            output_matches: false,
            injected: ring.counts().faults_injected,
            recoveries: 0,
            degraded_fraction: 0.0,
            overhead: 0.0,
            corroborated: true, // nothing to cross-check after a trap
        },
    }
}

fn campaign(kinds: &[FaultKind], rates: &[f64]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for w in workloads() {
        let clean = machine(&w)
            .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
            .expect("samples are trap-free without injection");
        for &kind in kinds {
            for &rate in rates {
                // A decorrelated (but deterministic) seed per cell, via one
                // splitmix64 hop. With one shared seed — or seeds that only
                // shift the splitmix64 stream — every low-opportunity run
                // replays the same handful of draws and whole fault classes
                // never fire.
                let seed = hlr::rng::Rng::new(SEED ^ cells.len() as u64).next_u64();
                cells.push(run_cell(&w, &clean, kind, rate, seed));
            }
        }
    }
    cells
}

fn cell_json(c: &Cell) -> Json {
    Json::obj(vec![
        ("workload", c.workload.into()),
        ("kind", c.kind.label().into()),
        ("rate", c.rate.into()),
        ("outcome", c.outcome.as_str().into()),
        ("output_matches_clean", c.output_matches.into()),
        ("recovered", c.recovered().into()),
        ("faults_injected", c.injected.into()),
        ("recoveries", c.recoveries.into()),
        ("degraded_fraction", c.degraded_fraction.into()),
        ("cycle_overhead", c.overhead.into()),
        ("telemetry_corroborated", c.corroborated.into()),
    ])
}

fn smoke() -> ExitCode {
    let kinds = [FaultKind::DtbWord, FaultKind::DtbTag];
    let cells = campaign(&kinds, &[1e-3]);
    let mut failed = 0;
    for c in &cells {
        if !c.recovered() || !c.corroborated {
            failed += 1;
            eprintln!(
                "FAIL {:>14} {:>9}: outcome={} match={} corroborated={}",
                c.workload,
                c.kind.label(),
                c.outcome,
                c.output_matches,
                c.corroborated
            );
        }
    }
    let total = cells.len();
    if failed > 0 {
        eprintln!("fault smoke: {failed}/{total} runs failed to recover");
        return ExitCode::FAILURE;
    }
    let injected: u64 = cells.iter().map(|c| c.injected).sum();
    let recoveries: u64 = cells.iter().map(|c| c.recoveries).sum();
    println!(
        "fault smoke PASS: {total} runs, {injected} faults injected, \
         {recoveries} recoveries, recovery rate 100%"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--smoke") {
        return smoke();
    }
    let cells = campaign(&KINDS, &RATES);
    if json_flag() {
        let config = Json::obj(vec![
            ("seed", SEED.into()),
            ("scheme", "huffman".into()),
            ("dtb_entries", 64u64.into()),
            (
                "rates",
                Json::Arr(RATES.iter().map(|&r| r.into()).collect()),
            ),
            (
                "kinds",
                Json::Arr(KINDS.iter().map(|k| k.label().into()).collect()),
            ),
        ]);
        let rows = cells.iter().map(cell_json).collect();
        println!("{}", bench_report("fault_campaign", config, rows).render());
        return ExitCode::SUCCESS;
    }
    println!("Fault-injection campaign (Huffman DIR, 64-entry DTB, seed {SEED:#x})\n");
    println!(
        "{:>14} {:>10} {:>8} {:>10} {:>7} {:>7} {:>9} {:>9} {:>6}",
        "workload", "kind", "rate", "outcome", "faults", "recov", "degraded", "overhead", "corr"
    );
    for c in &cells {
        println!(
            "{:>14} {:>10} {:>8.0e} {:>10} {:>7} {:>7} {:>8.2}% {:>+8.2}% {:>6}",
            c.workload,
            c.kind.label(),
            c.rate,
            if c.recovered() { "ok" } else { &c.outcome },
            c.injected,
            c.recoveries,
            c.degraded_fraction * 100.0,
            c.overhead * 100.0,
            if c.corroborated { "yes" } else { "NO" }
        );
    }
    let dtb_cells: Vec<&Cell> = cells
        .iter()
        .filter(|c| matches!(c.kind, FaultKind::DtbWord | FaultKind::DtbTag))
        .collect();
    let recovered = dtb_cells.iter().filter(|c| c.recovered()).count();
    println!(
        "\nDTB corruption recovery: {recovered}/{} runs completed with the clean output.",
        dtb_cells.len()
    );
    println!("DIR bit flips corrupt the ground truth itself: a typed trap (or, for");
    println!("flips landing in never-re-decoded code, a clean run) is the expected outcome.");
    ExitCode::SUCCESS
}
