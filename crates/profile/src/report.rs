//! Builders for the schema-v4 [`ProfileReport`]: single-run attribution
//! and pool-wide aggregation.
//!
//! The single-run builder pairs a [`CounterPlane`] with the run's
//! [`Metrics`]; the pool builder folds a [`PoolRun`] into mergeable
//! per-worker latency histograms ([`telemetry::LogHistogram`] shards,
//! merged bucket-exactly), worker utilization and the queue-depth
//! timeline.

use telemetry::{Json, LogHistogram, ProfileReport};
use uhm::pool::PoolRun;
use uhm::Metrics;

use crate::counters::CounterPlane;

/// Assembles a schema-v4 profile report from one run's counter plane and
/// metrics. `config` is the free-form run configuration (workload, mode,
/// scheme, knobs) the caller already knows.
pub fn profile_report(
    tool: &str,
    config: Json,
    plane: &CounterPlane,
    metrics: &Metrics,
) -> ProfileReport {
    let aggregate = Json::obj([
        ("instructions", Json::from(metrics.instructions)),
        ("cycles", Json::from(metrics.cycles.total())),
        (
            "time_per_instruction",
            Json::from(metrics.time_per_instruction()),
        ),
        ("retires_observed", Json::from(plane.retired())),
        ("cycles_observed", Json::from(plane.cycles())),
        ("dtb_evictions", Json::from(plane.evictions())),
    ]);
    ProfileReport::new(tool, config, plane.to_json(), aggregate)
}

/// Folds a pool run into the report's optional `pool` section:
/// per-worker latency histogram shards, their exact bucket-wise merge,
/// merged percentile estimates, per-worker utilization, and queue-depth
/// statistics. The shards are kept in the payload precisely because the
/// merge is exact — a consumer can re-aggregate any worker subset and
/// get the same numbers this builder would.
pub fn pool_profile_json(run: &PoolRun) -> Json {
    let mut shards: Vec<LogHistogram> = (0..run.workers).map(|_| LogHistogram::new()).collect();
    for r in &run.results {
        if let Some(shard) = shards.get_mut(r.worker) {
            shard.record(r.latency_ns);
        }
    }
    let mut merged = LogHistogram::new();
    for shard in &shards {
        merged.merge(shard);
    }
    let utilization = run.worker_utilization();
    let workers: Vec<Json> = shards
        .iter()
        .zip(utilization.iter())
        .enumerate()
        .map(|(w, (shard, &util))| {
            Json::obj([
                ("worker", Json::from(w)),
                ("utilization", Json::from(util)),
                ("latency_ns", shard.to_json()),
            ])
        })
        .collect();
    let depth_max = run.queue_depth.iter().copied().max().unwrap_or(0);
    let depth_mean = if run.queue_depth.is_empty() {
        0.0
    } else {
        run.queue_depth.iter().sum::<u64>() as f64 / run.queue_depth.len() as f64
    };
    Json::obj([
        ("tenants", Json::from(run.results.len())),
        ("completed", Json::from(run.completed())),
        ("workers", Json::Arr(workers)),
        ("latency_ns", merged.to_json()),
        (
            "latency_percentiles_ns",
            Json::obj([
                ("p50", Json::from(merged.percentile(50.0))),
                ("p95", Json::from(merged.percentile(95.0))),
                ("p99", Json::from(merged.percentile(99.0))),
                ("p999", Json::from(merged.percentile(99.9))),
            ]),
        ),
        (
            "queue_depth",
            Json::obj([
                ("samples", Json::from(run.queue_depth.len())),
                ("max", Json::from(depth_max)),
                ("mean", Json::from(depth_mean)),
            ]),
        ),
        ("steals", Json::from(run.steals)),
        ("wall_ns", Json::from(run.wall_ns)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;
    use std::sync::Arc;
    use telemetry::PROFILE_SCHEMA_VERSION;
    use uhm::pool::MachinePool;
    use uhm::{DtbConfig, Machine, Mode};

    const LOOP: &str = "proc main() begin
        int i; int s := 0;
        for i := 0 to 199 do s := s + i;
        write s;
    end";

    #[test]
    fn single_run_report_round_trips_at_schema_v4() {
        let program = dir::compiler::compile(&hlr::compile(LOOP).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut plane = CounterPlane::new(&program);
        let report = machine
            .run_with(&Mode::Dtb(DtbConfig::with_capacity(16)), &mut plane)
            .unwrap();
        let pr = profile_report(
            "raul profile",
            Json::obj([("workload", Json::from("loop"))]),
            &plane,
            &report.metrics,
        );
        let text = pr.render();
        let back = ProfileReport::parse(&text).unwrap();
        assert_eq!(back, pr);
        let j = back.to_json();
        assert_eq!(
            j.get("schema_version").and_then(Json::as_i64),
            Some(PROFILE_SCHEMA_VERSION)
        );
        assert_eq!(
            back.aggregate.get("instructions").and_then(Json::as_i64),
            back.aggregate
                .get("retires_observed")
                .and_then(Json::as_i64),
            "counter plane must have observed every retire"
        );
    }

    #[test]
    fn pool_section_histograms_merge_exactly() {
        let program = dir::compiler::compile(&hlr::compile(LOOP).unwrap());
        let mut m = Machine::new(&program, SchemeKind::Packed);
        m.freeze_translations();
        let m = Arc::new(m);
        let mut pool = MachinePool::new(3);
        for t in 0..9 {
            pool.push(format!("t{t}"), Arc::clone(&m), Mode::Interpreter);
        }
        let run = pool.run();
        let j = pool_profile_json(&run);

        assert_eq!(j.get("tenants").and_then(Json::as_i64), Some(9));
        assert_eq!(j.get("completed").and_then(Json::as_i64), Some(9));

        // The merged histogram's total equals the tenant count, and the
        // per-worker shard totals sum to it (the exact-merge property).
        let merged_total = j
            .get("latency_ns")
            .and_then(|h| h.get("total"))
            .and_then(Json::as_i64)
            .unwrap();
        assert_eq!(merged_total, 9);
        let shard_sum: i64 = j
            .get("workers")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|w| {
                w.get("latency_ns")
                    .and_then(|h| h.get("total"))
                    .and_then(Json::as_i64)
                    .unwrap()
            })
            .sum();
        assert_eq!(shard_sum, merged_total);

        // Percentile estimates are ordered.
        let p = j.get("latency_percentiles_ns").unwrap();
        let get = |k: &str| p.get(k).and_then(Json::as_f64).unwrap();
        assert!(get("p50") <= get("p95"));
        assert!(get("p95") <= get("p99"));
        assert!(get("p99") <= get("p999"));

        // Queue depth drains to zero; utilization is sane.
        let qd = j.get("queue_depth").unwrap();
        assert_eq!(qd.get("samples").and_then(Json::as_i64), Some(9));
        assert!(qd.get("max").and_then(Json::as_i64).unwrap() < 9);
        for w in j.get("workers").and_then(Json::as_arr).unwrap() {
            let u = w.get("utilization").and_then(Json::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn empty_pool_folds_to_zeros() {
        let run = MachinePool::new(2).run();
        let j = pool_profile_json(&run);
        assert_eq!(j.get("tenants").and_then(Json::as_i64), Some(0));
        let p = j.get("latency_percentiles_ns").unwrap();
        assert_eq!(p.get("p999").and_then(Json::as_f64), Some(0.0));
    }
}
