//! Bit-granular reader/writer used by all encoded representations.
//!
//! The paper's encodings pack fields that "span the boundaries of the units
//! of memory access"; this module provides exactly that: an MSB-first bit
//! stream over a byte buffer.

/// Appends bit fields to a byte buffer, MSB-first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total bits written.
    len: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.len
    }

    /// Writes the low `width` bits of `value`, MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = (self.len / 8) as usize;
            if byte_idx == self.buf.len() {
                self.buf.push(0);
            }
            let bit_idx = 7 - (self.len % 8) as u32;
            self.buf[byte_idx] |= (bit as u8) << bit_idx;
            self.len += 1;
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Finishes writing, returning the buffer and the exact bit length.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.buf, self.len)
    }
}

/// Reads bit fields from a byte buffer, MSB-first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: u64,
    len: u64,
}

/// An attempt to read past the end of a bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsExhausted;

impl std::fmt::Display for BitsExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "read past end of bit stream")
    }
}

impl std::error::Error for BitsExhausted {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `len` bits of `buf`, starting at bit 0.
    pub fn new(buf: &'a [u8], len: u64) -> Self {
        BitReader { buf, pos: 0, len }
    }

    /// Creates a reader positioned at bit offset `at`.
    pub fn at(buf: &'a [u8], len: u64, at: u64) -> Self {
        BitReader { buf, pos: at, len }
    }

    /// Current bit position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Reads `width` bits, MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if fewer than `width` bits remain. The
    /// declared `len` is clamped to the backing buffer, so a stream whose
    /// header claims more bits than the buffer holds (a truncated or
    /// corrupted image) errors instead of reading out of bounds.
    pub fn read(&mut self, width: u32) -> Result<u64, BitsExhausted> {
        assert!(width <= 64, "width {width} > 64");
        let avail = self.len.min(self.buf.len() as u64 * 8);
        if self.pos + width as u64 > avail {
            return Err(BitsExhausted);
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.buf[(self.pos / 8) as usize];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(out)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, BitsExhausted> {
        Ok(self.read(1)? == 1)
    }
}

/// Number of bits needed to represent values in `0..=max` (at least 1).
pub fn bits_for(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xDEADBEEF, 32);
        w.write(1, 1);
        w.write(0, 5);
        w.write(u64::MAX, 64);
        let (buf, len) = w.finish();
        assert_eq!(len, 3 + 32 + 1 + 5 + 64);
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.read(3).unwrap(), 0b101);
        assert_eq!(r.read(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read(1).unwrap(), 1);
        assert_eq!(r.read(5).unwrap(), 0);
        assert_eq!(r.read(64).unwrap(), u64::MAX);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn fields_span_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write(0b1111111, 7);
        w.write(0b10, 2); // crosses byte 0 -> 1
        let (buf, len) = w.finish();
        assert_eq!(len, 9);
        assert_eq!(buf.len(), 2);
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.read(7).unwrap(), 0b1111111);
        assert_eq!(r.read(2).unwrap(), 0b10);
    }

    #[test]
    fn reader_at_offset() {
        let mut w = BitWriter::new();
        w.write(0b1010, 4);
        w.write(0b11, 2);
        let (buf, len) = w.finish();
        let mut r = BitReader::at(&buf, len, 4);
        assert_eq!(r.read(2).unwrap(), 0b11);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(8, 3);
    }

    #[test]
    fn bits_for_bounds() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..10 {
            w.write_bit(i % 3 == 0);
        }
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        for i in 0..10 {
            assert_eq!(r.read_bit().unwrap(), i % 3 == 0);
        }
    }

    #[test]
    fn position_tracks_reads() {
        let mut w = BitWriter::new();
        w.write(0xAB, 8);
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.position(), 0);
        r.read(3).unwrap();
        assert_eq!(r.position(), 3);
    }
}
