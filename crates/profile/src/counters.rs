//! The always-on counter plane: per-region, per-opcode and per-tier
//! attribution at retire granularity.
//!
//! [`CounterPlane`] is a [`TraceSink`] designed to stay attached to
//! production runs: it reacts to exactly three event kinds (`Retire`,
//! `DtbFill`, `Evict`), does a constant amount of array arithmetic per
//! retire, and allocates nothing on the hot path. Crucially it sets
//! [`TraceSink::CLASSIFY_MISSES`] to `false`, so attaching it does not
//! switch on the shadow three-C miss classifier — a profiled run's
//! modeled metrics are bit-identical to an untraced run (the differential
//! test in `tests/profile_plane.rs` enforces this), and the extra host
//! cost stays inside the `profile_gate` bench's ≤ 5 % budget.

use dir::isa::{OPCODES, OPCODE_COUNT};
use dir::program::Program;
use telemetry::{Event, Json, Tier, TraceSink};

use crate::map::ProcMap;
use crate::profile::Profile;

/// Retained samples per timeline before the sampling stride doubles.
const TIMELINE_CAP: usize = 4096;

/// A sampled timeline: `(retire_index, value)` points with a power-of-two
/// sampling stride that doubles whenever the buffer fills, so memory is
/// bounded on arbitrarily long runs while short runs keep every point.
/// Compaction is purely a function of the sample ordinals, so the
/// retained set is deterministic for a given event stream.
#[derive(Debug, Clone)]
struct Timeline {
    samples: Vec<(u64, u32)>,
    stride: u64,
    seen: u64,
}

impl Timeline {
    fn new() -> Timeline {
        Timeline {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }

    fn push(&mut self, at: u64, value: u32) {
        let ordinal = self.seen;
        self.seen += 1;
        // The stride is always a power of two, so the subsampling gate is
        // a mask, not a division — this runs once per DTB fill.
        if ordinal & (self.stride - 1) != 0 {
            return;
        }
        self.samples.push((at, value));
        if self.samples.len() >= TIMELINE_CAP {
            // Retained ordinals are the multiples of `stride`; keeping
            // the even positions keeps exactly the multiples of
            // `2 * stride`, matching the new gate below.
            let mut pos = 0usize;
            self.samples.retain(|_| {
                let keep = pos.is_multiple_of(2);
                pos += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    fn to_json(&self, key: &'static str) -> Json {
        let points: Vec<Json> = self
            .samples
            .iter()
            .map(|&(at, v)| Json::obj([("at", Json::from(at)), (key, Json::from(i64::from(v)))]))
            .collect();
        Json::obj([
            ("events", Json::from(self.seen)),
            ("stride", Json::from(self.stride)),
            ("points", Json::Arr(points)),
        ])
    }
}

/// Per-row accumulation: dynamic retires and modeled cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Dynamic DIR instructions attributed to this row.
    pub retires: u64,
    /// Modeled level-1 cycles attributed to this row.
    pub cycles: u64,
}

/// The per-address hot-path row: everything one retire touches lives in
/// one indexed load — count, cycle accumulator, and the (static) opcode
/// needed for the pair histogram. Region and opcode attribution are
/// *derived* from these rows at report time instead of being updated per
/// retire, which keeps the emit path to three array touches.
#[derive(Debug, Clone, Copy, Default)]
struct AddrRow {
    retires: u64,
    cycles: u64,
    opcode: u8,
    /// `opcode * OPCODE_COUNT`, precomputed so the pair-histogram index
    /// is one add instead of a multiply on the retire path.
    pair_base: u16,
}

/// The always-on attribution sink.
#[derive(Debug, Clone)]
pub struct CounterPlane {
    map: ProcMap,
    rows: Vec<AddrRow>,
    tiers: [Attribution; Tier::COUNT],
    /// `(OPCODE_COUNT + 1) × OPCODE_COUNT` adjacency counts; the extra
    /// row is the start-of-run sentinel so the hot path needs no branch
    /// on "was there a previous retire". Saturating `u32` cells keep the
    /// whole histogram in half the cache footprint of `u64`; the default
    /// step limit (200 M) retires cannot overflow one.
    pairs: Vec<u32>,
    /// Row base (`prev_opcode * OPCODE_COUNT`) of the previous retire.
    prev_base: u16,
    occupancy: Timeline,
    evictions: Timeline,
    evicted: u64,
}

impl CounterPlane {
    /// Creates a counter plane for one program.
    pub fn new(program: &Program) -> CounterPlane {
        let rows = program
            .code
            .iter()
            .map(|i| {
                let opcode = i.opcode() as u8;
                AddrRow {
                    opcode,
                    pair_base: u16::from(opcode) * OPCODE_COUNT as u16,
                    ..AddrRow::default()
                }
            })
            .collect();
        CounterPlane {
            map: ProcMap::new(program),
            rows,
            tiers: [Attribution::default(); Tier::COUNT],
            pairs: vec![0; (OPCODE_COUNT + 1) * OPCODE_COUNT],
            prev_base: (OPCODE_COUNT * OPCODE_COUNT) as u16,
            occupancy: Timeline::new(),
            evictions: Timeline::new(),
            evicted: 0,
        }
    }

    /// Total retired DIR instructions observed (the tier rows partition
    /// the retire stream, so their sum is the total — no extra counter
    /// is maintained on the hot path).
    pub fn retired(&self) -> u64 {
        self.tiers.iter().map(|t| t.retires).sum()
    }

    /// Total modeled cycles observed (sum of per-retire deltas — equals
    /// the run's `CycleBreakdown::total()` by the retire invariant).
    pub fn cycles(&self) -> u64 {
        self.tiers.iter().map(|t| t.cycles).sum()
    }

    /// Per-region attribution as `(name, attribution)` rows, region 0
    /// being the prelude. Derived from the per-address rows (region is a
    /// static property of the address), so it costs nothing per retire.
    pub fn by_region(&self) -> Vec<(&str, Attribution)> {
        let mut regions = vec![Attribution::default(); self.map.regions()];
        for (addr, row) in self.rows.iter().enumerate() {
            let r = &mut regions[self.map.region_of(addr as u32)];
            r.retires += row.retires;
            r.cycles += row.cycles;
        }
        regions
            .into_iter()
            .enumerate()
            .map(|(i, a)| (self.map.name(i), a))
            .collect()
    }

    /// Per-opcode attribution in discriminant order (dense, includes
    /// zero rows). Derived from the per-address rows at call time.
    pub fn by_opcode(&self) -> [Attribution; OPCODE_COUNT] {
        let mut opcodes = [Attribution::default(); OPCODE_COUNT];
        for row in &self.rows {
            let o = &mut opcodes[row.opcode as usize];
            o.retires += row.retires;
            o.cycles += row.cycles;
        }
        opcodes
    }

    /// Per-tier attribution indexed by [`Tier::index`].
    pub fn by_tier(&self) -> [Attribution; Tier::COUNT] {
        self.tiers
    }

    /// The dynamic count of the ordered opcode pair `(from, to)` —
    /// retire-adjacency frequencies, the classic peephole-superinstruction
    /// signal.
    pub fn pair(&self, from: usize, to: usize) -> u64 {
        u64::from(self.pairs[from * OPCODE_COUNT + to])
    }

    /// The `n` most frequent ordered opcode pairs as
    /// `(from, to, count)`, descending by count with deterministic
    /// index-order tie-breaks. The start-of-run sentinel row is excluded.
    pub fn hottest_pairs(&self, n: usize) -> Vec<(usize, usize, u64)> {
        let mut rows: Vec<(usize, usize, u64)> = self.pairs[..OPCODE_COUNT * OPCODE_COUNT]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i / OPCODE_COUNT, i % OPCODE_COUNT, u64::from(c)))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        rows.truncate(n);
        rows
    }

    /// The per-instruction execution profile accumulated so far — the
    /// same shape [`Profile::from_trace`] builds from a recorded trace,
    /// but without ever materializing the trace.
    pub fn profile(&self) -> Profile {
        Profile {
            counts: self.rows.iter().map(|r| r.retires).collect(),
            total: self.retired(),
        }
    }

    /// Modeled cycles attributed to static instruction `addr`.
    pub fn cycles_at(&self, addr: u32) -> u64 {
        self.rows.get(addr as usize).map_or(0, |r| r.cycles)
    }

    /// Total DTB evictions observed.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// The attribution payload as the canonical `profile` section of a
    /// schema-v4 [`telemetry::ProfileReport`].
    pub fn to_json(&self) -> Json {
        let regions: Vec<Json> = self
            .by_region()
            .into_iter()
            .map(|(name, a)| {
                Json::obj([
                    ("name", Json::from(name)),
                    ("retires", Json::from(a.retires)),
                    ("cycles", Json::from(a.cycles)),
                ])
            })
            .collect();
        let opcodes: Vec<Json> = self
            .by_opcode()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.retires > 0)
            .map(|(i, a)| {
                Json::obj([
                    ("opcode", Json::from(format!("{:?}", OPCODES[i]))),
                    ("retires", Json::from(a.retires)),
                    ("cycles", Json::from(a.cycles)),
                ])
            })
            .collect();
        let tiers: Vec<Json> = [Tier::Interp, Tier::Psder, Tier::Trusted]
            .iter()
            .map(|t| {
                let a = self.tiers[t.index()];
                Json::obj([
                    ("tier", Json::from(t.label())),
                    ("retires", Json::from(a.retires)),
                    ("cycles", Json::from(a.cycles)),
                ])
            })
            .collect();
        let pairs: Vec<Json> = self
            .hottest_pairs(16)
            .into_iter()
            .map(|(from, to, count)| {
                Json::obj([
                    ("from", Json::from(format!("{:?}", OPCODES[from]))),
                    ("to", Json::from(format!("{:?}", OPCODES[to]))),
                    ("count", Json::from(count)),
                ])
            })
            .collect();
        let prof = self.profile();
        let hottest: Vec<Json> = prof
            .hottest(16)
            .into_iter()
            .map(|(addr, count)| {
                Json::obj([
                    ("addr", Json::from(addr)),
                    (
                        "region",
                        Json::from(self.map.name(self.map.region_of(addr))),
                    ),
                    ("opcode", {
                        let op = self.rows[addr as usize].opcode as usize;
                        Json::from(format!("{:?}", OPCODES[op]))
                    }),
                    ("retires", Json::from(count)),
                    ("cycles", Json::from(self.cycles_at(addr))),
                ])
            })
            .collect();
        let mut coverage = Vec::new();
        let mut k = 1usize;
        while k < prof.counts.len().max(1) {
            coverage.push(Json::obj([
                ("k", Json::from(k)),
                ("coverage", Json::from(prof.coverage(k))),
            ]));
            k *= 2;
        }
        coverage.push(Json::obj([
            ("k", Json::from(prof.counts.len())),
            ("coverage", Json::from(prof.coverage(prof.counts.len()))),
        ]));
        Json::obj([
            ("regions", Json::Arr(regions)),
            ("opcodes", Json::Arr(opcodes)),
            ("tiers", Json::Arr(tiers)),
            ("pairs", Json::Arr(pairs)),
            ("hottest", Json::Arr(hottest)),
            ("coverage", Json::Arr(coverage)),
            (
                "dtb_timeline",
                Json::obj([
                    ("occupancy", self.occupancy.to_json("resident")),
                    ("evictions", self.evictions.to_json("victim")),
                ]),
            ),
        ])
    }
}

impl TraceSink for CounterPlane {
    // Attribution only — never perturb the modeled metrics by switching
    // on the shadow miss classifier.
    const CLASSIFY_MISSES: bool = false;

    #[inline]
    fn emit(&mut self, event: Event) {
        match event {
            Event::Retire { addr, tier, cycles } => {
                let cycles = u64::from(cycles);
                let t = &mut self.tiers[tier.index()];
                t.retires += 1;
                t.cycles += cycles;
                // Three touches total: the address row (count, cycles,
                // opcode and pair base share a load), the tier row above,
                // and one pair bump. Region and opcode attribution are
                // derived from the rows at report time, not per retire.
                if let Some(row) = self.rows.get_mut(addr as usize) {
                    row.retires += 1;
                    row.cycles += cycles;
                    let (op, base) = (row.opcode, row.pair_base);
                    let cell = &mut self.pairs[self.prev_base as usize + op as usize];
                    *cell = cell.saturating_add(1);
                    self.prev_base = base;
                }
            }
            Event::DtbFill { occupancy, .. } => self.on_fill(occupancy),
            Event::Evict { victim, .. } => self.on_evict(victim),
            _ => {}
        }
    }
}

impl CounterPlane {
    // The timeline arms live out of line so the inlined `emit` body at
    // every machine emit site stays small enough to actually inline —
    // fills and evictions happen at miss frequency, not retire frequency.
    #[cold]
    fn on_fill(&mut self, occupancy: u32) {
        self.occupancy.push(self.retired(), occupancy);
    }

    #[cold]
    fn on_evict(&mut self, victim: u32) {
        self.evicted += 1;
        self.evictions.push(self.retired(), victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;
    use uhm::{DtbConfig, Machine, Mode};

    fn plane_for(src: &str, mode: &Mode) -> (CounterPlane, uhm::Report) {
        let program = dir::compiler::compile(&hlr::compile(src).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut plane = CounterPlane::new(&program);
        let report = machine.run_with(mode, &mut plane).unwrap();
        (plane, report)
    }

    const LOOP: &str = "proc main() begin
        int i; int s := 0;
        for i := 0 to 99 do s := s + i;
        write s;
    end";

    #[test]
    fn attribution_sums_match_the_run_exactly() {
        let (plane, report) = plane_for(LOOP, &Mode::Dtb(DtbConfig::with_capacity(16)));
        // The retire invariant: counts and cycle deltas partition the
        // run's totals exactly, along every attribution axis.
        assert_eq!(plane.retired(), report.metrics.instructions);
        assert_eq!(plane.cycles(), report.metrics.cycles.total());
        let region_sum: u64 = plane.by_region().iter().map(|(_, a)| a.cycles).sum();
        let opcode_sum: u64 = plane.by_opcode().iter().map(|a| a.cycles).sum();
        let tier_sum: u64 = plane.by_tier().iter().map(|a| a.cycles).sum();
        assert_eq!(region_sum, plane.cycles());
        assert_eq!(opcode_sum, plane.cycles());
        assert_eq!(tier_sum, plane.cycles());
        let tier_retires: u64 = plane.by_tier().iter().map(|a| a.retires).sum();
        assert_eq!(tier_retires, plane.retired());
    }

    #[test]
    fn tiers_split_between_interp_and_psder_in_dtb_mode() {
        let (plane, _) = plane_for(LOOP, &Mode::Dtb(DtbConfig::with_capacity(16)));
        let tiers = plane.by_tier();
        // First visits interpret (miss path counts as dispatch after
        // fill), loop re-executions dispatch from the DTB.
        assert!(
            tiers[Tier::Psder.index()].retires > 0,
            "no psder dispatches"
        );
        // Nothing ran trusted: the engine was not verified.
        assert_eq!(tiers[Tier::Trusted.index()].retires, 0);
    }

    #[test]
    fn interpreter_mode_is_all_interp_tier() {
        let (plane, report) = plane_for(LOOP, &Mode::Interpreter);
        let tiers = plane.by_tier();
        assert_eq!(
            tiers[Tier::Interp.index()].retires,
            report.metrics.instructions
        );
        assert_eq!(tiers[Tier::Psder.index()].retires, 0);
        assert_eq!(tiers[Tier::Trusted.index()].retires, 0);
    }

    #[test]
    fn pairs_count_adjacent_retires() {
        let (plane, report) = plane_for(LOOP, &Mode::Interpreter);
        let total_pairs: u64 = (0..OPCODE_COUNT)
            .flat_map(|a| (0..OPCODE_COUNT).map(move |b| (a, b)))
            .map(|(a, b)| plane.pair(a, b))
            .sum();
        // N retires produce exactly N-1 adjacent pairs.
        assert_eq!(total_pairs, report.metrics.instructions - 1);
        let hottest = plane.hottest_pairs(4);
        assert!(!hottest.is_empty());
        assert!(hottest.windows(2).all(|w| w[0].2 >= w[1].2));
    }

    #[test]
    fn profile_matches_the_recorded_trace() {
        // The counter plane's incremental profile must equal the one
        // built from a full recorded address trace.
        let program = dir::compiler::compile(&hlr::compile(LOOP).unwrap());
        let mut machine = Machine::new(&program, SchemeKind::Packed);
        machine.set_trace(true);
        let mut plane = CounterPlane::new(&program);
        let report = machine.run_with(&Mode::Interpreter, &mut plane).unwrap();
        let from_trace = Profile::from_trace(&program, report.metrics.trace.as_ref().unwrap());
        assert_eq!(plane.profile(), from_trace);
    }

    #[test]
    fn dtb_timelines_record_fills_and_evictions() {
        let (plane, report) = plane_for(LOOP, &Mode::Dtb(DtbConfig::with_capacity(4)));
        let dtb = report.metrics.dtb.unwrap();
        assert!(plane.occupancy.seen > 0, "no fills observed");
        assert_eq!(plane.evictions(), dtb.evictions);
        let j = plane.to_json();
        let tl = j.get("dtb_timeline").unwrap();
        let occ = tl.get("occupancy").unwrap();
        assert!(occ.get("points").and_then(Json::as_arr).is_some());
        // Occupancy never exceeds capacity.
        for p in occ.get("points").and_then(Json::as_arr).unwrap() {
            let r = p.get("resident").and_then(Json::as_i64).unwrap();
            assert!((0..=4).contains(&r), "occupancy {r} out of range");
        }
    }

    #[test]
    fn timeline_compaction_is_bounded_and_deterministic() {
        let mut a = Timeline::new();
        let mut b = Timeline::new();
        for i in 0..100_000u64 {
            a.push(i, (i % 7) as u32);
            b.push(i, (i % 7) as u32);
        }
        assert!(a.samples.len() < TIMELINE_CAP);
        assert_eq!(a.seen, 100_000);
        assert!(a.stride > 1);
        assert_eq!(a.samples, b.samples, "compaction must be deterministic");
        // Retained ordinals are exactly the multiples of the final stride.
        for (at, _) in &a.samples {
            assert_eq!(at % a.stride, 0);
        }
    }

    #[test]
    fn json_payload_has_all_sections() {
        let (plane, _) = plane_for(LOOP, &Mode::Dtb(DtbConfig::with_capacity(16)));
        let j = plane.to_json();
        for key in [
            "regions",
            "opcodes",
            "tiers",
            "pairs",
            "hottest",
            "coverage",
            "dtb_timeline",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        // Coverage is monotone in k.
        let cov = j.get("coverage").and_then(Json::as_arr).unwrap();
        let values: Vec<f64> = cov
            .iter()
            .map(|c| c.get("coverage").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(values.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!((values.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
