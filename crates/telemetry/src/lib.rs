//! # telemetry — observability primitives for the UHM reproduction
//!
//! Rau's argument lives on *dynamic* behavior — working-set skew, DTB hit
//! rates, the decode/generate/execute split — yet aggregates alone cannot
//! show phase transitions or explain a surprising hit ratio. This crate
//! supplies the three observability layers the rest of the workspace wires
//! through the machines:
//!
//! * [`event`] — typed trace events ([`Event`]) with a miss taxonomy
//!   ([`MissKind`]: cold / capacity / conflict);
//! * [`sink`] — the [`TraceSink`] trait with a zero-cost [`NullSink`]
//!   (an associated `ENABLED` flag lets monomorphized machines compile
//!   tracing out entirely), a bounded [`RingSink`] that keeps the most
//!   recent events plus total per-kind counts, and a [`JsonlSink`] that
//!   streams events as JSON lines;
//! * [`json`] + [`report`] — a dependency-free JSON value model
//!   (serializer *and* parser, so reports round-trip) and the versioned
//!   [`RunReport`] schema every `--json` surface emits, making
//!   `BENCH_*.json` trajectories diffable across PRs.
//!
//! The crate is a leaf: it depends on nothing in the workspace (or
//! outside it), so every layer from `uhm` down to the bench binaries can
//! use it without cycles.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod report;
pub mod sink;
pub mod stats;

pub use event::{Event, EventCounts, FaultKind, MissKind, Tier};
pub use json::Json;
pub use report::{
    AnalyzeReport, PoolReport, ProfileReport, ResilienceReport, RunReport, ServiceReport,
    ANALYZE_SCHEMA_VERSION, POOL_SCHEMA_VERSION, PROFILE_SCHEMA_VERSION, RESILIENCE_SCHEMA_VERSION,
    SCHEMA_VERSION, SERVICE_SCHEMA_VERSION,
};
pub use sink::{JsonlSink, NullSink, RingSink, TeeSink, TraceSink};
pub use stats::{percentile_sorted, LogHistogram, Percentiles};
