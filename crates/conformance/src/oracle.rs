//! The cross-engine differential oracle.
//!
//! One conformance *case* takes a RAUL AST and pushes it through every
//! execution level and machine configuration the workspace provides:
//!
//! * HLR reference evaluator (the semantic ground truth),
//! * DIR executor, on both the base and the fused program,
//! * PSDER interpreter,
//! * the [`Machine`] in interpreter, DTB and I-cache modes,
//! * tree vs table decoders, verified-image trusted mode, a profiling
//!   counter plane and a miss-classifying trace sink,
//! * per-site check-elision (`sited`) and its *soundness auditor*: every
//!   check the dataflow pass discharged is run once elided and once with
//!   the guard still evaluated — a guard that would have fired refutes
//!   the static proof and is reported as a divergence.
//!
//! Outputs (and traps) must be bit-identical everywhere. On top of
//! that, the oracle asserts the *metric identities* the planes promise:
//! trusted-mode metrics equal unverified metrics, decoder choice never
//! changes modeled metrics, per-site elision never changes outputs or
//! modeled metrics, and observation (profiling, classification) never
//! changes them either. Any violation is reported as a
//! [`Divergence`] rather than a panic, so the sweep can hand the case
//! to the shrinker.

use dir::encode::{DecodeMode, SchemeKind};
use dir::exec::Trap;
use hlr::ast;
use profile::CounterPlane;
use telemetry::{Event, TraceSink};
use uhm::{DtbConfig, Machine, Metrics, Mode};

use crate::coverage::Coverage;

/// Which encoding/geometry corner a case runs under. Semantics must not
/// depend on any of this — that is precisely what the oracle checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseConfig {
    /// Encoding scheme for the machine's level-2 image.
    pub scheme: SchemeKind,
    /// DTB capacity (translations) for the DTB-mode runs.
    pub dtb_capacity: usize,
}

impl Default for CaseConfig {
    fn default() -> CaseConfig {
        CaseConfig {
            scheme: SchemeKind::PairHuffman,
            dtb_capacity: 64,
        }
    }
}

/// A deliberate, seeded fault for negative-testing the oracle and the
/// shrinker. Production sweeps always use [`Injection::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Injection {
    /// Honest run: no fault injected.
    #[default]
    None,
    /// Corrupts the DIR executor's output whenever the compiled program
    /// contains a `Mod` instruction — a stand-in for a real miscompile
    /// that only fires on one opcode, which is exactly the shape the
    /// shrinker must reduce to a minimal `%` expression.
    FlipOnMod,
}

/// One observed disagreement between two engines (or between a plane's
/// metrics and the identity it promises).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The engine or plane that disagreed.
    pub engine: &'static str,
    /// What it was compared against.
    pub against: &'static str,
    /// Human-readable detail of the mismatch.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} vs {}: {}", self.engine, self.against, self.detail)
    }
}

/// The outcome of a full oracle case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Everything that disagreed; empty means the case conformed.
    pub divergences: Vec<Divergence>,
    /// What the case exercised.
    pub coverage: Coverage,
    /// The reference verdict: output on success, trap otherwise.
    pub reference: Result<Vec<i64>, Trap>,
}

impl CaseReport {
    /// Whether every engine and plane agreed.
    pub fn conforms(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// A trace sink that observes nothing but requests miss classification,
/// turning on the machine's shadow three-C classifier.
struct ClassifySink;

impl TraceSink for ClassifySink {
    const CLASSIFY_MISSES: bool = true;

    #[inline(always)]
    fn emit(&mut self, _event: Event) {}
}

/// Maps a trap to its coverage class label.
pub fn trap_class(trap: &Trap) -> &'static str {
    match trap {
        Trap::DivByZero => "div_by_zero",
        Trap::IndexOutOfBounds { .. } => "index_out_of_bounds",
        Trap::StepLimit => "step_limit",
        Trap::DepthLimit => "depth_limit",
        _ => "other",
    }
}

fn describe(r: &Result<Vec<i64>, Trap>) -> String {
    match r {
        Ok(out) if out.len() > 8 => {
            format!("output {:?}.. ({} values)", &out[..8], out.len())
        }
        Ok(out) => format!("output {out:?}"),
        Err(trap) => format!("trap {trap}"),
    }
}

/// Strips the observation-dependent miss-classification fields so a
/// classified run's metrics can be compared against an unclassified one.
fn unclassified(metrics: &Metrics) -> Metrics {
    let mut m = metrics.clone();
    if let Some(dtb) = &mut m.dtb {
        dtb.cold_misses = 0;
        dtb.capacity_misses = 0;
        dtb.conflict_misses = 0;
    }
    if let Some(dtb2) = &mut m.dtb2 {
        dtb2.cold_misses = 0;
        dtb2.capacity_misses = 0;
        dtb2.conflict_misses = 0;
    }
    m
}

/// Runs one full conformance case.
///
/// # Errors
///
/// Returns `Err` when the AST does not pass semantic analysis or the
/// compiled program fails validation — i.e. the input is not a valid
/// case at all. The shrinker relies on this: candidate reductions that
/// break the program are rejected here, never misread as divergences.
pub fn run_case(
    program: &ast::Program,
    cfg: &CaseConfig,
    inject: Injection,
) -> Result<CaseReport, String> {
    let hir = hlr::sema::analyze(program).map_err(|e| format!("sema: {e:?}"))?;
    let compiled = dir::compiler::compile(&hir);
    compiled
        .validate()
        .map_err(|e| format!("validate: {e:?}"))?;

    let mut coverage = Coverage::new();
    coverage.programs = 1;
    coverage.record_static(&compiled);
    coverage.schemes.insert(cfg.scheme.label());
    coverage.tiers.insert("interp");

    let mut divergences: Vec<Divergence> = Vec::new();
    let reference: Result<Vec<i64>, Trap> = hlr::eval::run(&hir).map_err(Trap::from);
    if let Err(trap) = &reference {
        coverage.trap_classes.insert(trap_class(trap));
    }
    fn check(
        divergences: &mut Vec<Divergence>,
        reference: &Result<Vec<i64>, Trap>,
        engine: &'static str,
        got: &Result<Vec<i64>, Trap>,
    ) {
        if got != reference {
            divergences.push(Divergence {
                engine,
                against: "hlr-eval",
                detail: format!("{} != {}", describe(got), describe(reference)),
            });
        }
    }

    // ---- Level engines: DIR, fused DIR, PSDER ------------------------
    let has_mod = compiled
        .code
        .iter()
        .any(|i| matches!(i, dir::Inst::Bin(dir::AluOp::Mod)));
    let dir_run = dir::exec::run_with(&compiled, dir::exec::Limits::default(), false);
    let dir_result: Result<Vec<i64>, Trap> = match &dir_run {
        Ok((out, stats)) => {
            coverage.record_dynamic(&stats.opcode_counts);
            coverage.dyn_instructions = stats.instructions;
            let mut out = out.clone();
            if inject == Injection::FlipOnMod && has_mod {
                out.push(i64::from_le_bytes(*b"INJECTD\0"));
            }
            Ok(out)
        }
        Err(trap) => Err(trap.clone()),
    };
    check(&mut divergences, &reference, "dir-exec", &dir_result);

    let (fused, _) = dir::fuse::fuse(&compiled);
    check(
        &mut divergences,
        &reference,
        "dir-exec-fused",
        &dir::exec::run(&fused),
    );
    check(
        &mut divergences,
        &reference,
        "psder-interp",
        &psder::interp::run(&compiled),
    );

    // ---- Machine modes: interpreter, DTB, I-cache --------------------
    let dtb_mode = Mode::Dtb(DtbConfig::with_capacity(cfg.dtb_capacity));
    let mut machine = Machine::new(&compiled, cfg.scheme);
    machine.set_decoder(DecodeMode::Table);
    let as_result = |r: &Result<uhm::Report, Trap>| -> Result<Vec<i64>, Trap> {
        match r {
            Ok(report) => Ok(report.output.clone()),
            Err(trap) => Err(trap.clone()),
        }
    };

    let interp_run = machine.run(&Mode::Interpreter);
    check(
        &mut divergences,
        &reference,
        "machine-interp",
        &as_result(&interp_run),
    );

    let dtb_run = machine.run(&dtb_mode);
    check(
        &mut divergences,
        &reference,
        "machine-dtb",
        &as_result(&dtb_run),
    );
    if let Ok(report) = &dtb_run {
        if let Some(stats) = &report.metrics.dtb {
            if stats.hits > 0 {
                coverage.tiers.insert("psder");
            }
        }
    }

    let icache_mode = Mode::ICache {
        geometry: memsim::Geometry::new(8, 4),
    };
    check(
        &mut divergences,
        &reference,
        "machine-icache",
        &as_result(&machine.run(&icache_mode)),
    );

    // ---- Decoder identity: tree and table runs must match in full ----
    let mut tree_machine = Machine::new(&compiled, cfg.scheme);
    tree_machine.set_decoder(DecodeMode::Tree);
    let tree_run = tree_machine.run(&dtb_mode);
    check(
        &mut divergences,
        &reference,
        "machine-dtb-tree",
        &as_result(&tree_run),
    );
    if let (Ok(a), Ok(b)) = (&dtb_run, &tree_run) {
        if a.metrics != b.metrics {
            divergences.push(Divergence {
                engine: "machine-dtb-tree",
                against: "machine-dtb",
                detail: "decoder choice changed modeled metrics".into(),
            });
        }
    }

    // ---- Trusted mode: verified image, identical metrics -------------
    let image = cfg.scheme.encode(&compiled);
    match analyze::verify(&compiled, image) {
        Ok(verified) => {
            let trusted = Machine::load(&verified);
            let trusted_run = trusted.run(&dtb_mode);
            check(
                &mut divergences,
                &reference,
                "machine-trusted",
                &as_result(&trusted_run),
            );
            if let (Ok(a), Ok(b)) = (&dtb_run, &trusted_run) {
                coverage.tiers.insert("trusted");
                if a.metrics != b.metrics {
                    divergences.push(Divergence {
                        engine: "machine-trusted",
                        against: "machine-dtb",
                        detail: "verification changed modeled metrics".into(),
                    });
                }
            }

            // ---- Per-site elision: the dataflow soundness auditor ----
            // Every check the dataflow pass discharged is first elided
            // (the run must stay bit-identical to the checked run,
            // outputs AND modeled stats) and then audited: the guard is
            // still evaluated at each elided site, and a guard that
            // would have fired refutes the static proof.
            let facts = verified.facts();
            let sited_dir =
                dir::exec::run_sited_with(&compiled, facts, dir::exec::Limits::default(), false);
            if sited_dir != dir_run {
                divergences.push(Divergence {
                    engine: "dir-sited",
                    against: "dir-exec",
                    detail: "per-site elision changed output or stats".into(),
                });
            }
            let (audit_dir, audit) =
                dir::exec::run_audit_with(&compiled, facts, dir::exec::Limits::default(), false);
            if !audit.is_sound() {
                divergences.push(Divergence {
                    engine: "dir-audit",
                    against: "analyze-dataflow",
                    detail: format!(
                        "elided guards fired: {} div, {} idx at sites {:?}",
                        audit.div_violations, audit.idx_violations, audit.sites
                    ),
                });
            }
            if audit_dir != dir_run {
                divergences.push(Divergence {
                    engine: "dir-audit",
                    against: "dir-exec",
                    detail: "audit mode changed output or stats".into(),
                });
            }
            let sited_psder =
                psder::interp::run_sited_with(&compiled, facts, psder::interp::Limits::default());
            check(&mut divergences, &reference, "psder-sited", &sited_psder);
            let (audit_psder, fired) =
                psder::interp::run_audit_with(&compiled, facts, psder::interp::Limits::default());
            if fired != 0 {
                divergences.push(Divergence {
                    engine: "psder-audit",
                    against: "analyze-dataflow",
                    detail: format!("{fired} elided psder guards fired"),
                });
            }
            check(&mut divergences, &reference, "psder-audit", &audit_psder);
            if !facts.is_empty() {
                coverage.tiers.insert("sited");
                let mut sited_machine = Machine::new(&compiled, cfg.scheme);
                sited_machine
                    .set_decoder(DecodeMode::Table)
                    .set_site_facts(Some(std::sync::Arc::new(facts.clone())));
                let sited_run = sited_machine.run(&dtb_mode);
                check(
                    &mut divergences,
                    &reference,
                    "machine-sited",
                    &as_result(&sited_run),
                );
                if let (Ok(a), Ok(b)) = (&dtb_run, &sited_run) {
                    if a.metrics != b.metrics {
                        divergences.push(Divergence {
                            engine: "machine-sited",
                            against: "machine-dtb",
                            detail: "per-site elision changed modeled metrics".into(),
                        });
                    }
                }
            }
        }
        Err(report) => divergences.push(Divergence {
            engine: "analyze-verify",
            against: "dir-validate",
            detail: format!("verifier rejected a valid program: {report:?}"),
        }),
    }

    // ---- Observation identity: profiling must not perturb ------------
    let mut plane = CounterPlane::new(&compiled);
    let profiled_run = machine.run_with(&dtb_mode, &mut plane);
    check(
        &mut divergences,
        &reference,
        "machine-profiled",
        &as_result(&profiled_run),
    );
    if let (Ok(a), Ok(b)) = (&dtb_run, &profiled_run) {
        if a.metrics != b.metrics {
            divergences.push(Divergence {
                engine: "machine-profiled",
                against: "machine-dtb",
                detail: "profiling changed modeled metrics".into(),
            });
        }
        if plane.retired() != b.metrics.instructions || plane.cycles() != b.metrics.cycles.total() {
            divergences.push(Divergence {
                engine: "counter-plane",
                against: "machine-metrics",
                detail: format!(
                    "plane saw {} retires / {} cycles, metrics say {} / {}",
                    plane.retired(),
                    plane.cycles(),
                    b.metrics.instructions,
                    b.metrics.cycles.total()
                ),
            });
        }
    }

    // ---- Classification identity: the shadow classifier only fills
    // the taxonomy, never changes behaviour or the base metrics --------
    let classified_run = machine.run_with(&dtb_mode, &mut ClassifySink);
    check(
        &mut divergences,
        &reference,
        "machine-classified",
        &as_result(&classified_run),
    );
    if let (Ok(a), Ok(b)) = (&dtb_run, &classified_run) {
        if a.metrics != unclassified(&b.metrics) {
            divergences.push(Divergence {
                engine: "machine-classified",
                against: "machine-dtb",
                detail: "miss classification changed base metrics".into(),
            });
        }
        if let Some(stats) = &b.metrics.dtb {
            coverage.record_miss_classes(stats);
            let classified = stats.cold_misses + stats.capacity_misses + stats.conflict_misses;
            if classified != stats.misses {
                divergences.push(Divergence {
                    engine: "miss-classifier",
                    against: "dtb-stats",
                    detail: format!("classified {} of {} misses", classified, stats.misses),
                });
            }
        }
    }

    // ---- Limit conformance: step/depth budgets trap identically ------
    if let Ok((_, stats)) = &dir_run {
        if stats.instructions >= 2 {
            let budget = dir::exec::Limits {
                max_steps: stats.instructions / 2,
                ..dir::exec::Limits::default()
            };
            let dir_cut = dir::exec::run_with(&compiled, budget, false).map(|(out, _)| out);
            let psder_cut = psder::interp::run_with(
                &compiled,
                psder::interp::Limits {
                    max_steps: budget.max_steps,
                    max_depth: budget.max_depth,
                },
            );
            if dir_cut != psder_cut {
                divergences.push(Divergence {
                    engine: "psder-step-limit",
                    against: "dir-step-limit",
                    detail: format!("{} != {}", describe(&psder_cut), describe(&dir_cut)),
                });
            }
            if let Err(trap) = &dir_cut {
                coverage.trap_classes.insert(trap_class(trap));
            }
        }
    }

    coverage.cases = 1;
    Ok(CaseReport {
        divergences,
        coverage,
        reference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generated(seed: u64) -> ast::Program {
        hlr::generate::program(seed, &hlr::generate::Config::default())
    }

    #[test]
    fn honest_cases_conform() {
        for seed in 0..12 {
            let ast = generated(seed);
            let report = run_case(&ast, &CaseConfig::default(), Injection::None)
                .expect("generated programs are valid cases");
            assert!(report.conforms(), "seed {seed}: {:?}", report.divergences);
            assert!(report.coverage.tiers.contains("interp"));
            assert!(!report.coverage.static_opcodes.is_empty());
        }
    }

    #[test]
    fn trapping_cases_conform_on_the_trap() {
        let cfg = hlr::generate::Config {
            trapping: true,
            ..hlr::generate::Config::default()
        };
        let mut saw_trap = false;
        for seed in 0..40 {
            let ast = hlr::generate::program(seed, &cfg);
            let report =
                run_case(&ast, &CaseConfig::default(), Injection::None).expect("valid case");
            assert!(report.conforms(), "seed {seed}: {:?}", report.divergences);
            saw_trap |= report.reference.is_err();
        }
        assert!(saw_trap, "trapping config never trapped in 40 seeds");
    }

    #[test]
    fn injection_is_detected_when_mod_present() {
        let source = "proc main() begin write 7 % 3; end";
        let ast = hlr::parser::parse(source).expect("parses");
        let report =
            run_case(&ast, &CaseConfig::default(), Injection::FlipOnMod).expect("valid case");
        assert!(!report.conforms(), "injection must surface as a divergence");
        assert!(report.divergences.iter().any(|d| d.engine == "dir-exec"));
    }

    #[test]
    fn injection_is_silent_without_mod() {
        let source = "proc main() begin write 7 + 3; end";
        let ast = hlr::parser::parse(source).expect("parses");
        let report =
            run_case(&ast, &CaseConfig::default(), Injection::FlipOnMod).expect("valid case");
        assert!(report.conforms(), "{:?}", report.divergences);
    }

    #[test]
    fn invalid_programs_are_rejected_not_diverged() {
        let source = "proc main() begin write undeclared; end";
        let ast = hlr::parser::parse(source).expect("parses");
        assert!(run_case(&ast, &CaseConfig::default(), Injection::None).is_err());
    }
}
