//! Flamegraph export: collapsed call stacks from the retire stream.
//!
//! [`FlameBuilder`] folds the reconstructed procedure call stack (see
//! [`crate::map::CallStack`]) over a run, attributing each
//! retire's modeled cycles to the full stack it executed under. The
//! result renders in the standard *collapsed stack* format consumed by
//! `flamegraph.pl`, `inferno` and speedscope: one line per distinct
//! stack, frames joined by `;` root-first, followed by the sample weight
//! (here: modeled cycles).

use std::collections::BTreeMap;

use dir::program::Program;
use telemetry::{Event, TraceSink};

use crate::map::{CallStack, ProcMap};

/// A [`TraceSink`] accumulating collapsed stacks.
#[derive(Debug)]
pub struct FlameBuilder {
    map: ProcMap,
    stack: CallStack,
    // BTreeMap keys are the stacks themselves, so iteration (and thus
    // the collapsed output) is deterministic without a final sort.
    weights: BTreeMap<Vec<usize>, u64>,
    total_cycles: u64,
}

impl FlameBuilder {
    /// Creates a builder for one program.
    pub fn new(program: &Program) -> FlameBuilder {
        FlameBuilder {
            map: ProcMap::new(program),
            stack: CallStack::new(),
            weights: BTreeMap::new(),
            total_cycles: 0,
        }
    }

    /// Total modeled cycles attributed across all stacks.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Number of distinct stacks observed.
    pub fn stacks(&self) -> usize {
        self.weights.len()
    }

    /// Renders the collapsed-stack text: one `frame;frame;... weight`
    /// line per distinct stack, in deterministic (lexicographic stack)
    /// order. Feed directly to `flamegraph.pl` or paste into speedscope.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, weight) in &self.weights {
            let mut first = true;
            for &region in stack {
                if !first {
                    out.push(';');
                }
                out.push_str(self.map.name(region));
                first = false;
            }
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for FlameBuilder {
    // Observation only — never enable the shadow miss classifier.
    const CLASSIFY_MISSES: bool = false;

    fn emit(&mut self, event: Event) {
        if let Event::Retire { addr, cycles, .. } = event {
            self.stack.step(self.map.region_of(addr));
            let cycles = u64::from(cycles);
            self.total_cycles += cycles;
            *self
                .weights
                .entry(self.stack.frames().to_vec())
                .or_insert(0) += cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;
    use uhm::{Machine, Mode};

    const CALLS: &str = "proc leaf(int n) -> int begin return n + 1; end
        proc mid(int n) -> int begin return leaf(n) * 2; end
        proc main() begin
            int i; int s := 0;
            for i := 0 to 9 do s := s + mid(i);
            write s;
        end";

    fn flame_of(src: &str) -> (FlameBuilder, uhm::Report) {
        let program = dir::compiler::compile(&hlr::compile(src).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut flame = FlameBuilder::new(&program);
        let report = machine.run_with(&Mode::Interpreter, &mut flame).unwrap();
        (flame, report)
    }

    #[test]
    fn weights_partition_the_cycle_total() {
        let (flame, report) = flame_of(CALLS);
        assert_eq!(flame.total_cycles(), report.metrics.cycles.total());
        let sum: u64 = flame.weights.values().sum();
        assert_eq!(sum, flame.total_cycles());
    }

    #[test]
    fn collapsed_lines_nest_root_first() {
        let (flame, _) = flame_of(CALLS);
        let text = flame.collapsed();
        // The deep chain appears with the prelude as root.
        assert!(
            text.lines()
                .any(|l| l.starts_with("<prelude>;main;mid;leaf ")),
            "missing nested stack in:\n{text}"
        );
        // Every line is `frames weight` with a positive integer weight.
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            assert!(weight.parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn output_is_deterministic() {
        let (a, _) = flame_of(CALLS);
        let (b, _) = flame_of(CALLS);
        assert_eq!(a.collapsed(), b.collapsed());
        assert!(a.stacks() >= 3, "expected at least 3 distinct stacks");
    }
}
