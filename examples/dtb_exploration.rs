//! DTB exploration: watch the INTERP flow of Figure 4 at work — lookup,
//! miss, dynamic translation, replacement — while sweeping buffer capacity
//! on a recursive workload.
//!
//! Run with `cargo run --example dtb_exploration --release`.

use dir::encode::SchemeKind;
use uhm::{DtbConfig, Machine, Mode};

fn main() {
    let sample = hlr::programs::QUEENS;
    println!("Workload: {} — {}\n", sample.name, sample.description);
    let hir = sample.compile().expect("sample compiles");
    let program = dir::compiler::compile(&hir);
    let machine = Machine::new(&program, SchemeKind::PairHuffman);

    let interp = machine.run(&Mode::Interpreter).expect("trap-free");
    println!(
        "Static program: {} DIR instructions; dynamic: {} executed",
        program.len(),
        interp.metrics.instructions
    );
    println!(
        "Conventional interpreter: {:.2} cycles/instruction (decodes all {} of them)\n",
        interp.metrics.time_per_instruction(),
        interp.metrics.decoded
    );

    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "entries", "h_D", "hits", "misses", "evictions", "decoded", "T2"
    );
    for cap in [4usize, 8, 16, 32, 64, 128, 256] {
        let report = machine
            .run(&Mode::Dtb(DtbConfig::with_capacity(cap)))
            .expect("trap-free");
        assert_eq!(report.output, interp.output, "all modes agree");
        let dtb = report.metrics.dtb.expect("dtb mode");
        println!(
            "{:>9} {:>9.3} {:>9} {:>9} {:>10} {:>10} {:>10.2}",
            cap,
            dtb.hit_ratio(),
            dtb.hits,
            dtb.misses,
            dtb.evictions,
            report.metrics.decoded,
            report.metrics.time_per_instruction()
        );
    }
    println!("\nEach miss walks Figure 4: the INTERP address misses the associative");
    println!("array, the dynamic translation routine fetches and decodes the DIR");
    println!("instruction, generates its PSDER form, stores it at the way chosen by");
    println!("the LRU replacement array, and control enters the fresh translation.");
    println!("As capacity covers the working set, decodes collapse from one-per-");
    println!("execution to one-per-(re)entry — the entire point of the paper.");
}
