//! **E6 — the §3.2 compaction claim:** Wilner reports 25–75% memory
//! reduction from encoding; Hehner claims up to 75%. This experiment
//! measures the reduction of every encoding scheme against the
//! byte-aligned baseline on every workload, at both semantic tiers.
//!
//! Run with `cargo run -p uhm-bench --bin encoding_report --release`.

use dir::encode::SchemeKind;
use dir::stats::{ImageSummary, StaticStats};
use uhm_bench::workloads;

fn main() {
    println!("Encoding compaction versus the byte-aligned baseline (program bits)\n");
    println!(
        "{:>14} {:>6} {:>10} | {:>16} {:>16} {:>16} {:>16} {:>16}",
        "workload", "tier", "byte bits", "packed", "contextual", "huffman", "pair", "valuehuff"
    );
    println!("{}", "-".repeat(121));
    let mut worst: f64 = 1.0;
    let mut best: f64 = 0.0;
    for w in workloads() {
        for (tier, prog) in [("stack", &w.base), ("fused", &w.fused)] {
            let baseline = SchemeKind::ByteAligned.encode(prog).program_bits();
            let mut cells = Vec::new();
            for scheme in [
                SchemeKind::Packed,
                SchemeKind::Contextual,
                SchemeKind::Huffman,
                SchemeKind::PairHuffman,
                SchemeKind::ValueHuffman,
            ] {
                let s = ImageSummary::of(&scheme.encode(prog));
                let red = s.reduction_vs(baseline);
                worst = worst.min(red);
                best = best.max(red);
                cells.push(format!("{:>7} ({:>4.0}%)", s.program_bits, red * 100.0));
            }
            println!(
                "{:>14} {:>6} {:>10} | {}",
                w.name,
                tier,
                baseline,
                cells.join(" ")
            );
        }
    }
    println!(
        "\nReduction range across all points: {:.0}%..{:.0}% (Wilner reported 25-75%).",
        worst * 100.0,
        best * 100.0
    );

    println!("\nStatic opcode statistics (entropy justifies the frequency coding):\n");
    println!(
        "{:>14} {:>8} {:>10} {:>24}",
        "workload", "instrs", "H(opcode)", "top-3 opcodes"
    );
    for w in workloads() {
        let st = StaticStats::collect(&w.base);
        let top: Vec<String> = st
            .top_opcodes(3)
            .into_iter()
            .map(|(op, n)| format!("{op:?}:{n}"))
            .collect();
        println!(
            "{:>14} {:>8} {:>10.2} {:>24}",
            w.name,
            st.instructions,
            st.opcode_entropy,
            top.join(" ")
        );
    }
}
