//! The dynamic translation buffer (§5).
//!
//! Four arrays, exactly as Figure 2 draws them:
//!
//! * the **associative tag array** holds the DIR address of each resident
//!   translation;
//! * the **address array** holds the buffer-array location of each
//!   translation (kept explicit, which "makes it possible to change the
//!   unit of allocation in the buffer");
//! * the **replacement array** tracks recency per set (true LRU);
//! * the **buffer array** holds the PSDER short-word sequences, in fixed
//!   allocation units, optionally extended by linked blocks from a
//!   secondary overflow area (§5.1's "variable allocation with fixed size
//!   increments").
//!
//! The DIR address is hashed (modulo) to a set; the set's ways are searched
//! associatively; the least-recently-used way is the replacement victim.

use memsim::Geometry;
use psder::{ShortInstr, MAX_TRANSLATION_WORDS};
use std::collections::HashSet;
use telemetry::MissKind;

/// Replacement policy of the associative address array.
///
/// §5.2 prescribes true LRU via the replacement array; FIFO and random are
/// provided for the replacement ablation, which quantifies what the LRU
/// recency tracking actually buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Replace the least recently *used* way (the paper's choice).
    Lru,
    /// Replace the least recently *filled* way (no recency refresh on hit).
    Fifo,
    /// Replace a uniformly random way (deterministic xorshift stream).
    Random {
        /// Seed of the xorshift generator.
        seed: u64,
    },
}

/// Space-allocation policy for translations (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// One fixed unit per translation; the unit must fit the largest
    /// translation, wasting slack on short ones.
    Fixed,
    /// A primary unit plus linked fixed-size blocks from an overflow area
    /// holding this many blocks.
    Overflow {
        /// Number of overflow blocks available.
        blocks: usize,
    },
}

/// Configuration of a DTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtbConfig {
    /// Sets × ways of the associative address array.
    pub geometry: Geometry,
    /// Short words per allocation unit.
    pub unit_words: usize,
    /// Allocation policy.
    pub allocation: Allocation,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl DtbConfig {
    /// A conventional configuration: degree-4 set associativity (§5.2's
    /// recommended compromise), units sized for the largest translation.
    pub fn with_capacity(entries: usize) -> DtbConfig {
        let ways = 4.min(entries.max(1));
        let sets = (entries / ways).max(1);
        DtbConfig {
            geometry: Geometry::new(sets, ways),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the unit size is zero or when a
    /// fixed-allocation unit is smaller than the largest translation
    /// (such a DTB could never hold some instructions).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.unit_words == 0 {
            return Err(ConfigError::ZeroUnitWords);
        }
        if self.allocation == Allocation::Fixed && self.unit_words < MAX_TRANSLATION_WORDS {
            return Err(ConfigError::UnitTooSmall {
                unit_words: self.unit_words,
                required: MAX_TRANSLATION_WORDS,
            });
        }
        Ok(())
    }

    /// Total buffer-array capacity in short words (primary units plus
    /// overflow area) — the DTB's level-1 footprint.
    pub fn buffer_words(&self) -> usize {
        let primary = self.geometry.capacity() * self.unit_words;
        match self.allocation {
            Allocation::Fixed => primary,
            Allocation::Overflow { blocks } => primary + blocks * self.unit_words,
        }
    }
}

/// An invalid [`DtbConfig`] geometry, reported before any machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `unit_words` was zero: the buffer array would hold nothing.
    ZeroUnitWords,
    /// A fixed allocation unit smaller than the largest translation: some
    /// instructions could never be cached.
    UnitTooSmall {
        /// Configured unit size in short words.
        unit_words: usize,
        /// Words the largest translation needs.
        required: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroUnitWords => write!(f, "unit_words must be positive"),
            ConfigError::UnitTooSmall {
                unit_words,
                required,
            } => write!(
                f,
                "fixed allocation units of {unit_words} words cannot hold \
                 the largest translation ({required} words)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// DTB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DtbStats {
    /// Lookups that found a resident translation.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fills that displaced a resident translation.
    pub evictions: u64,
    /// Translations that could not be stored (overflow area exhausted) and
    /// were executed without caching.
    pub uncached: u64,
    /// Peak overflow blocks in use.
    pub overflow_peak: usize,
    /// Cold (compulsory) misses — only counted with classification on.
    pub cold_misses: u64,
    /// Capacity misses (a fully-associative buffer of the same size would
    /// also miss) — only counted with classification on.
    pub capacity_misses: u64,
    /// Conflict misses (only the set mapping caused the miss) — only
    /// counted with classification on.
    pub conflict_misses: u64,
    /// Resident lines invalidated after a failed integrity check (the
    /// fault plane's recovery path).
    pub recoveries: u64,
}

impl DtbStats {
    /// The hit ratio `h_D` over all lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A handle to a resident translation (opaque way index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle(usize);

/// Shadow directory for the three-C miss taxonomy: a fully-associative
/// LRU of the DTB's total capacity plus the set of addresses ever seen.
/// A miss is **cold** if the address was never resident, **conflict** if
/// the fully-associative shadow still holds it (only the set mapping lost
/// it), and **capacity** otherwise.
#[derive(Debug, Clone)]
struct Classifier {
    cap: usize,
    seen: HashSet<u32>,
    /// Fully-associative LRU contents, most recently used last.
    shadow: Vec<u32>,
}

impl Classifier {
    fn new(cap: usize) -> Classifier {
        Classifier {
            cap: cap.max(1),
            seen: HashSet::new(),
            shadow: Vec::with_capacity(cap.max(1)),
        }
    }

    /// Classifies the access (as if it were a miss), then refreshes the
    /// shadow. Called on every lookup, hit or miss, to keep LRU order
    /// faithful.
    fn touch(&mut self, addr: u32) -> MissKind {
        let kind = if !self.seen.insert(addr) {
            if self.shadow.contains(&addr) {
                MissKind::Conflict
            } else {
                MissKind::Capacity
            }
        } else {
            MissKind::Cold
        };
        if let Some(i) = self.shadow.iter().position(|&a| a == addr) {
            self.shadow.remove(i);
        } else if self.shadow.len() == self.cap {
            self.shadow.remove(0);
        }
        self.shadow.push(addr);
        kind
    }
}

/// The dynamic translation buffer.
#[derive(Debug, Clone)]
pub struct Dtb {
    config: DtbConfig,
    /// Associative tag array: resident DIR address per way.
    tags: Vec<Option<u32>>,
    /// Replacement array: recency stamp per way.
    stamps: Vec<u64>,
    /// Translation length in words per way.
    lengths: Vec<u32>,
    /// Buffer array: primary units, way-indexed.
    buffer: Vec<ShortInstr>,
    /// Overflow area, in blocks of `unit_words`.
    ovf_data: Vec<ShortInstr>,
    /// Free overflow block indices.
    ovf_free: Vec<usize>,
    /// Overflow chain (block indices, in order) per way.
    chains: Vec<Vec<usize>>,
    /// Guard checksum per way, computed over (tag, words) at fill time
    /// and re-verified on dispatch under the fault plane.
    sums: Vec<u64>,
    clock: u64,
    /// Xorshift state for the random replacement policy.
    rng: u64,
    stats: DtbStats,
    /// Miss-taxonomy shadow directory; `None` keeps lookups at their
    /// pre-telemetry cost.
    classifier: Option<Classifier>,
    /// Kind of the most recent miss (classification enabled only).
    last_miss: Option<MissKind>,
    /// DIR address displaced by the most recent fill, if any.
    last_evicted: Option<u32>,
}

/// Filler for unoccupied buffer words.
const FILL: ShortInstr = ShortInstr::Pop(psder::PopMode::Discard);

/// Stable `(tag, payload)` encoding of one short word, the input to the
/// guard checksum. Every variant maps to a distinct tag so any corruption
/// of a stored word changes the fingerprint.
fn short_repr(w: ShortInstr) -> (u64, u64) {
    use psder::{InterpMode, PopMode, PushMode};
    match w {
        ShortInstr::Push(PushMode::Imm(v)) => (1, v as u64),
        ShortInstr::Push(PushMode::Local(s)) => (2, s as u64),
        ShortInstr::Push(PushMode::Global(s)) => (3, s as u64),
        ShortInstr::Pop(PopMode::Discard) => (4, 0),
        ShortInstr::Pop(PopMode::Local(s)) => (5, s as u64),
        ShortInstr::Pop(PopMode::Global(s)) => (6, s as u64),
        ShortInstr::Call(id) => (7, id.index() as u64),
        ShortInstr::Interp(InterpMode::Imm(a)) => (8, a as u64),
        ShortInstr::Interp(InterpMode::Stack) => (9, 0),
    }
}

/// One splitmix64 finalizer round, the mixing step of the checksum.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Guard checksum of a line: the resident address plus every stored word,
/// folded through the splitmix64 finalizer. Keyed on the address so a
/// poisoned tag fails verification even when the words are intact.
fn line_checksum(addr: u32, words: impl Iterator<Item = ShortInstr>) -> u64 {
    let mut h = mix(0x5EED_600D, addr as u64);
    for w in words {
        let (tag, payload) = short_repr(w);
        h = mix(h, tag);
        h = mix(h, payload);
    }
    h
}

impl Dtb {
    /// Creates an empty DTB.
    ///
    /// ```
    /// use uhm::{Dtb, DtbConfig};
    ///
    /// let mut dtb = Dtb::new(DtbConfig::with_capacity(16));
    /// assert!(dtb.lookup(7).is_none()); // cold miss: nothing resident yet
    ///
    /// // A miss traps to the dynamic translator; its output fills a line.
    /// let words = psder::translate(dir::Inst::PushConst(42), 8);
    /// let handle = dtb.fill(7, &words).expect("room in an empty DTB");
    /// assert!(dtb.lookup(7).is_some()); // the translation is now resident
    /// assert_eq!(dtb.len(handle), words.len() as u32);
    /// assert_eq!(dtb.stats().hits, 1);
    /// assert_eq!(dtb.stats().misses, 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`DtbConfig::validate`] first to handle it gracefully.
    pub fn new(config: DtbConfig) -> Dtb {
        config.validate().expect("invalid DTB configuration");
        let ways_total = config.geometry.capacity();
        let ovf_blocks = match config.allocation {
            Allocation::Fixed => 0,
            Allocation::Overflow { blocks } => blocks,
        };
        Dtb {
            config,
            tags: vec![None; ways_total],
            stamps: vec![0; ways_total],
            lengths: vec![0; ways_total],
            buffer: vec![FILL; ways_total * config.unit_words],
            ovf_data: vec![FILL; ovf_blocks * config.unit_words],
            ovf_free: (0..ovf_blocks).rev().collect(),
            chains: vec![Vec::new(); ways_total],
            sums: vec![0; ways_total],
            clock: 0,
            rng: match config.replacement {
                Replacement::Random { seed } => seed | 1,
                _ => 1,
            },
            stats: DtbStats::default(),
            classifier: None,
            last_miss: None,
            last_evicted: None,
        }
    }

    /// Turns on the cold/capacity/conflict miss taxonomy. Adds a shadow
    /// fully-associative directory to every lookup, so it is off by
    /// default and enabled by traced runs.
    pub fn enable_classification(&mut self) {
        if self.classifier.is_none() {
            self.classifier = Some(Classifier::new(self.config.geometry.capacity()));
        }
    }

    /// Kind of the most recent miss ([`None`] until the first classified
    /// miss, or always when classification is off).
    pub fn last_miss_kind(&self) -> Option<MissKind> {
        self.last_miss
    }

    /// DIR address displaced by the most recent [`Dtb::fill`], if that
    /// fill evicted a resident translation.
    pub fn last_evicted(&self) -> Option<u32> {
        self.last_evicted
    }

    /// The configuration.
    pub fn config(&self) -> &DtbConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> DtbStats {
        self.stats
    }

    /// Resident translations.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().flatten().count()
    }

    fn set_range(&self, addr: u32) -> std::ops::Range<usize> {
        let sets = self.config.geometry.sets;
        let set = (addr as usize) % sets;
        let ways = self.config.geometry.ways;
        set * ways..(set + 1) * ways
    }

    /// Presents a DIR address to the associative address array (the INTERP
    /// lookup). On a hit the replacement array is refreshed and the
    /// translation's handle returned.
    pub fn lookup(&mut self, addr: u32) -> Option<Handle> {
        self.clock += 1;
        let kind = self.classifier.as_mut().map(|c| c.touch(addr));
        for way in self.set_range(addr) {
            if self.tags[way] == Some(addr) {
                if self.config.replacement == Replacement::Lru {
                    self.stamps[way] = self.clock;
                }
                self.stats.hits += 1;
                return Some(Handle(way));
            }
        }
        self.stats.misses += 1;
        if let Some(kind) = kind {
            match kind {
                MissKind::Cold => self.stats.cold_misses += 1,
                MissKind::Capacity => self.stats.capacity_misses += 1,
                MissKind::Conflict => self.stats.conflict_misses += 1,
                // Never produced by the classifier: recoveries are counted
                // by `invalidate`, at the point of detection.
                MissKind::Recovery => {}
            }
            self.last_miss = Some(kind);
        }
        None
    }

    /// Stores the translation for `addr`, replacing the least recently
    /// used way of its set. Returns `None` (and counts `uncached`) when the
    /// overflow area cannot supply enough blocks — the caller must then
    /// execute the translation without caching it.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or, under fixed allocation, longer than
    /// the unit (prevented by [`DtbConfig::validate`] plus the translator's
    /// [`MAX_TRANSLATION_WORDS`] bound).
    pub fn fill(&mut self, addr: u32, words: &[ShortInstr]) -> Option<Handle> {
        assert!(!words.is_empty(), "empty translation");
        let unit = self.config.unit_words;
        let extra_blocks = words.len().saturating_sub(unit).div_ceil(unit);
        if self.config.allocation == Allocation::Fixed {
            assert!(
                words.len() <= unit,
                "translation of {} words exceeds fixed unit of {unit}",
                words.len()
            );
        }

        // Victim: empty way, else LRU way of the set. Chosen before the
        // space check so that the victim's overflow chain counts as
        // reclaimable.
        let range = self.set_range(addr);
        let way = range
            .clone()
            .find(|&w| self.tags[w].is_none())
            .unwrap_or_else(|| match self.config.replacement {
                Replacement::Lru | Replacement::Fifo => range
                    .clone()
                    .min_by_key(|&w| self.stamps[w])
                    .expect("ways > 0"),
                Replacement::Random { .. } => {
                    // xorshift64* step, deterministic per seed.
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    range.start + (self.rng as usize) % self.config.geometry.ways
                }
            });
        if extra_blocks > self.ovf_free.len() + self.chains[way].len() {
            self.stats.uncached += 1;
            self.last_evicted = None;
            return None;
        }
        self.last_evicted = self.tags[way];
        if self.tags[way].is_some() {
            self.stats.evictions += 1;
            // Free the victim's overflow chain.
            let chain = std::mem::take(&mut self.chains[way]);
            self.ovf_free.extend(chain);
        }

        self.clock += 1;
        self.tags[way] = Some(addr);
        self.stamps[way] = self.clock;
        self.lengths[way] = words.len() as u32;

        // Primary unit.
        let primary = way * unit;
        let head = words.len().min(unit);
        self.buffer[primary..primary + head].copy_from_slice(&words[..head]);
        // Overflow blocks.
        let mut chain = Vec::with_capacity(extra_blocks);
        for (i, chunk) in words[head..].chunks(unit).enumerate() {
            let block = self.ovf_free.pop().expect("checked availability");
            let at = block * unit;
            self.ovf_data[at..at + chunk.len()].copy_from_slice(chunk);
            chain.push(block);
            debug_assert!(i < extra_blocks);
        }
        self.chains[way] = chain;
        self.sums[way] = line_checksum(addr, words.iter().copied());
        let in_use = self.ovf_capacity_blocks() - self.ovf_free.len();
        self.stats.overflow_peak = self.stats.overflow_peak.max(in_use);
        Some(Handle(way))
    }

    fn ovf_capacity_blocks(&self) -> usize {
        match self.config.allocation {
            Allocation::Fixed => 0,
            Allocation::Overflow { blocks } => blocks,
        }
    }

    /// Length in words of the resident translation.
    pub fn len(&self, handle: Handle) -> u32 {
        self.lengths[handle.0]
    }

    /// Always false for a valid handle; present for API completeness.
    pub fn is_empty(&self, handle: Handle) -> bool {
        self.lengths[handle.0] == 0
    }

    /// Reads one short word of the resident translation (the per-word DTB
    /// fetch the cost model charges `τ_D` for).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the translation.
    pub fn word(&self, handle: Handle, index: u32) -> ShortInstr {
        assert!(index < self.lengths[handle.0], "word index out of range");
        let unit = self.config.unit_words;
        let i = index as usize;
        if i < unit {
            self.buffer[handle.0 * unit + i]
        } else {
            let block = self.chains[handle.0][(i - unit) / unit];
            self.ovf_data[block * unit + (i - unit) % unit]
        }
    }

    /// Resets statistics (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = DtbStats::default();
    }

    /// Recomputes the guard checksum of the resident line behind `handle`
    /// and compares it to the value stored at fill time — the
    /// per-allocation-unit integrity check the dispatch path runs under
    /// the fault plane. Returns `false` for an empty way (a poisoned tag
    /// can hand out handles to garbage).
    pub fn verify(&self, handle: Handle) -> bool {
        let way = handle.0;
        let Some(addr) = self.tags[way] else {
            return false;
        };
        let words = (0..self.lengths[way]).map(|i| self.word(handle, i));
        line_checksum(addr, words) == self.sums[way]
    }

    /// Invalidates the resident line behind `handle` after a failed
    /// integrity check, freeing its overflow chain and counting a
    /// recovery. The static DIR in level 2 remains the ground truth, so
    /// the caller retranslates and refills.
    pub fn invalidate(&mut self, handle: Handle) {
        let way = handle.0;
        self.tags[way] = None;
        self.lengths[way] = 0;
        self.sums[way] = 0;
        let chain = std::mem::take(&mut self.chains[way]);
        self.ovf_free.extend(chain);
        self.stats.recoveries += 1;
    }

    /// Total ways across all sets — the injection surface of the tag and
    /// buffer arrays.
    pub fn ways_total(&self) -> usize {
        self.tags.len()
    }

    /// Fault-plane hook: overwrites word `index % len` of the line
    /// resident in `way` with `f(old)`, deliberately leaving the guard
    /// checksum stale so dispatch detects the damage. Returns the line's
    /// DIR address, or `None` when the way holds no line.
    pub fn corrupt_word_in(
        &mut self,
        way: usize,
        index: u64,
        f: impl FnOnce(ShortInstr) -> ShortInstr,
    ) -> Option<u32> {
        let addr = self.tags.get(way).copied().flatten()?;
        let len = self.lengths[way] as u64;
        if len == 0 {
            return None;
        }
        let i = (index % len) as usize;
        let unit = self.config.unit_words;
        let slot = if i < unit {
            &mut self.buffer[way * unit + i]
        } else {
            let block = self.chains[way][(i - unit) / unit];
            &mut self.ovf_data[block * unit + (i - unit) % unit]
        };
        *slot = f(*slot);
        Some(addr)
    }

    /// Fault-plane hook: poisons the tag/address-array entry of `way` by
    /// flipping one bit of the resident address, without touching the
    /// stored words or checksum. Returns the *new* tag value, or `None`
    /// when the way holds no line.
    pub fn poison_tag(&mut self, way: usize, bit: u32) -> Option<u32> {
        let slot = self.tags.get_mut(way)?;
        let old = (*slot)?;
        let new = old ^ (1 << (bit % 32));
        *slot = Some(new);
        Some(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psder::PushMode;

    fn words(n: usize) -> Vec<ShortInstr> {
        (0..n)
            .map(|i| ShortInstr::Push(PushMode::Imm(i as i64)))
            .collect()
    }

    fn read_all(dtb: &Dtb, h: Handle) -> Vec<ShortInstr> {
        (0..dtb.len(h)).map(|i| dtb.word(h, i)).collect()
    }

    #[test]
    fn miss_fill_hit_round_trip() {
        let mut dtb = Dtb::new(DtbConfig::with_capacity(16));
        assert!(dtb.lookup(100).is_none());
        let t = words(4);
        let h = dtb.fill(100, &t).unwrap();
        assert_eq!(read_all(&dtb, h), t);
        let h2 = dtb.lookup(100).unwrap();
        assert_eq!(read_all(&dtb, h2), t);
        assert_eq!(dtb.stats().hits, 1);
        assert_eq!(dtb.stats().misses, 1);
    }

    #[test]
    fn lru_replacement_within_set() {
        // 1 set, 2 ways.
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 2),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(1, &words(2));
        dtb.fill(2, &words(3));
        dtb.lookup(1); // refresh 1
        dtb.fill(3, &words(2)); // evicts 2
        assert!(dtb.lookup(1).is_some());
        assert!(dtb.lookup(2).is_none());
        assert!(dtb.lookup(3).is_some());
        assert_eq!(dtb.stats().evictions, 1);
    }

    #[test]
    fn set_mapping_partitions_addresses() {
        let cfg = DtbConfig {
            geometry: Geometry::new(2, 1),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(0, &words(1)); // set 0
        dtb.fill(1, &words(1)); // set 1
        dtb.fill(2, &words(1)); // set 0, evicts 0
        assert!(dtb.lookup(1).is_some());
        assert!(dtb.lookup(0).is_none());
    }

    #[test]
    fn overflow_chains_store_long_translations() {
        let cfg = DtbConfig {
            geometry: Geometry::new(2, 2),
            unit_words: 2,
            allocation: Allocation::Overflow { blocks: 4 },
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        let t = words(6); // primary 2 + two overflow blocks
        let h = dtb.fill(7, &t).unwrap();
        assert_eq!(read_all(&dtb, h), t);
        assert_eq!(dtb.stats().overflow_peak, 2);
    }

    #[test]
    fn eviction_frees_overflow_blocks() {
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 1),
            unit_words: 2,
            allocation: Allocation::Overflow { blocks: 2 },
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(1, &words(6)).unwrap(); // uses both blocks
                                         // Filling another long translation evicts and reuses the blocks.
        let h = dtb.fill(2, &words(5)).unwrap();
        assert_eq!(read_all(&dtb, h), words(5));
    }

    #[test]
    fn exhausted_overflow_reports_uncached() {
        let cfg = DtbConfig {
            geometry: Geometry::new(2, 1),
            unit_words: 2,
            allocation: Allocation::Overflow { blocks: 1 },
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(0, &words(4)).unwrap(); // takes the only block (set 0)
                                         // A long translation in the *other* set cannot get blocks.
        assert!(dtb.fill(1, &words(4)).is_none());
        assert_eq!(dtb.stats().uncached, 1);
        // Short translations still fit.
        assert!(dtb.fill(1, &words(2)).is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds fixed unit")]
    fn fixed_policy_rejects_oversize() {
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 1),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        Dtb::new(cfg).fill(0, &words(MAX_TRANSLATION_WORDS + 1));
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            DtbConfig {
                geometry: Geometry::new(1, 1),
                unit_words: 2,
                allocation: Allocation::Fixed,
                replacement: Replacement::Lru,
            }
            .validate(),
            Err(ConfigError::UnitTooSmall {
                unit_words: 2,
                required: MAX_TRANSLATION_WORDS,
            })
        );
        assert_eq!(
            DtbConfig {
                unit_words: 0,
                ..DtbConfig::with_capacity(4)
            }
            .validate(),
            Err(ConfigError::ZeroUnitWords)
        );
        assert!(DtbConfig::with_capacity(64).validate().is_ok());
        // The typed error renders a clear message and is a std error.
        let e = ConfigError::UnitTooSmall {
            unit_words: 2,
            required: 6,
        };
        assert!(e.to_string().contains("2 words"));
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn verify_accepts_clean_lines_and_catches_corruption() {
        let mut dtb = Dtb::new(DtbConfig::with_capacity(16));
        let h = dtb.fill(42, &words(4)).unwrap();
        assert!(dtb.verify(h));
        let addr = dtb.corrupt_word_in(h.0, 2, |_| ShortInstr::Push(PushMode::Imm(-77)));
        assert_eq!(addr, Some(42));
        assert!(!dtb.verify(h), "corrupted word must fail the checksum");
        // Refilling restores integrity.
        let h2 = dtb.fill(42, &words(4)).unwrap();
        assert!(dtb.verify(h2));
    }

    #[test]
    fn poisoned_tag_fails_verification() {
        let mut dtb = Dtb::new(DtbConfig::with_capacity(16));
        let h = dtb.fill(5, &words(3)).unwrap();
        assert!(dtb.verify(h));
        dtb.poison_tag(h.0, 3).unwrap();
        assert!(
            !dtb.verify(h),
            "checksum is keyed on the address, so a flipped tag fails"
        );
    }

    #[test]
    fn invalidate_empties_the_way_and_counts_a_recovery() {
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 1),
            unit_words: 2,
            allocation: Allocation::Overflow { blocks: 2 },
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        let h = dtb.fill(9, &words(6)).unwrap(); // uses both overflow blocks
        dtb.invalidate(h);
        assert!(dtb.lookup(9).is_none());
        assert_eq!(dtb.stats().recoveries, 1);
        assert_eq!(dtb.occupancy(), 0);
        // The overflow chain was reclaimed: a long line fits again.
        assert!(dtb.fill(10, &words(6)).is_some());
    }

    #[test]
    fn checksums_cover_overflow_words() {
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 1),
            unit_words: 2,
            allocation: Allocation::Overflow { blocks: 2 },
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        let h = dtb.fill(3, &words(6)).unwrap();
        // Corrupt a word that lives in the overflow area (index >= unit).
        dtb.corrupt_word_in(h.0, 5, |_| ShortInstr::Push(PushMode::Imm(1234)))
            .unwrap();
        assert!(!dtb.verify(h));
    }

    #[test]
    fn corrupting_an_empty_way_is_a_no_op() {
        let mut dtb = Dtb::new(DtbConfig::with_capacity(4));
        assert_eq!(
            dtb.corrupt_word_in(0, 0, |w| w),
            None,
            "no resident line to damage"
        );
        assert_eq!(dtb.poison_tag(0, 1), None);
    }

    #[test]
    fn checksum_distinguishes_words_with_equal_payloads() {
        // Push(Local(3)) and Pop(Local(3)) share the payload but not the
        // variant tag; the fingerprint must differ.
        let a = line_checksum(0, [ShortInstr::Push(PushMode::Local(3))].into_iter());
        let b = line_checksum(0, [ShortInstr::Pop(psder::PopMode::Local(3))].into_iter());
        assert_ne!(a, b);
    }

    #[test]
    fn buffer_words_accounts_overflow() {
        let cfg = DtbConfig {
            geometry: Geometry::new(4, 4),
            unit_words: 6,
            allocation: Allocation::Overflow { blocks: 8 },
            replacement: Replacement::Lru,
        };
        assert_eq!(cfg.buffer_words(), 16 * 6 + 8 * 6);
    }

    #[test]
    fn fifo_ignores_hit_recency() {
        // 1 set, 2 ways: under FIFO, touching the older entry does not
        // save it from replacement.
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 2),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Fifo,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(1, &words(1));
        dtb.fill(2, &words(1));
        dtb.lookup(1); // would refresh under LRU; FIFO ignores it
        dtb.fill(3, &words(1)); // evicts 1 (oldest fill)
        assert!(dtb.lookup(1).is_none());
        assert!(dtb.lookup(2).is_some());
        assert!(dtb.lookup(3).is_some());
    }

    #[test]
    fn lru_saves_the_refreshed_entry() {
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 2),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(1, &words(1));
        dtb.fill(2, &words(1));
        dtb.lookup(1);
        dtb.fill(3, &words(1)); // evicts 2
        assert!(dtb.lookup(1).is_some());
        assert!(dtb.lookup(2).is_none());
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let mk = |seed| {
            let cfg = DtbConfig {
                geometry: Geometry::new(1, 4),
                unit_words: MAX_TRANSLATION_WORDS,
                allocation: Allocation::Fixed,
                replacement: Replacement::Random { seed },
            };
            let mut dtb = Dtb::new(cfg);
            for addr in 0..64u32 {
                if dtb.lookup(addr % 9).is_none() {
                    dtb.fill(addr % 9, &words(1));
                }
            }
            dtb.stats()
        };
        assert_eq!(mk(7), mk(7));
        // Different seeds generally diverge on this conflict-heavy stream.
        let a = mk(7);
        let b = mk(1234567);
        assert!(a == b || a.hits != b.hits || a.evictions != b.evictions);
    }

    /// Runs an address trace with classification on, filling after every
    /// miss, and returns the stats.
    fn classified_run(cfg: DtbConfig, trace: &[u32]) -> DtbStats {
        let mut dtb = Dtb::new(cfg);
        dtb.enable_classification();
        for &addr in trace {
            if dtb.lookup(addr).is_none() {
                dtb.fill(addr, &words(1));
            }
        }
        dtb.stats()
    }

    #[test]
    fn first_touches_are_cold_misses() {
        // Every miss on a first-touch-only trace is compulsory.
        let stats = classified_run(DtbConfig::with_capacity(16), &[0, 1, 2, 3, 4]);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.cold_misses, 5);
        assert_eq!(stats.capacity_misses, 0);
        assert_eq!(stats.conflict_misses, 0);
    }

    #[test]
    fn disjoint_tags_in_one_set_produce_conflict_misses() {
        // 2 sets × 1 way = capacity 2. Addresses 0 and 2 both map to set
        // 0 while set 1 stays empty: a fully-associative buffer of
        // capacity 2 would hold both, so the ping-pong misses are
        // conflict misses by construction.
        let cfg = DtbConfig {
            geometry: Geometry::new(2, 1),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        let stats = classified_run(cfg, &[0, 2, 0, 2, 0, 2]);
        assert_eq!(stats.cold_misses, 2, "first touch of 0 and 2");
        assert_eq!(
            stats.conflict_misses, 4,
            "every revisit lost to the set mapping"
        );
        assert_eq!(stats.capacity_misses, 0);
        assert_eq!(
            stats.misses,
            stats.cold_misses + stats.capacity_misses + stats.conflict_misses
        );
    }

    #[test]
    fn working_set_larger_than_capacity_produces_capacity_misses() {
        // Fully-associative (1 set × 4 ways): no conflict misses are
        // possible, and cycling over 5 addresses in LRU order defeats a
        // capacity-4 buffer of *any* organization.
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 4),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        let trace: Vec<u32> = (0..5u32).cycle().take(25).collect();
        let stats = classified_run(cfg, &trace);
        assert_eq!(stats.cold_misses, 5);
        assert_eq!(stats.conflict_misses, 0, "fully associative");
        assert_eq!(stats.capacity_misses, 20, "every revisit exceeds capacity");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn classification_off_leaves_taxonomy_counters_at_zero() {
        let mut dtb = Dtb::new(DtbConfig::with_capacity(4));
        for addr in [0u32, 1, 0, 9, 0] {
            if dtb.lookup(addr).is_none() {
                dtb.fill(addr, &words(1));
            }
        }
        let stats = dtb.stats();
        assert!(stats.misses > 0);
        assert_eq!(
            stats.cold_misses + stats.capacity_misses + stats.conflict_misses,
            0
        );
        assert_eq!(dtb.last_miss_kind(), None);
    }

    #[test]
    fn last_evicted_reports_the_victim() {
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 1),
            unit_words: MAX_TRANSLATION_WORDS,
            allocation: Allocation::Fixed,
            replacement: Replacement::Lru,
        };
        let mut dtb = Dtb::new(cfg);
        dtb.fill(7, &words(1));
        assert_eq!(dtb.last_evicted(), None, "empty way, no victim");
        dtb.fill(9, &words(1));
        assert_eq!(dtb.last_evicted(), Some(7));
    }

    #[test]
    fn hit_ratio_computation() {
        let mut dtb = Dtb::new(DtbConfig::with_capacity(4));
        dtb.fill(5, &words(1));
        dtb.lookup(5);
        dtb.lookup(5);
        dtb.lookup(6);
        assert!((dtb.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
