//! Integration tests pinning the paper's qualitative claims, measured on
//! the full system rather than assumed.

use dir::encode::SchemeKind;
use uhm::{DtbConfig, Machine, Mode};

/// §4: dynamic translation achieves the compact-static/fast-dynamic combination:
/// with a heavily encoded static DIR, the DTB machine beats the conventional
/// interpreter on every looping workload.
#[test]
fn dtb_beats_interpreter_on_looping_workloads() {
    for sample in hlr::programs::ALL {
        if sample.name == "straightline" {
            continue; // the deliberately adversarial case
        }
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        let machine = Machine::new(&program, SchemeKind::PairHuffman);
        let t1 = machine
            .run(&Mode::Interpreter)
            .expect("runs")
            .metrics
            .time_per_instruction();
        let t2 = machine
            .run(&Mode::Dtb(DtbConfig::with_capacity(128)))
            .expect("runs")
            .metrics
            .time_per_instruction();
        assert!(
            t2 < t1,
            "{}: DTB {t2:.2} must beat interpreter {t1:.2}",
            sample.name
        );
    }
}

/// §4's boundary condition: with no reuse, the DTB's translation overhead
/// makes it *slower* than the plain interpreter — the cost the paper
/// accepts in exchange for the common case.
#[test]
fn dtb_loses_on_the_adversarial_straightline_case() {
    let program = dir::compiler::compile(&hlr::programs::STRAIGHTLINE.compile().expect("compiles"));
    let machine = Machine::new(&program, SchemeKind::PairHuffman);
    let t1 = machine
        .run(&Mode::Interpreter)
        .expect("runs")
        .metrics
        .time_per_instruction();
    let report = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(128)))
        .expect("runs");
    assert!(report.metrics.dtb.unwrap().hit_ratio() < 0.05);
    assert!(report.metrics.time_per_instruction() > t1);
}

/// §3.2 / Wilner: heavy encoding reduces static program size by 25–75%
/// relative to the unencoded baseline, on every workload.
#[test]
fn encoding_compaction_is_in_wilners_band() {
    for sample in hlr::programs::ALL {
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        let byte = SchemeKind::ByteAligned.encode(&program).program_bits() as f64;
        let pair = SchemeKind::PairHuffman.encode(&program).program_bits() as f64;
        let reduction = 1.0 - pair / byte;
        assert!(
            (0.25..=0.95).contains(&reduction),
            "{}: reduction {:.0}%",
            sample.name,
            reduction * 100.0
        );
    }
}

/// §3.1: raising the semantic level (fusion) shrinks the program and
/// reduces interpretation time simultaneously — the upward direction of
/// Figure 1.
#[test]
fn higher_semantic_level_is_smaller_and_faster() {
    let mut smaller = 0;
    let mut faster = 0;
    let mut total = 0;
    for sample in hlr::programs::ALL {
        let base = dir::compiler::compile(&sample.compile().expect("compiles"));
        let (fused, stats) = dir::fuse::fuse(&base);
        if stats.fused == 0 {
            continue; // nothing to fuse in this program
        }
        total += 1;
        let base_bits = SchemeKind::Huffman.encode(&base).program_bits();
        let fused_bits = SchemeKind::Huffman.encode(&fused).program_bits();
        if fused_bits < base_bits {
            smaller += 1;
        }
        let tb = Machine::new(&base, SchemeKind::Huffman)
            .run(&Mode::Dtb(DtbConfig::with_capacity(128)))
            .expect("runs");
        let tf = Machine::new(&fused, SchemeKind::Huffman)
            .run(&Mode::Dtb(DtbConfig::with_capacity(128)))
            .expect("runs");
        // Compare total cycles (the fused program executes fewer, longer
        // instructions, so per-instruction time is the wrong metric).
        if tf.metrics.cycles.total() < tb.metrics.cycles.total() {
            faster += 1;
        }
    }
    assert!(total >= 8, "fusion should apply to most samples");
    // Huffman code redistribution can cost a couple of bits on pathological
    // inputs (straightline), so require a strict win on ≥90% of samples.
    assert!(
        smaller * 10 >= total * 9,
        "fused must be smaller on at least 90% of samples ({smaller}/{total})"
    );
    assert!(
        faster * 10 >= total * 9,
        "fused must be faster on at least 90% of samples ({faster}/{total})"
    );
}

/// §5.2: the DTB hit ratio under set associativity of degree 4 is close to
/// the best across degrees on ordinary workloads (within 0.05 of the
/// maximum observed).
#[test]
fn degree_four_is_near_best_for_typical_workloads() {
    use memsim::Geometry;
    use psder::MAX_TRANSLATION_WORDS;
    for sample in [
        &hlr::programs::SIEVE,
        &hlr::programs::GCD_CHAIN,
        &hlr::programs::MIXED,
    ] {
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        let machine = Machine::new(&program, SchemeKind::Packed);
        let capacity = 64;
        let mut ratios = Vec::new();
        for ways in [1usize, 2, 4, 8] {
            let cfg = uhm::DtbConfig {
                geometry: Geometry::new(capacity / ways, ways),
                unit_words: MAX_TRANSLATION_WORDS,
                allocation: uhm::Allocation::Fixed,
                replacement: uhm::Replacement::Lru,
            };
            let r = machine.run(&Mode::Dtb(cfg)).expect("runs");
            ratios.push(r.metrics.dtb.unwrap().hit_ratio());
        }
        let best = ratios.iter().copied().fold(0.0, f64::max);
        let degree4 = ratios[2];
        assert!(
            best - degree4 < 0.05,
            "{}: degree 4 = {degree4:.3}, best = {best:.3}",
            sample.name
        );
    }
}

/// §8: the DTB (memory) beats decode hardware aids (random logic) on
/// looping workloads, because it removes the level-2 fetch as well as the
/// decode from the hit path.
#[test]
fn dtb_beats_a_four_x_decode_accelerator() {
    use uhm::{CostModel, Limits};
    for sample in [&hlr::programs::SIEVE, &hlr::programs::GCD_CHAIN] {
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        let aided_costs = CostModel {
            decode_scale_percent: 25,
            ..CostModel::default()
        };
        let aided = Machine::with(
            &program,
            SchemeKind::PairHuffman,
            aided_costs,
            Limits::default(),
        );
        let t1_aided = aided
            .run(&Mode::Interpreter)
            .expect("runs")
            .metrics
            .time_per_instruction();
        let plain = Machine::new(&program, SchemeKind::PairHuffman);
        let t2 = plain
            .run(&Mode::Dtb(uhm::DtbConfig::with_capacity(64)))
            .expect("runs")
            .metrics
            .time_per_instruction();
        assert!(
            t2 < t1_aided,
            "{}: DTB {t2:.2} vs 4x-aided interpreter {t1_aided:.2}",
            sample.name
        );
    }
}

/// The decode burden: the number of instructions decoded falls from one
/// per execution (interpreter) to roughly one per static instruction
/// (DTB), which is where the performance comes from.
#[test]
fn dtb_collapses_decode_counts() {
    let program = dir::compiler::compile(&hlr::programs::PRIMES.compile().expect("compiles"));
    let machine = Machine::new(&program, SchemeKind::Huffman);
    let interp = machine.run(&Mode::Interpreter).expect("runs");
    let dtb = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(256)))
        .expect("runs");
    assert_eq!(interp.metrics.decoded, interp.metrics.instructions);
    assert!(dtb.metrics.decoded <= program.len() as u64 + 8);
    assert!(dtb.metrics.decoded * 100 < interp.metrics.decoded);
}

/// §6.2: semantic work (x) is identical across machine configurations —
/// the DTB changes *overhead*, not computation.
#[test]
fn semantic_work_is_mode_invariant() {
    let program = dir::compiler::compile(&hlr::programs::BINSEARCH.compile().expect("compiles"));
    let machine = Machine::new(&program, SchemeKind::Packed);
    let a = machine.run(&Mode::Interpreter).expect("runs");
    let b = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
        .expect("runs");
    let c = machine
        .run(&Mode::ICache {
            geometry: memsim::Geometry::new(16, 4),
        })
        .expect("runs");
    assert_eq!(a.metrics.cycles.semantic, b.metrics.cycles.semantic);
    assert_eq!(a.metrics.cycles.semantic, c.metrics.cycles.semantic);
    assert_eq!(a.metrics.routine_words, b.metrics.routine_words);
}
