//! **E19 — the chaos campaign (pool resilience):** drive the supervised
//! pool through ≥100 seeded chaos scenarios — worker crashes, hung
//! tenants, corrupted shared translation artifacts, load shedding and
//! circuit-breaker walks — and assert the four resilience invariants in
//! every one:
//!
//! 1. **No tenant is silently lost** — every submitted tenant has
//!    exactly one result, even when its worker thread was crashed out
//!    from under it.
//! 2. **Every outcome is accounted** — the six outcome counts
//!    (completed / trapped / panicked / timed_out / shed / quarantined)
//!    always sum to the tenant count.
//! 3. **Surviving tenants are bit-identical** — a tenant that completes
//!    under chaos produces exactly the outcome (output and modeled
//!    metrics) of the chaos-off reference run.
//! 4. **p99 stays bounded** — per-scenario p99 tenant latency (including
//!    charged backoff) stays under an absolute ceiling.
//!
//! Every chaos decision is keyed by `(seed, tenant)`, never by schedule,
//! so the campaign's aggregate outcome table is deterministic; `--smoke`
//! replays the campaign and compares that table against the committed
//! baseline (`baselines/chaos_campaign.json`) — the CI gate for the
//! resilience plane. With `--json`, emits the schema-v5
//! [`ResilienceReport`] instead of the text table.
//!
//! Run with `cargo run -p uhm-bench --release --bin chaos_campaign`.

use std::process::ExitCode;
use std::sync::Arc;

use dir::encode::SchemeKind;
use telemetry::{Json, ResilienceReport};
use uhm::resilience::{AdmissionPolicy, BreakerPolicy, ChaosConfig, Supervisor};
use uhm::{Budget, DtbConfig, Machine, MachinePool, Mode, PoolRun, TenantOutcome};
use uhm_bench::json_flag;

const SEED: u64 = 0xC0A5;
/// Seeded chaos scenarios in the main matrix (the breaker and shedding
/// walks below push the total past the 100-scenario floor).
const MATRIX_SCENARIOS: usize = 100;
/// Modeled-cycle fuel per attempt: generous for the real workloads,
/// far below the runaway loop's appetite, and deterministic (fuel
/// preempts at a modeled cycle count, never at a wall-clock time).
const FUEL: u64 = 2_000_000;
/// Absolute per-scenario p99 latency ceiling, in nanoseconds. Latency
/// includes charged (never slept) backoff, so the ceiling mostly guards
/// against a hung tenant escaping its budget.
const P99_BOUND_NS: f64 = 2e9;
/// (worker_crash_rate, hang_rate, artifact_corruption_rate) combos the
/// matrix cycles through.
const RATES: [(f64, f64, f64); 4] = [
    (0.3, 0.0, 0.0),
    (0.0, 0.3, 0.0),
    (0.0, 0.0, 0.3),
    (0.2, 0.2, 0.2),
];

/// One scenario's outcome table plus its invariant verdicts.
struct Cell {
    label: String,
    seed: u64,
    workers: usize,
    rates: (f64, f64, f64),
    max_queue: Option<usize>,
    tenants: usize,
    completed: usize,
    trapped: usize,
    panicked: usize,
    timed_out: usize,
    shed: usize,
    quarantined: usize,
    retries: u64,
    worker_crashes: u64,
    p99_ns: f64,
    no_lost_tenants: bool,
    full_accounting: bool,
    bit_identical_survivors: bool,
    p99_bounded: bool,
}

impl Cell {
    fn invariants_hold(&self) -> bool {
        self.no_lost_tenants
            && self.full_accounting
            && self.bit_identical_survivors
            && self.p99_bounded
    }
}

fn machine_for(src: &str) -> Arc<Machine> {
    let hir = hlr::compile(src).expect("campaign sources compile");
    let mut m = Machine::new(&dir::compiler::compile(&hir), SchemeKind::Packed);
    m.freeze_translations();
    Arc::new(m)
}

/// The twelve-tenant fleet of the chaos matrix: small loops, two paper
/// samples, and one runaway "hog" whose fuel timeout is deterministic.
/// Every tenant gets its *own* machine, so circuit breakers are
/// per-tenant and the matrix outcomes stay schedule-invariant; the
/// dedicated breaker walk below shares one image on one worker instead.
fn fleet() -> Vec<(String, Arc<Machine>, Mode)> {
    let sources = [
        (
            "squares",
            "proc main() begin int i := 0; \
             while i < 25 do begin write i * i; i := i + 1; end end",
        ),
        (
            "fib",
            "proc main() begin int a := 0; int b := 1; int i := 0; \
             while i < 20 do begin int t := a + b; a := b; b := t; write a; i := i + 1; end end",
        ),
        ("answer", "proc main() begin write 6 * 7; end"),
        (
            "count",
            "proc main() begin int i := 0; \
             while i < 400 do begin write i; i := i + 1; end end",
        ),
        ("sieve", hlr::programs::SIEVE.source),
        ("gcd", hlr::programs::GCD_CHAIN.source),
        // Deterministically exceeds the fuel budget: ~200k iterations
        // of a 4-instruction loop dwarf the 2M-cycle allowance.
        (
            "hog",
            "proc main() begin int i := 0; \
             while i < 200000 do begin i := i + 1; end end",
        ),
    ];
    let modes = [
        Mode::Interpreter,
        Mode::Dtb(DtbConfig::with_capacity(64)),
        Mode::Dtb(DtbConfig::with_capacity(8)),
    ];
    (0..12)
        .map(|t| {
            let (name, src) = sources[t % sources.len()];
            (
                format!("{name}-{t}"),
                machine_for(src),
                modes[t % modes.len()].clone(),
            )
        })
        .collect()
}

fn supervisor(max_queue: Option<usize>, backoff_seed: u64) -> Supervisor {
    let mut sup = Supervisor {
        budget: Budget::fuel(FUEL),
        max_queue,
        // No right-sizing in the campaign: surviving tenants must be
        // bit-identical to the chaos-off reference in their *requested*
        // mode, so admission must not rewrite it.
        admission: AdmissionPolicy {
            max_pressure_words: None,
            right_size: false,
        },
        ..Supervisor::default()
    };
    sup.backoff.seed = backoff_seed;
    sup
}

fn cell_from_run(
    label: String,
    seed: u64,
    rates: (f64, f64, f64),
    max_queue: Option<usize>,
    run: &PoolRun,
    reference: &PoolRun,
) -> Cell {
    let n = reference.results.len();
    let mut present = vec![0usize; n];
    for r in &run.results {
        if let Some(slot) = present.get_mut(r.tenant) {
            *slot += 1;
        }
    }
    let no_lost_tenants = run.results.len() == n && present.iter().all(|&c| c == 1);
    let statuses = [
        "completed",
        "trapped",
        "panicked",
        "timed_out",
        "shed",
        "quarantined",
    ];
    let counted: usize = statuses.iter().map(|s| run.outcome_count(s)).sum();
    let bit_identical_survivors = run.results.iter().all(|r| {
        !matches!(r.outcome, TenantOutcome::Completed(_))
            || reference
                .results
                .iter()
                .find(|q| q.tenant == r.tenant)
                .is_some_and(|q| q.outcome == r.outcome)
    });
    let p99_ns = run.latency_percentiles().p99;
    Cell {
        label,
        seed,
        workers: run.workers,
        rates,
        max_queue,
        tenants: n,
        completed: run.outcome_count("completed"),
        trapped: run.outcome_count("trapped"),
        panicked: run.outcome_count("panicked"),
        timed_out: run.outcome_count("timed_out"),
        shed: run.outcome_count("shed"),
        quarantined: run.outcome_count("quarantined"),
        retries: run.retries,
        worker_crashes: run.worker_crashes,
        p99_ns,
        no_lost_tenants,
        full_accounting: counted == run.results.len(),
        bit_identical_survivors,
        p99_bounded: p99_ns < P99_BOUND_NS,
    }
}

/// One matrix scenario: the fleet under seeded chaos, versus the same
/// pool with chaos off.
fn matrix_scenario(n: usize, fleet: &[(String, Arc<Machine>, Mode)]) -> Cell {
    // One splitmix64 hop decorrelates scenario seeds (cf. fault_campaign).
    let seed = hlr::rng::Rng::new(SEED ^ n as u64).next_u64();
    let rates = RATES[n % RATES.len()];
    let workers = [1, 2, 4][n % 3];
    let max_queue = if n.is_multiple_of(5) {
        Some(fleet.len() - 4)
    } else {
        None
    };
    let mut pool = MachinePool::new(workers);
    for (name, machine, mode) in fleet {
        pool.push(name.clone(), Arc::clone(machine), mode.clone());
    }
    pool.set_supervisor(Some(supervisor(max_queue, seed)));
    let reference = pool.run();
    pool.set_chaos(Some(ChaosConfig {
        seed,
        worker_crash_rate: rates.0,
        hang_rate: rates.1,
        artifact_corruption_rate: rates.2,
    }));
    let run = pool.run();
    cell_from_run(
        format!("matrix-{n}"),
        seed,
        rates,
        max_queue,
        &run,
        &reference,
    )
}

/// The breaker walk: six tenants share one hopeless image (infinite
/// recursion, a permanent trap) on a single worker, so the breaker
/// deterministically degrades after two failures and quarantines after
/// three; the remaining tenants never run.
fn breaker_scenario(n: usize) -> Cell {
    let boom = machine_for(
        "proc boom() -> int begin return boom(); end
         proc main() begin write boom(); end",
    );
    let mut pool = MachinePool::new(1);
    for t in 0..6 {
        pool.push(format!("boom-{t}"), Arc::clone(&boom), Mode::Interpreter);
    }
    let mut sup = supervisor(None, SEED ^ n as u64);
    sup.backoff.max_attempts = 1;
    sup.breaker = BreakerPolicy {
        degrade_after: 2,
        quarantine_after: 3,
    };
    pool.set_supervisor(Some(sup));
    let reference = pool.run();
    let run = pool.run();
    cell_from_run(
        format!("breaker-{n}"),
        SEED ^ n as u64,
        (0.0, 0.0, 0.0),
        None,
        &run,
        &reference,
    )
}

fn campaign() -> Vec<Cell> {
    // Worker-crash chaos panics by design; keep the campaign's stderr
    // clean (the invariants, not the backtraces, are the signal).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let fleet = fleet();
    let mut cells: Vec<Cell> = (0..MATRIX_SCENARIOS)
        .map(|n| matrix_scenario(n, &fleet))
        .collect();
    cells.extend((0..4).map(breaker_scenario));
    std::panic::set_hook(hook);
    cells
}

/// The campaign-wide outcome table: deterministic (every count is a pure
/// function of seeds and policies), so `--smoke` can compare it against
/// the committed baseline exactly.
fn outcome_table(cells: &[Cell]) -> Json {
    let sum = |f: fn(&Cell) -> u64| -> i64 { cells.iter().map(f).sum::<u64>() as i64 };
    Json::obj(vec![
        ("scenarios", (cells.len() as i64).into()),
        ("tenants", sum(|c| c.tenants as u64).into()),
        ("completed", sum(|c| c.completed as u64).into()),
        ("trapped", sum(|c| c.trapped as u64).into()),
        ("panicked", sum(|c| c.panicked as u64).into()),
        ("timed_out", sum(|c| c.timed_out as u64).into()),
        ("shed", sum(|c| c.shed as u64).into()),
        ("quarantined", sum(|c| c.quarantined as u64).into()),
        ("retries", sum(|c| c.retries).into()),
        ("worker_crashes", sum(|c| c.worker_crashes).into()),
    ])
}

fn invariants_json(cells: &[Cell]) -> Json {
    let all = |f: fn(&Cell) -> bool| Json::Bool(cells.iter().all(f));
    Json::obj(vec![
        ("no_lost_tenants", all(|c| c.no_lost_tenants)),
        ("full_accounting", all(|c| c.full_accounting)),
        (
            "bit_identical_survivors",
            all(|c| c.bit_identical_survivors),
        ),
        ("p99_bounded", all(|c| c.p99_bounded)),
    ])
}

fn cell_json(c: &Cell) -> Json {
    Json::obj(vec![
        ("scenario", c.label.as_str().into()),
        ("seed", (c.seed as i64).into()),
        ("workers", (c.workers as i64).into()),
        ("worker_crash_rate", c.rates.0.into()),
        ("hang_rate", c.rates.1.into()),
        ("artifact_corruption_rate", c.rates.2.into()),
        (
            "max_queue",
            c.max_queue.map_or(Json::Null, |q| (q as i64).into()),
        ),
        ("tenants", (c.tenants as i64).into()),
        ("completed", (c.completed as i64).into()),
        ("trapped", (c.trapped as i64).into()),
        ("panicked", (c.panicked as i64).into()),
        ("timed_out", (c.timed_out as i64).into()),
        ("shed", (c.shed as i64).into()),
        ("quarantined", (c.quarantined as i64).into()),
        ("retries", (c.retries as i64).into()),
        ("worker_crashes", (c.worker_crashes as i64).into()),
        ("p99_ns", c.p99_ns.into()),
        ("invariants_hold", c.invariants_hold().into()),
    ])
}

fn config_json() -> Json {
    Json::obj(vec![
        ("seed", (SEED as i64).into()),
        ("matrix_scenarios", (MATRIX_SCENARIOS as i64).into()),
        ("fuel", (FUEL as i64).into()),
        ("p99_bound_ns", P99_BOUND_NS.into()),
        (
            "rates",
            Json::Arr(
                RATES
                    .iter()
                    .map(|&(c, h, a)| {
                        Json::obj(vec![
                            ("crash", c.into()),
                            ("hang", h.into()),
                            ("corrupt", a.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn report(cells: &[Cell]) -> ResilienceReport {
    ResilienceReport::new(
        "chaos_campaign",
        config_json(),
        Json::Arr(cells.iter().map(cell_json).collect()),
        outcome_table(cells),
        invariants_json(cells),
    )
}

/// Committed reference outcome table; `--smoke` fails on any deviation.
const BASELINE: &str = include_str!("../../baselines/chaos_campaign.json");

fn smoke() -> ExitCode {
    let cells = campaign();
    let mut failed = 0;
    for c in &cells {
        if !c.invariants_hold() {
            failed += 1;
            eprintln!(
                "FAIL {:>12}: lost={} accounting={} bit_identical={} p99_bounded={}",
                c.label,
                !c.no_lost_tenants,
                c.full_accounting,
                c.bit_identical_survivors,
                c.p99_bounded
            );
        }
    }
    if failed > 0 {
        eprintln!(
            "chaos smoke: invariants violated in {failed}/{} scenarios",
            cells.len()
        );
        return ExitCode::FAILURE;
    }
    let table = outcome_table(&cells);
    let baseline = match Json::parse(BASELINE) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("chaos smoke: baseline unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let expected = baseline.get("outcomes").cloned().unwrap_or(Json::Null);
    if table != expected {
        eprintln!("chaos smoke: outcome table deviates from the committed baseline");
        eprintln!("  expected: {}", expected.render());
        eprintln!("  got:      {}", table.render());
        return ExitCode::FAILURE;
    }
    println!(
        "chaos smoke PASS: {} scenarios, all four invariants held, \
         outcome table matches baseline",
        cells.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--smoke") {
        return smoke();
    }
    let cells = campaign();
    if json_flag() {
        println!("{}", report(&cells).render());
        return ExitCode::SUCCESS;
    }
    println!(
        "Chaos campaign ({} scenarios, fuel {FUEL} cycles, seed {SEED:#x})\n",
        cells.len()
    );
    println!(
        "{:>12} {:>3} {:>17} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>5}",
        "scenario",
        "w",
        "rates(c/h/a)",
        "ok",
        "trap",
        "panic",
        "tout",
        "shed",
        "quar",
        "retry",
        "crashes",
        "inv"
    );
    for c in &cells {
        println!(
            "{:>12} {:>3} {:>5.2}/{:>4.2}/{:>4.2} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>5}",
            c.label,
            c.workers,
            c.rates.0,
            c.rates.1,
            c.rates.2,
            c.completed,
            c.trapped,
            c.panicked,
            c.timed_out,
            c.shed,
            c.quarantined,
            c.retries,
            c.worker_crashes,
            if c.invariants_hold() { "ok" } else { "FAIL" }
        );
    }
    let held = cells.iter().filter(|c| c.invariants_hold()).count();
    println!(
        "\nInvariants held in {held}/{} scenarios; outcome table: {}",
        cells.len(),
        outcome_table(&cells).render()
    );
    if held == cells.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
