//! The profiling plane's two load-bearing guarantees, end to end:
//!
//! 1. **Bit-identity.** Attaching any profiling sink — the counter
//!    plane, the span tracer, the flame builder, or all three teed —
//!    changes *nothing* the machine models: program output and the full
//!    [`uhm::Metrics`] struct (every counter, the complete cycle
//!    breakdown, DTB/cache statistics, fault stats) are equal field for
//!    field to an unobserved run. This holds in every machine mode and
//!    under an active fault plane.
//! 2. **Valid export.** The span tracer's output is a well-formed Chrome
//!    `trace_event` document (the schema Perfetto and `chrome://tracing`
//!    load): a `traceEvents` array whose entries carry the required
//!    keys, with complete events carrying durations and begin/end events
//!    balanced per track.

use dir::encode::SchemeKind;
use profile::{CounterPlane, FlameBuilder, SpanTracer};
use telemetry::{Event, Json, TraceSink};
use uhm::{DtbConfig, FaultConfig, Machine, Mode};

/// A workload with procedure calls, loops and recursion, so every
/// attribution axis (region, opcode, tier, pair) is exercised.
fn sample_program() -> dir::program::Program {
    dir::compiler::compile(&hlr::programs::QUEENS.compile().unwrap())
}

fn all_modes() -> Vec<Mode> {
    vec![
        Mode::Interpreter,
        Mode::Dtb(DtbConfig::with_capacity(32)),
        Mode::ICache {
            geometry: memsim::Geometry::new(8, 4),
        },
        Mode::TwoLevelDtb {
            l1: DtbConfig::with_capacity(8),
            l2: DtbConfig::with_capacity(64),
        },
    ]
}

/// All three profiling surfaces attached at once, as `raul` tees them.
struct FullPlane {
    plane: CounterPlane,
    tracer: SpanTracer,
    flame: FlameBuilder,
}

impl TraceSink for FullPlane {
    const CLASSIFY_MISSES: bool = false;

    fn emit(&mut self, event: Event) {
        self.plane.emit(event);
        self.tracer.emit(event);
        self.flame.emit(event);
    }
}

#[test]
fn profiled_runs_are_bit_identical_in_every_mode() {
    let program = sample_program();
    let machine = Machine::new(&program, SchemeKind::Huffman);
    for mode in all_modes() {
        let plain = machine.run(&mode).unwrap();
        let mut sinks = FullPlane {
            plane: CounterPlane::new(&program),
            tracer: SpanTracer::new(&program),
            flame: FlameBuilder::new(&program),
        };
        let profiled = machine.run_with(&mode, &mut sinks).unwrap();
        // Output and the FULL metrics struct: instructions, decoded,
        // word traffic, the 11-component cycle breakdown, DTB/cache
        // stats, recoveries — everything the model computes.
        assert_eq!(plain.output, profiled.output, "{mode:?}: output diverged");
        assert_eq!(
            plain.metrics, profiled.metrics,
            "{mode:?}: modeled metrics diverged under profiling"
        );
        // The retire invariant: the plane observed every instruction and
        // every modeled cycle, exactly once.
        assert_eq!(sinks.plane.retired(), profiled.metrics.instructions);
        assert_eq!(sinks.plane.cycles(), profiled.metrics.cycles.total());
        assert_eq!(sinks.flame.total_cycles(), profiled.metrics.cycles.total());
    }
}

#[test]
fn profiled_fault_runs_are_bit_identical() {
    // A seeded fault plane consumes deterministic randomness; profiling
    // must not shift the stream or the recovery path. Fault stats are
    // part of Metrics, so full equality covers them too.
    let program = sample_program();
    for seed in [7u64, 0xFA14] {
        let mut machine = Machine::new(&program, SchemeKind::Huffman);
        // Recoverable fault kinds only (DTB corruption and fetch drops):
        // the run completes through the verify/recover path, so there is
        // a full metrics struct on both sides to compare.
        machine.set_faults(Some(FaultConfig {
            dtb_word_rate: 5e-3,
            dtb_tag_rate: 5e-3,
            drop_fetch_rate: 1e-3,
            ..FaultConfig::inert(seed)
        }));
        let mode = Mode::Dtb(DtbConfig::with_capacity(16));
        let plain = machine.run(&mode).unwrap();
        let mut plane = CounterPlane::new(&program);
        let profiled = machine.run_with(&mode, &mut plane).unwrap();
        assert_eq!(
            plain.output, profiled.output,
            "seed {seed}: output diverged"
        );
        assert_eq!(
            plain.metrics, profiled.metrics,
            "seed {seed}: metrics diverged under profiling with faults"
        );
        assert!(profiled.metrics.faults.is_some(), "fault stats recorded");
    }
}

/// Validates one event object against the `trace_event` schema subset
/// that Perfetto requires, returning its `(pid, tid, ph)` triple.
fn check_event(e: &Json) -> (i64, i64, String) {
    let ph = e
        .get("ph")
        .and_then(Json::as_str)
        .expect("event has a phase")
        .to_string();
    assert!(
        ["B", "E", "X", "i", "C", "M"].contains(&ph.as_str()),
        "unknown phase {ph:?}"
    );
    assert!(
        e.get("name").and_then(Json::as_str).is_some(),
        "event missing name"
    );
    let ts = e.get("ts").and_then(Json::as_i64).expect("event has ts");
    assert!(ts >= 0, "negative timestamp");
    let pid = e.get("pid").and_then(Json::as_i64).expect("event has pid");
    let tid = e.get("tid").and_then(Json::as_i64).expect("event has tid");
    if ph == "X" {
        let dur = e
            .get("dur")
            .and_then(Json::as_i64)
            .expect("X event has dur");
        assert!(dur >= 0, "negative duration");
    }
    (pid, tid, ph)
}

#[test]
fn span_trace_is_a_valid_chrome_trace_event_document() {
    let program = sample_program();
    let machine = Machine::new(&program, SchemeKind::Huffman);
    let mut tracer = SpanTracer::new(&program);
    machine
        .run_with(&Mode::Dtb(DtbConfig::with_capacity(32)), &mut tracer)
        .unwrap();
    let text = tracer.finish();
    let doc = Json::parse(&text).expect("trace output parses as JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("document has a traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns"),
        "displayTimeUnit"
    );

    // Every event satisfies the schema; B/E nest and balance per track.
    let mut depth: std::collections::BTreeMap<(i64, i64), i64> = std::collections::BTreeMap::new();
    let mut have_spans = false;
    for e in events {
        let (pid, tid, ph) = check_event(e);
        let d = depth.entry((pid, tid)).or_insert(0);
        match ph.as_str() {
            "B" => {
                have_spans = true;
                *d += 1;
            }
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "E without matching B on track ({pid},{tid})");
            }
            _ => {}
        }
    }
    assert!(have_spans, "no duration spans emitted");
    for ((pid, tid), d) in depth {
        assert_eq!(d, 0, "unbalanced B/E on track ({pid},{tid})");
    }
}

#[test]
fn flamegraph_output_is_well_formed_collapsed_stacks() {
    let program = sample_program();
    let machine = Machine::new(&program, SchemeKind::Huffman);
    let mut flame = FlameBuilder::new(&program);
    machine.run_with(&Mode::Interpreter, &mut flame).unwrap();
    let collapsed = flame.collapsed();
    assert!(!collapsed.is_empty());
    let mut total = 0u64;
    for line in collapsed.lines() {
        // `frame;frame;... weight` — exactly one space, positive weight.
        let (stack, weight) = line.rsplit_once(' ').expect("line has a weight");
        assert!(!stack.is_empty());
        assert!(
            stack.split(';').all(|f| !f.is_empty()),
            "empty frame in {stack:?}"
        );
        total += weight.parse::<u64>().expect("weight is an integer");
    }
    // Collapsed-stack weights are modeled cycles and cover the run.
    assert_eq!(total, flame.total_cycles());
}
