//! The typed diagnostic vocabulary of the analyze plane.
//!
//! Every finding carries a stable [`DiagCode`] (the contract tests and the
//! CLI key on), a fixed [`Severity`] derived from the code, an optional DIR
//! address, and the owning region's name. Codes are grouped by pass:
//! `AN1xx` codec validation, `AN2xx` abstract interpretation, `AN3xx` call
//! graph, `AN4xx` cross-level consistency, `AN5xx` DTB pressure, `AN6xx`
//! interprocedural dataflow.

/// How bad a finding is. Only [`Severity::Error`] blocks verification;
/// warnings and notes ride along in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a property worth knowing, not a defect.
    Info,
    /// Suspicious but well-defined at run time.
    Warning,
    /// The image must not be executed on the trusted path.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of a diagnostic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagCode {
    /// A decoder-side table is structurally invalid (pass 1).
    CodecDefect,
    /// The image does not decode back to the program it claims to encode.
    ImageMismatch,
    /// The image stream fails to decode at all.
    ImageUndecodable,
    /// A path pops an empty operand stack.
    StackUnderflow,
    /// Two paths reach one instruction with different stack depths.
    StackImbalance,
    /// A `Return` executes at the wrong stack depth (operands leaked or
    /// the promised result missing), or appears in the prelude.
    ReturnImbalance,
    /// A branch target lies outside the code array.
    JumpOutOfRange,
    /// A branch target lands inside a different procedure's region.
    JumpCrossesProcedure,
    /// A local is read but never stored anywhere in its procedure.
    UninitializedLocal,
    /// A local may be read before the store that initializes it.
    MaybeUninitializedLocal,
    /// A frame or global slot operand exceeds its declared area.
    SlotOutOfRange,
    /// A path falls through the end of its region.
    FallsThroughRegion,
    /// A `Call` names a procedure index outside the table.
    BadCallee,
    /// A procedure is never reachable from the prelude.
    UnreachableProcedure,
    /// The call graph contains a cycle (recursion depth is unbounded
    /// statically; the dynamic depth limit still applies).
    RecursionDetected,
    /// A PSDER translation template's stack effect disagrees with the DIR
    /// instruction's semantics.
    TemplateImbalance,
    /// The analyzer's own stack model disagrees with the PSDER level's
    /// expected effect table (an analyzer/ISA drift guard).
    ModelMismatch,
    /// The hottest loop's translation working set exceeds the default DTB.
    DtbPressure,
    /// Interval analysis proved a conditional branch is never taken.
    BranchNeverTaken,
    /// Interval analysis proved a conditional branch is always taken.
    BranchAlwaysTaken,
    /// Instructions no interprocedural path can reach.
    UnreachableCode,
}

impl DiagCode {
    /// Every diagnostic code, in id order. Tests iterate this to enforce
    /// the `ANxyz` grammar and id uniqueness; keep it in sync when adding
    /// codes (the exhaustive `match` in [`DiagCode::id`] makes the
    /// compiler flag a missing arm, and the count test flags a missing
    /// entry here).
    pub const ALL: [DiagCode; 21] = [
        DiagCode::CodecDefect,
        DiagCode::ImageMismatch,
        DiagCode::ImageUndecodable,
        DiagCode::StackUnderflow,
        DiagCode::StackImbalance,
        DiagCode::ReturnImbalance,
        DiagCode::JumpOutOfRange,
        DiagCode::JumpCrossesProcedure,
        DiagCode::UninitializedLocal,
        DiagCode::MaybeUninitializedLocal,
        DiagCode::SlotOutOfRange,
        DiagCode::FallsThroughRegion,
        DiagCode::BadCallee,
        DiagCode::UnreachableProcedure,
        DiagCode::RecursionDetected,
        DiagCode::TemplateImbalance,
        DiagCode::ModelMismatch,
        DiagCode::DtbPressure,
        DiagCode::BranchNeverTaken,
        DiagCode::BranchAlwaysTaken,
        DiagCode::UnreachableCode,
    ];

    /// The stable `ANxxx` identifier.
    pub fn id(self) -> &'static str {
        match self {
            DiagCode::CodecDefect => "AN101",
            DiagCode::ImageMismatch => "AN102",
            DiagCode::ImageUndecodable => "AN103",
            DiagCode::StackUnderflow => "AN201",
            DiagCode::StackImbalance => "AN202",
            DiagCode::ReturnImbalance => "AN203",
            DiagCode::JumpOutOfRange => "AN204",
            DiagCode::JumpCrossesProcedure => "AN205",
            DiagCode::UninitializedLocal => "AN206",
            DiagCode::MaybeUninitializedLocal => "AN207",
            DiagCode::SlotOutOfRange => "AN208",
            DiagCode::FallsThroughRegion => "AN209",
            DiagCode::BadCallee => "AN210",
            DiagCode::UnreachableProcedure => "AN301",
            DiagCode::RecursionDetected => "AN302",
            DiagCode::TemplateImbalance => "AN401",
            DiagCode::ModelMismatch => "AN402",
            DiagCode::DtbPressure => "AN501",
            DiagCode::BranchNeverTaken => "AN601",
            DiagCode::BranchAlwaysTaken => "AN602",
            DiagCode::UnreachableCode => "AN603",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::CodecDefect
            | DiagCode::ImageMismatch
            | DiagCode::ImageUndecodable
            | DiagCode::StackUnderflow
            | DiagCode::StackImbalance
            | DiagCode::ReturnImbalance
            | DiagCode::JumpOutOfRange
            | DiagCode::JumpCrossesProcedure
            | DiagCode::UninitializedLocal
            | DiagCode::SlotOutOfRange
            | DiagCode::FallsThroughRegion
            | DiagCode::BadCallee
            | DiagCode::TemplateImbalance
            | DiagCode::ModelMismatch => Severity::Error,
            DiagCode::MaybeUninitializedLocal
            | DiagCode::UnreachableProcedure
            | DiagCode::DtbPressure
            | DiagCode::UnreachableCode => Severity::Warning,
            DiagCode::RecursionDetected
            | DiagCode::BranchNeverTaken
            | DiagCode::BranchAlwaysTaken => Severity::Info,
        }
    }
}

impl std::fmt::Display for DiagCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: a code, a source location in DIR address space, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The diagnostic class.
    pub code: DiagCode,
    /// DIR address the finding anchors to, when it has one.
    pub at: Option<u32>,
    /// Name of the owning region (`<prelude>` or the procedure name).
    pub region: Option<String>,
    /// What went wrong, with the concrete operands.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with no location.
    pub fn global(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            at: None,
            region: None,
            message: message.into(),
        }
    }

    /// Builds a diagnostic anchored to a DIR address inside a region.
    pub fn at(
        code: DiagCode,
        addr: u32,
        region: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            at: Some(addr),
            region: Some(region.into()),
            message: message.into(),
        }
    }

    /// The severity, fixed by the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl std::fmt::Display for Diagnostic {
    /// `error[AN201] main @14: operand stack underflow (depth 0, pops 2)`
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.code)?;
        if let Some(region) = &self.region {
            write!(f, " {region}")?;
        }
        if let Some(at) = self.at {
            write!(f, " @{at}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_have_unique_ids_and_fixed_severities() {
        let mut ids: Vec<&str> = DiagCode::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), DiagCode::ALL.len(), "duplicate diagnostic ids");
        assert_eq!(DiagCode::StackUnderflow.severity(), Severity::Error);
        assert_eq!(DiagCode::DtbPressure.severity(), Severity::Warning);
        assert_eq!(DiagCode::RecursionDetected.severity(), Severity::Info);
        assert_eq!(DiagCode::UnreachableCode.severity(), Severity::Warning);
        assert_eq!(DiagCode::BranchNeverTaken.severity(), Severity::Info);
    }

    #[test]
    fn every_code_matches_the_anxyz_grammar() {
        for code in DiagCode::ALL {
            let id = code.id();
            assert_eq!(id.len(), 5, "{id}: ids are exactly AN + 3 digits");
            assert!(id.starts_with("AN"), "{id}: ids start with AN");
            let digits = &id[2..];
            assert!(
                digits.chars().all(|c| c.is_ascii_digit()),
                "{id}: suffix must be numeric"
            );
            // The leading digit names the owning pass (1..=6 today); a
            // zero would collide with nothing and means a typo.
            assert!(!digits.starts_with('0'), "{id}: pass digit must be nonzero");
        }
    }

    #[test]
    fn rendering_includes_code_location_and_message() {
        let d = Diagnostic::at(DiagCode::StackUnderflow, 14, "main", "pops 2 at depth 0");
        let s = d.to_string();
        assert!(s.contains("error[AN201]"));
        assert!(s.contains("main @14"));
        assert!(s.contains("pops 2"));
    }
}
