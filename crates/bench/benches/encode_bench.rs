//! Criterion benchmarks of the encoding dimension: encode and decode
//! throughput of each scheme on a representative program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dir::encode::SchemeKind;
use std::hint::black_box;

fn program() -> dir::Program {
    let hir = hlr::programs::QUEENS.compile().expect("sample compiles");
    dir::compiler::compile(&hir)
}

fn bench_encode(c: &mut Criterion) {
    let prog = program();
    let mut group = c.benchmark_group("encode");
    for scheme in SchemeKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| b.iter(|| black_box(scheme.encode(black_box(&prog)))),
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let prog = program();
    let mut group = c.benchmark_group("decode_all");
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&prog);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &image,
            |b, image| b.iter(|| black_box(image.decode_all().expect("round trip"))),
        );
    }
    group.finish();
}

fn bench_decode_single(c: &mut Criterion) {
    let prog = program();
    let mut group = c.benchmark_group("decode_one");
    for scheme in SchemeKind::all() {
        let image = scheme.encode(&prog);
        let mid = (image.len() / 2) as u32;
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &image,
            |b, image| b.iter(|| black_box(image.decode(black_box(mid)).expect("valid index"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_decode_single);
criterion_main!(benches);
