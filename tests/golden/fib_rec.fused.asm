.globals 0
.entry main
; prelude
    call_idx 1
    halt
.proc fib args=1 frame=1 returns=true
    cmp_const_br lt 0 2 5
    push_local 0
    return
    push_local 0
    push_const 1
    bin sub
    call_idx 0
    push_local 0
    push_const 2
    bin sub
    call_idx 0
    bin add
    return
    push_const 0
    return
.end
.proc main args=0 frame=0 returns=false
    push_const 15
    call_idx 0
    write
    return
.end
