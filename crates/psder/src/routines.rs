//! The semantic-routine library: one micro-program per [`RoutineId`].
//!
//! These are the procedures a PSDER's calls steer into (§3.1): generalised
//! routines that take their parameters from the operand stack, perform one
//! DIR-level semantic action, and return to IU2. Their micro-word counts
//! are the measured source of the paper's parameter `x` (average time spent
//! in the semantic routines per DIR instruction).

use crate::micro::MicroOp::*;
use crate::micro::MicroWord;
use crate::micro::Reg::*;
use crate::mword;
use crate::short::{RoutineId, ROUTINE_COUNT};

/// The complete routine library, indexed by [`RoutineId::index`].
#[derive(Debug, Clone)]
pub struct RoutineLib {
    routines: Vec<Vec<MicroWord>>,
}

impl Default for RoutineLib {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutineLib {
    /// Builds the library.
    pub fn new() -> RoutineLib {
        let mut routines = vec![Vec::new(); ROUTINE_COUNT];
        for id in RoutineId::all() {
            routines[id.index()] = build(id);
        }
        RoutineLib { routines }
    }

    /// The micro-program of `id`.
    pub fn words(&self, id: RoutineId) -> &[MicroWord] {
        &self.routines[id.index()]
    }

    /// Cycle cost of `id` (one cycle per word): the routine's contribution
    /// to the paper's `x`.
    pub fn cost(&self, id: RoutineId) -> u64 {
        self.words(id).len() as u64
    }

    /// Total size of the library in micro-words — the "size of the
    /// semantic routines" that must fit in the fast level-1 store (§3.3).
    pub fn total_words(&self) -> usize {
        self.routines.iter().map(Vec::len).sum()
    }
}

/// Builds the micro-program for one routine.
fn build(id: RoutineId) -> Vec<MicroWord> {
    match id {
        // Pops b then a, pushes a op b.
        RoutineId::Bin(op) => vec![
            mword![Pop(B), Pop(A)],
            mword![
                Alu {
                    op,
                    a: A,
                    b: B,
                    dst: R
                },
                Push(R)
            ],
        ],
        RoutineId::NegR => vec![mword![Pop(A)], mword![NegOp { src: A, dst: R }, Push(R)]],
        RoutineId::NotR => vec![mword![Pop(A)], mword![NotOp { src: A, dst: R }, Push(R)]],
        // Stack on entry: [..., index, base, len].
        RoutineId::LoadArrLocal | RoutineId::LoadArrGlobal => {
            let load = if id == RoutineId::LoadArrLocal {
                LoadFrame { addr: A, dst: R }
            } else {
                LoadGlobal { addr: A, dst: R }
            };
            vec![
                mword![Pop(B), Pop(A), Pop(C)], // len, base, index
                mword![
                    CheckIdx { idx: C, len: B },
                    Alu {
                        op: dir::AluOp::Add,
                        a: A,
                        b: C,
                        dst: A
                    }
                ],
                mword![load, Push(R)],
            ]
        }
        // Stack on entry: [..., index, value, base, len].
        RoutineId::StoreArrLocal | RoutineId::StoreArrGlobal => {
            let store = if id == RoutineId::StoreArrLocal {
                StoreFrame { addr: A, src: C }
            } else {
                StoreGlobal { addr: A, src: C }
            };
            vec![
                mword![Pop(B), Pop(A), Pop(C)], // len, base, value
                mword![Pop(D)],                 // index
                mword![
                    CheckIdx { idx: D, len: B },
                    Alu {
                        op: dir::AluOp::Add,
                        a: A,
                        b: D,
                        dst: A
                    }
                ],
                mword![store],
            ]
        }
        // Stack on entry: [..., cond, if_zero, if_nonzero]; pushes the
        // chosen DIR address for INTERP-stack.
        RoutineId::Select => vec![
            mword![Pop(D), Pop(C), Pop(A)], // if_nonzero, if_zero, cond
            mword![
                SelectZero {
                    cond: A,
                    if_zero: C,
                    if_nonzero: D,
                    dst: R
                },
                Push(R)
            ],
        ],
        // Stack on entry: [..., a, b, target, next]; pushes `target` when
        // `a op b` is false, else `next`.
        RoutineId::CmpBr(op) => vec![
            mword![Pop(D), Pop(C)], // next, target
            mword![Pop(B), Pop(A)], // b, a
            mword![Alu {
                op,
                a: A,
                b: B,
                dst: A
            }],
            mword![
                SelectZero {
                    cond: A,
                    if_zero: C,
                    if_nonzero: D,
                    dst: R
                },
                Push(R)
            ],
        ],
        // Stack on entry: [..., args..., proc, next]; builds the callee
        // frame (popping the args), saves `next`, pushes the entry address.
        RoutineId::DirCall => vec![
            mword![Pop(B), Pop(A)], // next, proc
            mword![PushRa(B), NewFrame { proc: A }],
            mword![EntryOf { proc: A, dst: R }, Push(R)],
        ],
        RoutineId::DirRet => vec![mword![DropFrame, PopRa(R)], mword![Push(R)]],
        RoutineId::WriteR => vec![mword![Pop(A), Output(A)]],
        RoutineId::HaltR => vec![mword![HaltOp]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_routine_is_built() {
        let lib = RoutineLib::new();
        for id in RoutineId::all() {
            assert!(!lib.words(id).is_empty(), "{id:?} missing");
        }
    }

    #[test]
    fn costs_match_word_counts() {
        let lib = RoutineLib::new();
        assert_eq!(lib.cost(RoutineId::Bin(dir::AluOp::Add)), 2);
        assert_eq!(lib.cost(RoutineId::LoadArrLocal), 3);
        assert_eq!(lib.cost(RoutineId::StoreArrGlobal), 4);
        assert_eq!(lib.cost(RoutineId::CmpBr(dir::AluOp::Lt)), 4);
        assert_eq!(lib.cost(RoutineId::DirCall), 3);
        assert_eq!(lib.cost(RoutineId::WriteR), 1);
        assert_eq!(lib.cost(RoutineId::HaltR), 1);
    }

    #[test]
    fn library_fits_a_small_fast_store() {
        // The point of the PSDER: semantic routines are compact enough for
        // level-1 residence. ~37 routines, a few words each.
        let lib = RoutineLib::new();
        assert!(lib.total_words() < 256, "library is {}", lib.total_words());
    }

    #[test]
    fn routines_end_by_falling_off_the_end() {
        // The last word returns control to IU2 implicitly; no routine may
        // be empty (checked above) and every word respects the issue width
        // (checked by MicroWord::new at construction).
        let lib = RoutineLib::new();
        for id in RoutineId::all() {
            for w in lib.words(id) {
                assert!(w.ops().len() <= crate::micro::MicroWord::WIDTH);
            }
        }
    }
}
