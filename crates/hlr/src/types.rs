//! The RAUL type system: integer and boolean scalars plus integer arrays.

/// A RAUL type.
///
/// RAUL is deliberately small: the paper's arguments concern representation
/// levels, not type-system power, so scalars and fixed-size integer arrays
/// suffice to exercise operand addressing, contour-scoped name binding and
/// the array-indexing semantic routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean, represented as 0/1 at the DIR level.
    Bool,
    /// Fixed-size array of integers; the payload is the element count.
    IntArray(u32),
}

impl Type {
    /// Returns `true` for scalar (non-array) types.
    pub fn is_scalar(self) -> bool {
        matches!(self, Type::Int | Type::Bool)
    }

    /// Number of value slots this type occupies in a frame or the global
    /// area.
    pub fn slot_count(self) -> u32 {
        match self {
            Type::Int | Type::Bool => 1,
            Type::IntArray(n) => n,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::IntArray(n) => write!(f, "int[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_classification() {
        assert!(Type::Int.is_scalar());
        assert!(Type::Bool.is_scalar());
        assert!(!Type::IntArray(4).is_scalar());
    }

    #[test]
    fn slot_counts() {
        assert_eq!(Type::Int.slot_count(), 1);
        assert_eq!(Type::Bool.slot_count(), 1);
        assert_eq!(Type::IntArray(16).slot_count(), 16);
    }

    #[test]
    fn display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::IntArray(3).to_string(), "int[3]");
    }
}
