//! Pass 4: static DTB pressure estimation.
//!
//! The DTB caches one translation unit per DIR address, so a region's
//! *static translation working set* is its instruction count (entries) and
//! the summed length of its translation sequences (storage words). The
//! hottest candidate is the largest natural-loop body — the span between a
//! backward branch and its target — because that is the set of entries the
//! DTB must hold simultaneously for the loop to run miss-free, which is
//! the locality argument the paper's DTB design rests on. From that bound
//! the pass recommends a [`Geometry`] and warns when the hot set exceeds
//! the default DTB the CLI configures.

use dir::program::Program;
use memsim::Geometry;
use psder::translate;

use crate::absint::regions;
use crate::diag::{DiagCode, Diagnostic};

/// The default DTB entry count the CLI configures (`raul --dtb-entries`).
pub const DEFAULT_DTB_ENTRIES: usize = 64;

/// Translation working set of one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPressure {
    /// `<prelude>` or the procedure name.
    pub name: String,
    /// DTB entries the whole region needs (one per instruction).
    pub insts: u32,
    /// Translation storage the whole region needs, in short-instruction
    /// words.
    pub words: u32,
}

/// The statically hottest span: the largest loop body, or the largest
/// region when the program has no loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpan {
    /// Region owning the span.
    pub region: String,
    /// First DIR address of the span.
    pub start: u32,
    /// One past the last DIR address.
    pub end: u32,
    /// DTB entries the span needs.
    pub insts: u32,
    /// Translation words the span needs.
    pub words: u32,
    /// Whether the span is a loop body (`false` = whole-region fallback).
    pub is_loop: bool,
}

/// What the pressure pass estimated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureReport {
    /// Per-region working sets, prelude first.
    pub regions: Vec<RegionPressure>,
    /// Whole-program translation storage bound in words.
    pub total_words: u32,
    /// The hottest span (absent only for empty programs).
    pub hot: Option<HotSpan>,
    /// Smallest 4-way geometry holding the hot span miss-free.
    pub recommended: Geometry,
    /// Whether the hot span fits the default DTB.
    pub fits_default: bool,
}

/// Computes the static DTB pressure bound of one program, with no
/// diagnostics: the admission-control entry point. A pool supervisor
/// calls this before admitting a tenant to reject programs whose
/// translation working set exceeds its watermark, or to right-size the
/// tenant's DTB to [`PressureReport::recommended`].
pub fn bound(program: &Program) -> PressureReport {
    let mut diags = Vec::new();
    estimate(program, &mut diags)
}

/// Estimates DTB pressure, appending a [`DiagCode::DtbPressure`] warning
/// when the hottest span cannot fit the default DTB.
pub(crate) fn estimate(program: &Program, diags: &mut Vec<Diagnostic>) -> PressureReport {
    // Translation length per DIR address. `next` only sizes the sequence's
    // continuation operand, so `i + 1` matches what the DTB would install.
    let words_at: Vec<u32> = program
        .code
        .iter()
        .enumerate()
        .map(|(i, &inst)| translate(inst, i as u32 + 1).len() as u32)
        .collect();
    let span_words =
        |start: u32, end: u32| words_at[start as usize..end as usize].iter().sum::<u32>();

    let mut region_pressure = Vec::new();
    let mut hot: Option<HotSpan> = None;
    let mut consider = |candidate: HotSpan| {
        if hot.as_ref().is_none_or(|h| candidate.insts > h.insts) {
            hot = Some(candidate);
        }
    };
    for r in regions(program) {
        if r.start >= r.end {
            continue;
        }
        region_pressure.push(RegionPressure {
            name: r.name.clone(),
            insts: r.end - r.start,
            words: span_words(r.start, r.end),
        });
        // Loop bodies: a backward branch at `i` targeting `t <= i` keeps
        // the span `[t, i]` live in the DTB across iterations.
        let mut found_loop = false;
        for i in r.start..r.end {
            if let Some(t) = program.code[i as usize].target() {
                if t <= i && t >= r.start {
                    found_loop = true;
                    consider(HotSpan {
                        region: r.name.clone(),
                        start: t,
                        end: i + 1,
                        insts: i + 1 - t,
                        words: span_words(t, i + 1),
                        is_loop: true,
                    });
                }
            }
        }
        if !found_loop {
            consider(HotSpan {
                region: r.name.clone(),
                start: r.start,
                end: r.end,
                insts: r.end - r.start,
                words: span_words(r.start, r.end),
                is_loop: false,
            });
        }
    }

    let hot_insts = hot.as_ref().map(|h| h.insts).unwrap_or(0) as usize;
    let fits_default = hot_insts <= DEFAULT_DTB_ENTRIES;
    if let Some(h) = hot.as_ref().filter(|_| !fits_default) {
        diags.push(Diagnostic::at(
            DiagCode::DtbPressure,
            h.start,
            h.region.clone(),
            format!(
                "hottest {} needs {} DTB entries ({} words); the default DTB holds {}",
                if h.is_loop { "loop" } else { "region" },
                h.insts,
                h.words,
                DEFAULT_DTB_ENTRIES
            ),
        ));
    }

    PressureReport {
        total_words: words_at.iter().sum(),
        regions: region_pressure,
        hot,
        recommended: Geometry::with_capacity(hot_insts.max(1), 4),
        fits_default,
    }
}
