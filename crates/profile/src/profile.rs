//! Execution profiling: per-instruction and per-procedure execution
//! counts derived from a machine's DIR-address trace.
//!
//! The paper's whole argument rests on skewed execution profiles — a small
//! hot working set that earns its translation many times over. This module
//! makes the skew measurable: coverage curves ("what fraction of dynamic
//! execution do the hottest k static instructions account for?") are the
//! direct empirical justification for a small DTB.

use dir::program::Program;

/// A per-instruction execution profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Execution count per static instruction index.
    pub counts: Vec<u64>,
    /// Total dynamic instructions.
    pub total: u64,
}

impl Profile {
    /// Builds a profile from a recorded DIR-address trace (see
    /// [`Machine::set_trace`](uhm::Machine::set_trace)).
    pub fn from_trace(program: &Program, trace: &[u32]) -> Profile {
        let mut counts = vec![0u64; program.len()];
        for &addr in trace {
            counts[addr as usize] += 1;
        }
        Profile {
            counts,
            total: trace.len() as u64,
        }
    }

    /// Static instructions that executed at least once.
    pub fn touched(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The `n` hottest instructions as `(index, count)`, descending by
    /// count; ties break deterministically by ascending instruction
    /// index, so the listing is stable run to run.
    pub fn hottest(&self, n: usize) -> Vec<(u32, u64)> {
        let mut pairs: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }

    /// Fraction of dynamic execution covered by the hottest `k` static
    /// instructions — the locality skew a DTB of capacity `k` can exploit
    /// at best (with perfect replacement).
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut counts: Vec<u64> = self.counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = counts.iter().take(k).sum();
        hot as f64 / self.total as f64
    }

    /// Aggregates execution counts per procedure, as `(name, dynamic
    /// count)` in the program's procedure order; the prelude is labelled
    /// `<prelude>`.
    pub fn by_procedure(&self, program: &Program) -> Vec<(String, u64)> {
        let mut rows = Vec::with_capacity(program.procs.len() + 1);
        let prelude_end = program
            .procs
            .iter()
            .map(|p| p.entry)
            .min()
            .unwrap_or(program.len() as u32);
        let sum_range =
            |a: u32, b: u32| -> u64 { self.counts[a as usize..b as usize].iter().sum() };
        rows.push(("<prelude>".to_string(), sum_range(0, prelude_end)));
        for p in &program.procs {
            rows.push((p.name.clone(), sum_range(p.entry, p.end)));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;
    use uhm::{DtbConfig, Machine, Mode};

    fn profile_of(src: &str) -> (Program, Profile) {
        let program = dir::compiler::compile(&hlr::compile(src).unwrap());
        let mut machine = Machine::new(&program, SchemeKind::Packed);
        machine.set_trace(true);
        let report = machine.run(&Mode::Interpreter).unwrap();
        let profile = Profile::from_trace(&program, &report.metrics.trace.unwrap());
        (program, profile)
    }

    #[test]
    fn counts_sum_to_total() {
        let (_, p) = profile_of("proc main() begin int i; for i := 0 to 9 do write i; end");
        assert_eq!(p.counts.iter().sum::<u64>(), p.total);
        assert!(p.total > 0);
    }

    #[test]
    fn loop_bodies_dominate() {
        let (_, p) = profile_of(
            "proc main() begin
                int i; int s := 0;
                for i := 0 to 999 do s := s + i;
                write s;
            end",
        );
        // The hottest instruction must execute ~1000 times.
        let (_, hottest) = p.hottest(1)[0];
        assert!(hottest >= 1000);
        // A handful of instructions cover almost everything.
        assert!(p.coverage(12) > 0.9, "coverage {}", p.coverage(12));
    }

    #[test]
    fn straightline_has_flat_profile() {
        let program = dir::compiler::compile(&hlr::programs::STRAIGHTLINE.compile().unwrap());
        let mut machine = Machine::new(&program, SchemeKind::Packed);
        machine.set_trace(true);
        let report = machine.run(&Mode::Interpreter).unwrap();
        let p = Profile::from_trace(&program, &report.metrics.trace.unwrap());
        // Every instruction executes exactly once: coverage is linear.
        assert_eq!(p.touched() as u64, p.total);
        let k = p.counts.len() / 2;
        let c = p.coverage(k);
        assert!((c - 0.5).abs() < 0.02, "coverage({k}) = {c}");
    }

    #[test]
    fn by_procedure_attributes_counts() {
        let (program, p) = profile_of(
            "proc helper(int n) -> int begin return n + 1; end
             proc main() begin
                int i;
                for i := 0 to 9 do i := helper(i);
                write i;
             end",
        );
        let rows = p.by_procedure(&program);
        assert_eq!(rows.len(), 3); // prelude + 2 procs
        let helper = rows.iter().find(|(n, _)| n == "helper").unwrap();
        assert!(helper.1 > 0);
        let total: u64 = rows.iter().map(|(_, c)| c).sum();
        assert_eq!(total, p.total);
    }

    #[test]
    fn coverage_of_zero_hottest_is_zero() {
        let (_, p) = profile_of("proc main() begin int i; for i := 0 to 9 do write i; end");
        assert_eq!(p.coverage(0), 0.0);
    }

    #[test]
    fn coverage_saturates_at_program_length() {
        let (program, p) = profile_of("proc main() begin int i; for i := 0 to 9 do write i; end");
        // k == static length and any k beyond it cover all of execution.
        for k in [program.len(), program.len() + 1, program.len() * 10] {
            let c = p.coverage(k);
            assert!((c - 1.0).abs() < 1e-12, "coverage({k}) = {c}");
        }
    }

    #[test]
    fn empty_trace_has_zero_coverage() {
        let program =
            dir::compiler::compile(&hlr::compile("proc main() begin write 1; end").unwrap());
        let p = Profile::from_trace(&program, &[]);
        assert_eq!(p.total, 0);
        assert_eq!(p.touched(), 0);
        assert!(p.hottest(4).is_empty());
        for k in [0, 1, program.len()] {
            assert_eq!(p.coverage(k), 0.0, "coverage({k}) of empty trace");
        }
    }

    #[test]
    fn hottest_breaks_count_ties_by_ascending_index() {
        // Regression: `hottest` once depended on the (unstable) sort
        // order for equal counts, so tied instructions could come back
        // in any order and profile listings diffed across runs.
        let p = Profile {
            counts: vec![5, 7, 5, 7, 0, 5],
            total: 29,
        };
        assert_eq!(p.hottest(10), vec![(1, 7), (3, 7), (0, 5), (2, 5), (5, 5)]);
        // Truncation keeps the deterministic prefix.
        assert_eq!(p.hottest(3), vec![(1, 7), (3, 7), (0, 5)]);
    }

    #[test]
    fn coverage_is_monotone_in_k() {
        // Property: on random traces, coverage never decreases as k grows,
        // and is bounded by [0, 1].
        let mut rng = hlr::rng::Rng::new(0x636f_7665);
        for case in 0..32 {
            let len = rng.range_usize(1, 40);
            let steps = rng.range_usize(0, 400);
            let mut counts = vec![0u64; len];
            for _ in 0..steps {
                counts[rng.range_usize(0, len)] += 1;
            }
            let p = Profile {
                counts,
                total: steps as u64,
            };
            let mut prev = 0.0f64;
            for k in 0..=len + 2 {
                let c = p.coverage(k);
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&c),
                    "case {case}: coverage({k}) = {c} out of range"
                );
                assert!(
                    c >= prev - 1e-12,
                    "case {case}: coverage({k}) = {c} < coverage({}) = {prev}",
                    k - 1
                );
                prev = c;
            }
        }
    }

    #[test]
    fn coverage_matches_dtb_upper_bound() {
        // The DTB's hit ratio can never exceed the coverage of its
        // capacity (perfect replacement bound).
        let program = dir::compiler::compile(&hlr::programs::QUEENS.compile().unwrap());
        let mut machine = Machine::new(&program, SchemeKind::Packed);
        machine.set_trace(true);
        let interp = machine.run(&Mode::Interpreter).unwrap();
        let profile = Profile::from_trace(&program, &interp.metrics.trace.unwrap());
        for cap in [8usize, 32] {
            let r = machine
                .run(&Mode::Dtb(DtbConfig::with_capacity(cap)))
                .unwrap();
            let h = r.metrics.dtb.unwrap().hit_ratio();
            let bound = profile.coverage(cap);
            assert!(
                h <= bound + 1e-9,
                "cap {cap}: hit ratio {h} exceeds coverage bound {bound}"
            );
        }
    }
}
