//! Benchmarks of the three machine configurations (host-side throughput
//! of the simulator, not simulated cycles). The runs use `Machine::run`,
//! i.e. the `NullSink` path — these numbers are the baseline that tracing
//! must not perturb when disabled.

use dir::encode::SchemeKind;
use std::hint::black_box;
use uhm::{DtbConfig, Machine, Mode};
use uhm_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("machine_bench");

    let hir = hlr::programs::GCD_CHAIN.compile().expect("sample compiles");
    let prog = dir::compiler::compile(&hir);
    let machine = Machine::new(&prog, SchemeKind::Huffman);
    let modes: Vec<(&str, Mode)> = vec![
        ("interpreter", Mode::Interpreter),
        ("dtb", Mode::Dtb(DtbConfig::with_capacity(64))),
        (
            "icache",
            Mode::ICache {
                geometry: memsim::Geometry::new(32, 4),
            },
        ),
    ];
    for (label, mode) in &modes {
        h.bench(&format!("machine/{label}"), || {
            black_box(machine.run(black_box(mode)).expect("trap-free"))
        });
    }

    let hir = hlr::programs::FIB_REC.compile().expect("sample compiles");
    let prog = dir::compiler::compile(&hir);
    for scheme in SchemeKind::all() {
        let machine = Machine::new(&prog, scheme);
        h.bench(&format!("dtb_by_scheme/{}", scheme.label()), || {
            black_box(
                machine
                    .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
                    .expect("trap-free"),
            )
        });
    }

    h.finish();
}
