//! **E6 — the §3.2 compaction claim:** Wilner reports 25–75% memory
//! reduction from encoding; Hehner claims up to 75%. This experiment
//! measures the reduction of every encoding scheme against the
//! byte-aligned baseline on every workload, at both semantic tiers.
//!
//! Run with `cargo run -p uhm-bench --bin encoding_report --release`.
//! With `--json`, emits a versioned RunReport instead of the text tables.

use dir::encode::SchemeKind;
use dir::stats::{ImageSummary, StaticStats};
use telemetry::Json;
use uhm_bench::corpus::tiers;
use uhm_bench::{bench_report, json_flag, workloads};

const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::Packed,
    SchemeKind::Contextual,
    SchemeKind::Huffman,
    SchemeKind::PairHuffman,
    SchemeKind::ValueHuffman,
];

fn main() {
    let json = json_flag();
    if !json {
        println!("Encoding compaction versus the byte-aligned baseline (program bits)\n");
        println!(
            "{:>14} {:>6} {:>10} | {:>16} {:>16} {:>16} {:>16} {:>16}",
            "workload", "tier", "byte bits", "packed", "contextual", "huffman", "pair", "valuehuff"
        );
        println!("{}", "-".repeat(121));
    }
    let mut rows = Vec::new();
    let mut worst: f64 = 1.0;
    let mut best: f64 = 0.0;
    for w in workloads() {
        for (tier, prog) in tiers(&w) {
            let baseline = SchemeKind::ByteAligned.encode(prog).program_bits();
            let mut cells = Vec::new();
            let mut scheme_rows = Vec::new();
            for scheme in SCHEMES {
                let s = ImageSummary::of(&scheme.encode(prog));
                let red = s.reduction_vs(baseline);
                worst = worst.min(red);
                best = best.max(red);
                cells.push(format!("{:>7} ({:>4.0}%)", s.program_bits, red * 100.0));
                scheme_rows.push(Json::obj(vec![
                    ("scheme", scheme.label().into()),
                    ("program_bits", s.program_bits.into()),
                    ("reduction", red.into()),
                ]));
            }
            if json {
                rows.push(Json::obj(vec![
                    ("workload", w.name.into()),
                    ("tier", tier.into()),
                    ("baseline_bits", baseline.into()),
                    ("schemes", Json::Arr(scheme_rows)),
                ]));
            } else {
                println!(
                    "{:>14} {:>6} {:>10} | {}",
                    w.name,
                    tier,
                    baseline,
                    cells.join(" ")
                );
            }
        }
    }
    if !json {
        println!(
            "\nReduction range across all points: {:.0}%..{:.0}% (Wilner reported 25-75%).",
            worst * 100.0,
            best * 100.0
        );
        println!("\nStatic opcode statistics (entropy justifies the frequency coding):\n");
        println!(
            "{:>14} {:>8} {:>10} {:>24}",
            "workload", "instrs", "H(opcode)", "top-3 opcodes"
        );
    }
    for w in workloads() {
        let st = StaticStats::collect(&w.base);
        let top: Vec<String> = st
            .top_opcodes(3)
            .into_iter()
            .map(|(op, n)| format!("{op:?}:{n}"))
            .collect();
        if json {
            rows.push(Json::obj(vec![
                ("workload", w.name.into()),
                ("static_instructions", (st.instructions as u64).into()),
                ("opcode_entropy", st.opcode_entropy.into()),
                (
                    "top_opcodes",
                    Json::Arr(top.iter().map(|t| t.clone().into()).collect()),
                ),
            ]));
        } else {
            println!(
                "{:>14} {:>8} {:>10.2} {:>24}",
                w.name,
                st.instructions,
                st.opcode_entropy,
                top.join(" ")
            );
        }
    }
    if json {
        let config = Json::obj(vec![
            ("baseline", "byte".into()),
            ("reduction_min", worst.into()),
            ("reduction_max", best.into()),
        ]);
        println!("{}", bench_report("encoding_report", config, rows).render());
    }
}
