//! Canonical Huffman coding over small symbol alphabets.
//!
//! Implements the "sophisticated encoding of the Huffman type" from the
//! paper's Section 3.2: symbols that occur often in the *static* program
//! representation get short codes. Decoding walks a binary tree bit by bit;
//! [`Tree::decode`] reports the number of bits consumed so that the decode
//! cost model can charge the paper's "two instructions per level of
//! decoding".

use crate::bitstream::{BitReader, BitWriter, BitsExhausted};

/// A Huffman codebook for symbols `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    /// `codes[s]` is the (code, width) for symbol `s`; zero-frequency
    /// symbols still receive a code so that any program can be encoded.
    codes: Vec<(u64, u32)>,
    /// Flattened decode tree: nodes of `(left, right)`, negative values are
    /// `-(symbol + 1)` leaves, non-negative are node indices. Node 0 is the
    /// root.
    nodes: Vec<(i32, i32)>,
}

impl Tree {
    /// Builds a codebook from symbol frequencies.
    ///
    /// Zero frequencies are bumped to one so every symbol remains
    /// encodable (the paper's encodings must handle any legal program, not
    /// just those seen when gathering statistics).
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty.
    pub fn from_frequencies(freqs: &[u64]) -> Tree {
        assert!(!freqs.is_empty(), "alphabet must be non-empty");
        let n = freqs.len();
        if n == 1 {
            // Degenerate alphabet: one symbol, one-bit code.
            return Tree {
                codes: vec![(0, 1)],
                nodes: vec![(-1, -1)],
            };
        }
        // Huffman's algorithm with a simple sorted work list (alphabets here
        // are tiny, so O(n^2) is irrelevant).
        #[derive(Debug)]
        enum Node {
            Leaf(usize),
            Internal(Box<Node>, Box<Node>),
        }
        let mut work: Vec<(u64, u64, Node)> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| (f.max(1), i as u64, Node::Leaf(i)))
            .collect();
        let mut tiebreak = n as u64;
        while work.len() > 1 {
            // Stable selection: lowest frequency, then lowest tiebreak, so
            // the tree is deterministic.
            work.sort_by_key(|&(f, t, _)| (f, t));
            let (f1, _, n1) = work.remove(0);
            let (f2, _, n2) = work.remove(0);
            work.push((
                f1 + f2,
                tiebreak,
                Node::Internal(Box::new(n1), Box::new(n2)),
            ));
            tiebreak += 1;
        }
        let root = work.pop().expect("work list non-empty").2;

        let mut codes = vec![(0u64, 0u32); n];
        let mut nodes: Vec<(i32, i32)> = Vec::new();

        fn build(
            node: &Node,
            code: u64,
            depth: u32,
            codes: &mut [(u64, u32)],
            nodes: &mut Vec<(i32, i32)>,
        ) -> i32 {
            match node {
                Node::Leaf(sym) => {
                    codes[*sym] = (code, depth.max(1));
                    -((*sym as i32) + 1)
                }
                Node::Internal(l, r) => {
                    let idx = nodes.len();
                    nodes.push((0, 0));
                    let li = build(l, code << 1, depth + 1, codes, nodes);
                    let ri = build(r, (code << 1) | 1, depth + 1, codes, nodes);
                    nodes[idx] = (li, ri);
                    idx as i32
                }
            }
        }
        build(&root, 0, 0, &mut codes, &mut nodes);
        Tree { codes, nodes }
    }

    /// Number of symbols in the alphabet.
    pub fn alphabet_len(&self) -> usize {
        self.codes.len()
    }

    /// The code width in bits for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn width(&self, symbol: usize) -> u32 {
        self.codes[symbol].1
    }

    /// Writes the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn encode(&self, symbol: usize, out: &mut BitWriter) {
        let (code, width) = self.codes[symbol];
        out.write(code, width);
    }

    /// Reads one symbol, returning `(symbol, bits_consumed)`.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if the stream ends mid-code.
    pub fn decode(&self, input: &mut BitReader<'_>) -> Result<(usize, u32), BitsExhausted> {
        // Degenerate single-symbol alphabet still consumes its 1-bit code.
        if self.codes.len() == 1 {
            input.read(1)?;
            return Ok((0, 1));
        }
        let mut node = 0i32;
        let mut bits = 0u32;
        loop {
            let bit = input.read_bit()?;
            bits += 1;
            let (l, r) = self.nodes[node as usize];
            let next = if bit { r } else { l };
            if next < 0 {
                return Ok(((-next - 1) as usize, bits));
            }
            node = next;
        }
    }

    /// Approximate size in bits of the decode structure, charged to the
    /// interpreter under the encoding-size accounting (two 16-bit links per
    /// node).
    pub fn table_bits(&self) -> u64 {
        self.nodes.len() as u64 * 32
    }

    /// Expected code width in bits under the given frequency distribution.
    pub fn expected_width(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().map(|&f| f.max(1)).sum();
        self.codes
            .iter()
            .zip(freqs)
            .map(|(&(_, w), &f)| w as f64 * f.max(1) as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Shannon entropy (bits/symbol) of a frequency distribution, the lower
/// bound on any prefix code's expected width.
pub fn entropy(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], symbols: &[usize]) {
        let tree = Tree::from_frequencies(freqs);
        let mut w = BitWriter::new();
        for &s in symbols {
            tree.encode(s, &mut w);
        }
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        for &s in symbols {
            let (got, bits) = tree.decode(&mut r).unwrap();
            assert_eq!(got, s);
            assert_eq!(bits, tree.width(s));
        }
        assert_eq!(r.position(), len);
    }

    #[test]
    fn skewed_distribution_round_trips() {
        round_trip(&[100, 10, 5, 1], &[0, 1, 2, 3, 0, 0, 1, 3, 2, 0]);
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let tree = Tree::from_frequencies(&[1000, 10, 10, 10]);
        assert!(tree.width(0) < tree.width(1));
        assert_eq!(tree.width(0), 1);
    }

    #[test]
    fn uniform_distribution_is_balanced() {
        let tree = Tree::from_frequencies(&[5, 5, 5, 5]);
        for s in 0..4 {
            assert_eq!(tree.width(s), 2);
        }
    }

    #[test]
    fn zero_frequency_symbols_remain_encodable() {
        round_trip(&[100, 0, 0, 50], &[1, 2, 0, 3]);
    }

    #[test]
    fn single_symbol_alphabet() {
        round_trip(&[7], &[0, 0, 0]);
    }

    #[test]
    fn two_symbol_alphabet() {
        let tree = Tree::from_frequencies(&[1, 1]);
        assert_eq!(tree.width(0), 1);
        assert_eq!(tree.width(1), 1);
        round_trip(&[1, 1], &[0, 1, 1, 0]);
    }

    #[test]
    fn expected_width_at_least_entropy() {
        let freqs = [50u64, 30, 12, 5, 2, 1];
        let tree = Tree::from_frequencies(&freqs);
        let h = entropy(&freqs);
        let w = tree.expected_width(&freqs);
        assert!(w >= h - 1e-9, "expected width {w} below entropy {h}");
        assert!(w <= h + 1.0, "Huffman is within 1 bit of entropy");
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs = [13u64, 7, 7, 3, 2, 1, 1, 1];
        let tree = Tree::from_frequencies(&freqs);
        let kraft: f64 = (0..freqs.len())
            .map(|s| 2f64.powi(-(tree.width(s) as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn codes_are_prefix_free() {
        let freqs = [40u64, 20, 10, 8, 4, 2, 1];
        let tree = Tree::from_frequencies(&freqs);
        let codes: Vec<(u64, u32)> = (0..freqs.len())
            .map(|s| (tree.codes[s].0, tree.width(s)))
            .collect();
        for (i, &(ca, wa)) in codes.iter().enumerate() {
            for (j, &(cb, wb)) in codes.iter().enumerate() {
                if i == j {
                    continue;
                }
                if wa <= wb {
                    assert_ne!(cb >> (wb - wa), ca, "code {i} is a prefix of {j}");
                }
            }
        }
    }

    #[test]
    fn decode_mid_stream_error() {
        let tree = Tree::from_frequencies(&[1, 1, 1, 1, 1]);
        let buf = [0u8];
        // Claim only 1 bit available; deep codes need more.
        let mut r = BitReader::new(&buf, 1);
        // Either decodes a 1-bit symbol or errors; must not panic. With 5
        // uniform symbols no code is 1 bit, so this errors.
        assert!(tree.decode(&mut r).is_err());
    }

    #[test]
    fn deterministic_construction() {
        let a = Tree::from_frequencies(&[3, 3, 2, 2, 1]);
        let b = Tree::from_frequencies(&[3, 3, 2, 2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn table_bits_positive() {
        let tree = Tree::from_frequencies(&[1, 2, 3]);
        assert!(tree.table_bits() > 0);
    }
}
