//! A direct executor for DIR programs.
//!
//! This is *not* the universal host machine (no cycle accounting, no DTB);
//! it is the semantic reference for the DIR level, used to verify the
//! compiler against the HLR evaluator and the UHM against the DIR. All
//! three must agree exactly, traps included.

use crate::facts::SiteFacts;
use crate::isa::{AluOp, Inst};
use crate::program::Program;

/// Resource limits for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum DIR instructions executed.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 200_000_000,
            max_depth: 10_000,
        }
    }
}

/// A runtime trap raised by the executor.
///
/// The variants mirror [`hlr::eval::EvalError`] exactly so that differential
/// tests can compare failure modes across levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Division or remainder by zero.
    DivByZero,
    /// Array index out of range.
    IndexOutOfBounds {
        /// Offending index.
        index: i64,
        /// Array length.
        len: u32,
    },
    /// Instruction budget exhausted.
    StepLimit,
    /// Call depth budget exhausted.
    DepthLimit,
    /// The program is structurally broken (should be prevented by
    /// [`Program::validate`]).
    Malformed(&'static str),
    /// The encoded DIR stream at this address no longer decodes: the
    /// static program image — the level-2 ground truth — is corrupt, so
    /// no retranslation can recover it.
    CorruptDir {
        /// DIR address whose encoding failed to decode.
        addr: u32,
    },
    /// Level-2 fetches of this instruction kept failing past the
    /// machine's retry budget (transient fault turned permanent).
    FetchFailed {
        /// DIR address being fetched.
        addr: u32,
    },
    /// The machine's mode and its translation buffers disagree — a
    /// configuration bug reported as a trap instead of a panic.
    MisconfiguredMode(&'static str),
    /// The run's modeled-cycle budget ("fuel") ran out: a host-level
    /// preemption, not a guest fault. The supervised pool maps this to
    /// a timed-out tenant outcome.
    FuelExhausted,
    /// The run's wall-clock deadline passed: a host-level preemption,
    /// not a guest fault. Unlike [`Trap::FuelExhausted`] this depends on
    /// host speed, so nothing deterministic may key off it.
    DeadlineExceeded,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            Trap::StepLimit => write!(f, "step limit exceeded"),
            Trap::DepthLimit => write!(f, "call depth limit exceeded"),
            Trap::Malformed(what) => write!(f, "malformed program: {what}"),
            Trap::CorruptDir { addr } => {
                write!(f, "corrupt DIR stream at address {addr}")
            }
            Trap::FetchFailed { addr } => {
                write!(
                    f,
                    "level-2 fetch of address {addr} failed past the retry budget"
                )
            }
            Trap::MisconfiguredMode(what) => write!(f, "misconfigured machine mode: {what}"),
            Trap::FuelExhausted => write!(f, "modeled-cycle budget exhausted"),
            Trap::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

/// Converts a reference-evaluator error into the equivalent trap, for
/// differential assertions.
impl From<hlr::eval::EvalError> for Trap {
    fn from(e: hlr::eval::EvalError) -> Self {
        match e {
            hlr::eval::EvalError::DivByZero => Trap::DivByZero,
            hlr::eval::EvalError::IndexOutOfBounds { index, len } => {
                Trap::IndexOutOfBounds { index, len }
            }
            hlr::eval::EvalError::StepLimit => Trap::StepLimit,
            hlr::eval::EvalError::DepthLimit => Trap::DepthLimit,
        }
    }
}

/// Execution statistics gathered by a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// DIR instructions executed (the dynamic instruction count `N`).
    pub instructions: u64,
    /// Dynamic execution counts per opcode.
    pub opcode_counts: [u64; crate::isa::OPCODE_COUNT],
    /// The dynamic instruction-address trace, if tracing was requested.
    pub trace: Option<Vec<u32>>,
}

/// Runs a program with default limits.
///
/// # Errors
///
/// Returns a [`Trap`] on runtime errors or exhausted limits.
pub fn run(program: &Program) -> Result<Vec<i64>, Trap> {
    run_with(program, Limits::default(), false).map(|(out, _)| out)
}

/// Runs a program, optionally recording the dynamic DIR-address trace
/// (used by the working-set and cache studies).
///
/// # Errors
///
/// Returns a [`Trap`] on runtime errors or exhausted limits.
pub fn run_with(
    program: &Program,
    limits: Limits,
    trace: bool,
) -> Result<(Vec<i64>, ExecStats), Trap> {
    run_policy(program, Checked, limits, trace).0
}

/// Runs a *statically verified* program, dropping the executor's defensive
/// malformed-program checks (operand-stack underflow, pc range, return
/// without frame): the verifier has already proved those traps unreachable,
/// so the hot loop carries no error construction for them. Dynamic traps —
/// division by zero, array bounds, step/depth limits — are still checked;
/// they depend on runtime values no static pass can bound.
///
/// Soundness is the *caller's* obligation: this entry must only be reached
/// through a verification witness (the analyze crate's `Verified` type).
/// On an unverified malformed program the executor stays memory-safe but
/// may silently read zeros where the checked path would trap.
///
/// # Errors
///
/// Returns a [`Trap`] on dynamic runtime errors or exhausted limits.
pub fn run_trusted_with(
    program: &Program,
    limits: Limits,
    trace: bool,
) -> Result<(Vec<i64>, ExecStats), Trap> {
    run_policy(program, Trusted, limits, trace).0
}

/// Runs a program with *per-site* check elision: every defensive check
/// stays on (unlike [`run_trusted_with`]), but at each address whose
/// [`SiteFacts`] bit is set the corresponding dynamic guard — divide-by-
/// zero or array bounds — is skipped. Outputs and [`ExecStats`] are
/// bit-identical to [`run_with`] whenever the facts are sound; soundness
/// is the fact producer's obligation, enforced dynamically by
/// [`run_audit_with`].
///
/// # Errors
///
/// Returns a [`Trap`] on runtime errors or exhausted limits.
pub fn run_sited_with(
    program: &Program,
    facts: &SiteFacts,
    limits: Limits,
    trace: bool,
) -> Result<(Vec<i64>, ExecStats), Trap> {
    run_policy(program, Elide(facts), limits, trace).0
}

/// Runs a program in *audit* mode: checked semantics throughout, but at
/// every site the facts claim elidable the guard is still evaluated and a
/// firing guard is recorded in the returned [`SiteAudit`] before trapping
/// normally. The run therefore behaves exactly like [`run_with`]; a
/// non-empty audit is a static-analysis soundness divergence.
pub fn run_audit_with(
    program: &Program,
    facts: &SiteFacts,
    limits: Limits,
    trace: bool,
) -> (Result<(Vec<i64>, ExecStats), Trap>, SiteAudit) {
    let (result, policy) = run_policy(
        program,
        Audit {
            facts,
            log: SiteAudit::default(),
        },
        limits,
        trace,
    );
    (result, policy.log)
}

/// Soundness violations observed by [`run_audit_with`]: elided checks
/// whose guard would have fired anyway.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteAudit {
    /// Proved-nonzero divisor sites where the divisor was zero.
    pub div_violations: u64,
    /// Proved-in-bounds index sites where the index was out of range.
    pub idx_violations: u64,
    /// DIR addresses of the violating sites, in dynamic order.
    pub sites: Vec<u32>,
}

impl SiteAudit {
    /// True when no elided guard fired — the facts were dynamically sound
    /// on this run.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.div_violations == 0 && self.idx_violations == 0
    }
}

/// How the executor treats its dynamic and defensive checks. Each policy
/// monomorphizes [`State::run`] so the existing checked and trusted paths
/// carry zero new work; the per-site paths pay one bitmap probe at the
/// guarded opcodes only.
trait SitePolicy {
    /// Drop the defensive malformed-program checks (the old whole-image
    /// trusted mode).
    const TRUSTED: bool;
    /// Consult per-site facts before evaluating dynamic guards.
    const ELIDES: bool;
    /// Keep evaluating elided guards and record firings.
    const AUDIT: bool;

    fn div_ok(&self, _pc: u32) -> bool {
        false
    }
    fn idx_ok(&self, _pc: u32) -> bool {
        false
    }
    fn record(&mut self, _pc: u32, _div: bool) {}
}

/// Full checked execution (the semantic reference).
struct Checked;

impl SitePolicy for Checked {
    const TRUSTED: bool = false;
    const ELIDES: bool = false;
    const AUDIT: bool = false;
}

/// Whole-image trusted execution behind a verification witness.
struct Trusted;

impl SitePolicy for Trusted {
    const TRUSTED: bool = true;
    const ELIDES: bool = false;
    const AUDIT: bool = false;
}

/// Per-site elision driven by a [`SiteFacts`] bitmap.
struct Elide<'f>(&'f SiteFacts);

impl SitePolicy for Elide<'_> {
    const TRUSTED: bool = false;
    const ELIDES: bool = true;
    const AUDIT: bool = false;

    fn div_ok(&self, pc: u32) -> bool {
        self.0.div_ok(pc)
    }
    fn idx_ok(&self, pc: u32) -> bool {
        self.0.idx_ok(pc)
    }
}

/// Checked execution that logs every elided guard that fires.
struct Audit<'f> {
    facts: &'f SiteFacts,
    log: SiteAudit,
}

impl SitePolicy for Audit<'_> {
    const TRUSTED: bool = false;
    const ELIDES: bool = true;
    const AUDIT: bool = true;

    fn div_ok(&self, pc: u32) -> bool {
        self.facts.div_ok(pc)
    }
    fn idx_ok(&self, pc: u32) -> bool {
        self.facts.idx_ok(pc)
    }
    fn record(&mut self, pc: u32, div: bool) {
        if div {
            self.log.div_violations += 1;
        } else {
            self.log.idx_violations += 1;
        }
        self.log.sites.push(pc);
    }
}

fn run_policy<P: SitePolicy>(
    program: &Program,
    policy: P,
    limits: Limits,
    trace: bool,
) -> (Result<(Vec<i64>, ExecStats), Trap>, P) {
    let mut st = State {
        program,
        pc: 0,
        stack: Vec::with_capacity(64),
        frames: vec![Frame {
            base: 0,
            ret_pc: u32::MAX,
        }],
        slots: Vec::new(),
        globals: vec![0; program.globals_size as usize],
        output: Vec::new(),
        stats: ExecStats {
            trace: trace.then(Vec::new),
            ..ExecStats::default()
        },
        limits,
        policy,
    };
    let result = st.run();
    let State {
        output,
        stats,
        policy,
        ..
    } = st;
    (result.map(|()| (output, stats)), policy)
}

struct Frame {
    /// First slot of this frame within `slots`.
    base: usize,
    /// Return address; `u32::MAX` marks the prelude pseudo-frame.
    ret_pc: u32,
}

struct State<'p, P: SitePolicy> {
    program: &'p Program,
    pc: u32,
    stack: Vec<i64>,
    frames: Vec<Frame>,
    /// Flat storage for all live frames.
    slots: Vec<i64>,
    globals: Vec<i64>,
    output: Vec<i64>,
    stats: ExecStats,
    limits: Limits,
    policy: P,
}

impl<'p, P: SitePolicy> State<'p, P> {
    /// Pops the operand stack. The untrusted instantiation reports
    /// underflow as a trap; the trusted one relies on the verifier's
    /// no-underflow proof and compiles to a bare pop (the default is dead
    /// code on verified programs, kept only so the signature stays safe).
    #[inline]
    fn pop(&mut self) -> Result<i64, Trap> {
        if P::TRUSTED {
            Ok(self.stack.pop().unwrap_or_default())
        } else {
            self.stack
                .pop()
                .ok_or(Trap::Malformed("operand stack underflow"))
        }
    }

    fn frame_base(&self) -> usize {
        self.frames.last().expect("frame stack never empty").base
    }

    fn local(&mut self, slot: u32) -> &mut i64 {
        let base = self.frame_base();
        &mut self.slots[base + slot as usize]
    }

    fn check_index(index: i64, len: u32) -> Result<usize, Trap> {
        if index < 0 || index >= len as i64 {
            Err(Trap::IndexOutOfBounds { index, len })
        } else {
            Ok(index as usize)
        }
    }

    /// ALU application with the policy's per-site divisor elision. In
    /// audit mode the zero guard is still evaluated at elided sites and a
    /// firing is recorded before trapping with checked semantics.
    #[inline]
    fn alu(&mut self, op: AluOp, a: i64, b: i64) -> Result<i64, Trap> {
        if P::ELIDES && op.traps_on_zero() && self.policy.div_ok(self.pc) {
            if P::AUDIT && b == 0 {
                self.policy.record(self.pc, true);
                return Err(Trap::DivByZero);
            }
            return Ok(op.apply_unchecked(a, b));
        }
        op.apply(a, b).map_err(|_| Trap::DivByZero)
    }

    /// Array-index check with the policy's per-site bounds elision. An
    /// elided site uses the index directly (Rust's own slice check keeps
    /// the executor memory-safe on a broken proof); audit mode still
    /// evaluates the guard and records a firing.
    #[inline]
    fn index(&mut self, index: i64, len: u32) -> Result<usize, Trap> {
        if P::ELIDES && self.policy.idx_ok(self.pc) {
            if P::AUDIT && (index < 0 || index >= len as i64) {
                self.policy.record(self.pc, false);
                return Err(Trap::IndexOutOfBounds { index, len });
            }
            return Ok(index as usize);
        }
        Self::check_index(index, len)
    }

    fn run(&mut self) -> Result<(), Trap> {
        loop {
            let inst = if P::TRUSTED {
                // The verifier proved every reachable pc in range; plain
                // indexing keeps Rust's bounds check but drops the trap
                // construction from the hot loop.
                self.program.code[self.pc as usize]
            } else {
                *self
                    .program
                    .code
                    .get(self.pc as usize)
                    .ok_or(Trap::Malformed("pc out of range"))?
            };
            self.stats.instructions += 1;
            if self.stats.instructions > self.limits.max_steps {
                return Err(Trap::StepLimit);
            }
            self.stats.opcode_counts[inst.opcode() as usize] += 1;
            if let Some(t) = self.stats.trace.as_mut() {
                t.push(self.pc);
            }
            let mut next = self.pc + 1;
            match inst {
                Inst::PushConst(v) => self.stack.push(v),
                Inst::PushLocal(s) => {
                    let v = *self.local(s);
                    self.stack.push(v);
                }
                Inst::PushGlobal(s) => self.stack.push(self.globals[s as usize]),
                Inst::StoreLocal(s) => {
                    let v = self.pop()?;
                    *self.local(s) = v;
                }
                Inst::StoreGlobal(s) => {
                    let v = self.pop()?;
                    self.globals[s as usize] = v;
                }
                Inst::LoadArrLocal { base, len } => {
                    let i = self.pop()?;
                    let idx = self.index(i, len)?;
                    let fb = self.frame_base();
                    self.stack.push(self.slots[fb + base as usize + idx]);
                }
                Inst::LoadArrGlobal { base, len } => {
                    let i = self.pop()?;
                    let idx = self.index(i, len)?;
                    self.stack.push(self.globals[base as usize + idx]);
                }
                Inst::StoreArrLocal { base, len } => {
                    let v = self.pop()?;
                    let i = self.pop()?;
                    let idx = self.index(i, len)?;
                    let fb = self.frame_base();
                    self.slots[fb + base as usize + idx] = v;
                }
                Inst::StoreArrGlobal { base, len } => {
                    let v = self.pop()?;
                    let i = self.pop()?;
                    let idx = self.index(i, len)?;
                    self.globals[base as usize + idx] = v;
                }
                Inst::Pop => {
                    self.pop()?;
                }
                Inst::Bin(op) => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    let r = self.alu(op, a, b)?;
                    self.stack.push(r);
                }
                Inst::Neg => {
                    let v = self.pop()?;
                    self.stack.push(v.wrapping_neg());
                }
                Inst::Not => {
                    let v = self.pop()?;
                    self.stack.push((v == 0) as i64);
                }
                Inst::Jump(t) => next = t,
                Inst::JumpIfFalse(t) => {
                    if self.pop()? == 0 {
                        next = t;
                    }
                }
                Inst::JumpIfTrue(t) => {
                    if self.pop()? != 0 {
                        next = t;
                    }
                }
                Inst::Call(p) => {
                    if self.frames.len() as u32 > self.limits.max_depth {
                        return Err(Trap::DepthLimit);
                    }
                    let info = &self.program.procs[p as usize];
                    let base = self.slots.len();
                    self.slots.resize(base + info.frame_size as usize, 0);
                    // Arguments were pushed left-to-right; pop right-to-left.
                    for i in (0..info.n_args).rev() {
                        let v = self.pop()?;
                        self.slots[base + i as usize] = v;
                    }
                    self.frames.push(Frame { base, ret_pc: next });
                    next = info.entry;
                }
                Inst::Return => {
                    let frame = if P::TRUSTED {
                        // The verifier proved Return only occurs inside a
                        // procedure body, where a frame always exists.
                        self.frames.pop().expect("verified return has a frame")
                    } else {
                        self.frames
                            .pop()
                            .ok_or(Trap::Malformed("return without frame"))?
                    };
                    if !P::TRUSTED && frame.ret_pc == u32::MAX {
                        return Err(Trap::Malformed("return from prelude"));
                    }
                    self.slots.truncate(frame.base);
                    next = frame.ret_pc;
                }
                Inst::Halt => return Ok(()),
                Inst::Write => {
                    let v = self.pop()?;
                    self.output.push(v);
                }
                Inst::BinLocals { op, a, b, dst } => {
                    let fb = self.frame_base();
                    let va = self.slots[fb + a as usize];
                    let vb = self.slots[fb + b as usize];
                    let r = self.alu(op, va, vb)?;
                    self.slots[fb + dst as usize] = r;
                }
                Inst::IncLocal { slot, imm } => {
                    let v = self.local(slot);
                    *v = v.wrapping_add(imm);
                }
                Inst::SetLocalConst { slot, imm } => {
                    *self.local(slot) = imm;
                }
                Inst::CmpConstBr {
                    op,
                    slot,
                    imm,
                    target,
                } => {
                    let v = *self.local(slot);
                    let r = self.alu(op, v, imm)?;
                    if r == 0 {
                        next = target;
                    }
                }
                Inst::CmpLocalsBr { op, a, b, target } => {
                    let fb = self.frame_base();
                    let va = self.slots[fb + a as usize];
                    let vb = self.slots[fb + b as usize];
                    let r = self.alu(op, va, vb)?;
                    if r == 0 {
                        next = target;
                    }
                }
            }
            self.pc = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    fn run_src(src: &str) -> Result<Vec<i64>, Trap> {
        let hir = hlr::compile(src).unwrap();
        run(&compile(&hir))
    }

    #[test]
    fn matches_reference_on_all_samples() {
        for s in hlr::programs::ALL {
            let hir = s.compile().unwrap();
            let want = hlr::eval::run(&hir).unwrap();
            let got = run(&compile(&hir)).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(got, want, "{}", s.name);
        }
    }

    #[test]
    fn matches_reference_on_generated_programs() {
        for seed in 0..40 {
            let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
            let hir = hlr::sema::analyze(&ast).unwrap();
            let want = hlr::eval::run(&hir).unwrap();
            let got = run(&compile(&hir)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn traps_match_reference_traps() {
        let cases = [
            "proc main() begin write 1 / 0; end",
            "proc main() begin write 5 % 0; end",
            "proc main() begin int a[3]; write a[3]; end",
            "proc main() begin int a[3]; a[-2] := 0; skip; end",
        ];
        for src in cases {
            let hir = hlr::compile(src).unwrap();
            let want: Trap = hlr::eval::run(&hir).unwrap_err().into();
            let got = run(&compile(&hir)).unwrap_err();
            assert_eq!(got, want, "{src}");
        }
    }

    #[test]
    fn step_limit_enforced() {
        let hir = hlr::compile("proc main() begin while true do skip; end").unwrap();
        let p = compile(&hir);
        let r = run_with(
            &p,
            Limits {
                max_steps: 100,
                max_depth: 8,
            },
            false,
        );
        assert!(matches!(r, Err(Trap::StepLimit)));
    }

    #[test]
    fn depth_limit_enforced() {
        let hir =
            hlr::compile("proc f() begin call f(); end proc main() begin call f(); end").unwrap();
        let p = compile(&hir);
        let r = run_with(
            &p,
            Limits {
                max_steps: 1_000_000,
                max_depth: 32,
            },
            false,
        );
        assert!(matches!(r, Err(Trap::DepthLimit)));
    }

    #[test]
    fn trace_records_addresses() {
        let hir = hlr::compile("proc main() begin write 1; end").unwrap();
        let p = compile(&hir);
        let (_, stats) = run_with(&p, Limits::default(), true).unwrap();
        let trace = stats.trace.unwrap();
        assert_eq!(trace.len() as u64, stats.instructions);
        assert_eq!(trace[0], 0); // prelude Call
    }

    #[test]
    fn recursion_frames_are_isolated() {
        let out = run_src(
            "proc fac(int n) -> int begin
                if n <= 1 then return 1;
                return n * fac(n - 1);
            end
            proc main() begin write fac(6); end",
        )
        .unwrap();
        assert_eq!(out, vec![720]);
    }

    #[test]
    fn arguments_pop_in_correct_order() {
        let out = run_src(
            "proc sub(int a, int b) -> int begin return a - b; end
             proc main() begin write sub(10, 3); end",
        )
        .unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn dynamic_opcode_counts_accumulate() {
        let hir = hlr::compile("proc main() begin int i; for i := 0 to 9 do skip; end").unwrap();
        let p = compile(&hir);
        let (_, stats) = run_with(&p, Limits::default(), false).unwrap();
        use crate::isa::Opcode;
        // The loop check executes 11 times (10 passes + 1 failure).
        assert_eq!(stats.opcode_counts[Opcode::JumpIfFalse as usize], 11);
        assert!(stats.instructions > 30);
    }
}
