//! Address-to-region mapping and call-stack reconstruction.
//!
//! Every attribution surface in this crate (counters, spans, flamegraphs)
//! needs the same two primitives: "which procedure does DIR address `a`
//! belong to?" answered in O(1), and "what does the procedure call stack
//! look like right now?" reconstructed from nothing but the retire-address
//! stream. They live here so all three surfaces agree exactly.

use dir::program::Program;

/// Precomputed DIR-address → region table for one program.
///
/// Region 0 is always the prelude (`<prelude>`); region `1 + i` is the
/// `i`-th entry of the program's procedure table. Lookup is a single
/// indexed load, cheap enough for the always-on counter plane.
#[derive(Debug, Clone)]
pub struct ProcMap {
    region_of: Vec<u16>,
    names: Vec<String>,
}

impl ProcMap {
    /// Builds the map from a program's procedure table.
    pub fn new(program: &Program) -> ProcMap {
        let mut names = Vec::with_capacity(program.procs.len() + 1);
        names.push("<prelude>".to_string());
        let mut region_of = vec![0u16; program.len()];
        for (i, p) in program.procs.iter().enumerate() {
            let region = (i + 1) as u16;
            names.push(p.name.clone());
            for slot in region_of
                .iter_mut()
                .take(p.end as usize)
                .skip(p.entry as usize)
            {
                *slot = region;
            }
        }
        ProcMap { region_of, names }
    }

    /// The region index owning `addr` (0 = prelude). Out-of-range
    /// addresses map to the prelude rather than panicking — the profiler
    /// must never take down the run it observes.
    pub fn region_of(&self, addr: u32) -> usize {
        self.region_of
            .get(addr as usize)
            .copied()
            .unwrap_or(0)
            .into()
    }

    /// The display name of a region.
    pub fn name(&self, region: usize) -> &str {
        self.names.get(region).map_or("<unknown>", String::as_str)
    }

    /// Number of regions (procedures + the prelude).
    pub fn regions(&self) -> usize {
        self.names.len()
    }
}

/// Reconstructs a procedure call stack from a retire-address stream.
///
/// The heuristic: when an instruction retires in region `r`,
///
/// * if the stack top is already `r`, execution stayed in the frame;
/// * else if `r` is somewhere below the top, frames above it returned —
///   pop down to `r`;
/// * otherwise `r` is a fresh callee — push it.
///
/// This is exact for the DIR call discipline, because every transfer
/// between procedures passes through the caller: the `Call` instruction
/// retires at the caller's address before the callee's first instruction,
/// and `Return` retires in the callee before control reappears in the
/// caller. The one collapse is direct recursion — a region calling itself
/// folds into a single frame, which is the conventional flamegraph
/// treatment of recursive towers.
#[derive(Debug, Clone, Default)]
pub struct CallStack {
    stack: Vec<usize>,
}

/// What [`CallStack::step`] did to the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackStep {
    /// Frames popped (regions that returned).
    pub pops: usize,
    /// Whether a new frame was pushed.
    pub pushed: bool,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> CallStack {
        CallStack::default()
    }

    /// Advances the stack to an instruction retiring in `region`.
    pub fn step(&mut self, region: usize) -> StackStep {
        if self.stack.last() == Some(&region) {
            return StackStep {
                pops: 0,
                pushed: false,
            };
        }
        if let Some(depth) = self.stack.iter().rposition(|&r| r == region) {
            let pops = self.stack.len() - depth - 1;
            self.stack.truncate(depth + 1);
            return StackStep {
                pops,
                pushed: false,
            };
        }
        self.stack.push(region);
        StackStep {
            pops: 0,
            pushed: true,
        }
    }

    /// The current frames, outermost first.
    pub fn frames(&self) -> &[usize] {
        &self.stack
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Pops every remaining frame, returning how many there were (used to
    /// close open spans at end of run).
    pub fn unwind(&mut self) -> usize {
        let n = self.stack.len();
        self.stack.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::isa::{AluOp, Inst};
    use dir::program::ProcInfo;

    fn two_proc_program() -> Program {
        Program {
            code: vec![
                Inst::Call(0),      // 0: prelude
                Inst::Halt,         // 1
                Inst::PushConst(1), // 2: main
                Inst::Call(1),      // 3
                Inst::Return,       // 4
                Inst::PushConst(2), // 5: helper
                Inst::Bin(AluOp::Add),
                Inst::Return, // 7
            ],
            procs: vec![
                ProcInfo {
                    name: "main".into(),
                    entry: 2,
                    end: 5,
                    n_args: 0,
                    frame_size: 0,
                    returns_value: false,
                },
                ProcInfo {
                    name: "helper".into(),
                    entry: 5,
                    end: 8,
                    n_args: 1,
                    frame_size: 1,
                    returns_value: true,
                },
            ],
            entry_proc: 0,
            globals_size: 0,
        }
    }

    #[test]
    fn map_partitions_the_address_space() {
        let map = ProcMap::new(&two_proc_program());
        assert_eq!(map.regions(), 3);
        assert_eq!(map.name(0), "<prelude>");
        assert_eq!(map.region_of(0), 0);
        assert_eq!(map.region_of(1), 0);
        assert_eq!(map.name(map.region_of(3)), "main");
        assert_eq!(map.name(map.region_of(7)), "helper");
        // Out-of-range addresses degrade to the prelude, never panic.
        assert_eq!(map.region_of(10_000), 0);
    }

    #[test]
    fn stack_follows_call_and_return() {
        let mut s = CallStack::new();
        // prelude → main → helper → back in main → prelude.
        assert_eq!(
            s.step(0),
            StackStep {
                pops: 0,
                pushed: true
            }
        );
        assert!(s.step(1).pushed);
        assert!(s.step(2).pushed);
        assert_eq!(s.frames(), &[0, 1, 2]);
        let back = s.step(1);
        assert_eq!(back.pops, 1);
        assert!(!back.pushed);
        assert_eq!(s.frames(), &[0, 1]);
        let home = s.step(0);
        assert_eq!(home.pops, 1);
        assert_eq!(s.frames(), &[0]);
        // Staying put does nothing.
        assert_eq!(s.step(0).pops, 0);
        assert_eq!(s.unwind(), 1);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn recursion_folds_into_one_frame() {
        let mut s = CallStack::new();
        s.step(0);
        s.step(1);
        // Region 1 "calls itself": no new frame.
        let again = s.step(1);
        assert_eq!((again.pops, again.pushed), (0, false));
        assert_eq!(s.depth(), 2);
    }
}
