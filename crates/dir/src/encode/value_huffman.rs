//! Full frequency coding: §3.2 measures "the frequency of occurrence of
//! each operator **and operand** in the static representation". This
//! scheme is the far-right point of the encoding axis: opcodes are coded
//! with the predecessor-conditioned codebooks of the pair scheme *and*
//! every operand field is Huffman-coded over the distinct values that
//! actually occur for its field kind (slots, lengths, relative targets,
//! immediates, ...), with an ESCAPE code falling back to a raw contextual
//! field for unseen values.
//!
//! Programs reference few distinct slots and small immediates over and
//! over, so operand streams compress hard — while the decoder now needs a
//! decode tree and a value table *per field kind* on top of the
//! per-predecessor opcode trees, the largest interpreter footprint of any
//! scheme, "increas[ing] the amount of memory occupied by the interpreter"
//! exactly as the paper warns.

use std::collections::HashMap;

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::Tree;
use crate::isa::{FieldKind, Inst, Opcode, FIELD_KINDS, OPCODE_COUNT};
use crate::program::Program;

use super::pair::CtxCode;
use super::{
    ContextTables, DecodeMode, Decoded, DecoderData, Image, ImageError, Region, Scheme, SchemeKind,
};

/// The full-frequency scheme (unit struct; all codebooks are measured from
/// the program).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueHuffman;

/// Predecessor index used for region-leading instructions.
const START: usize = OPCODE_COUNT;

/// A per-field-kind value codebook: the distinct values observed, Huffman
/// coded with a trailing ESCAPE symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ValueCode {
    /// Distinct observed values; local symbol `i` ↔ `values[i]`, and the
    /// local symbol `values.len()` is ESCAPE.
    values: Vec<u64>,
    /// Encode-side index of `values`.
    index: HashMap<u64, usize>,
    /// Tree over `values.len() + 1` local symbols.
    tree: Tree,
}

impl ValueCode {
    fn build(freqs: &HashMap<u64, u64>) -> ValueCode {
        // Deterministic order: by descending frequency, then value.
        let mut pairs: Vec<(u64, u64)> = freqs.iter().map(|(&v, &f)| (v, f)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let values: Vec<u64> = pairs.iter().map(|&(v, _)| v).collect();
        let mut local: Vec<u64> = pairs.iter().map(|&(_, f)| f).collect();
        local.push(1); // ESCAPE
        ValueCode {
            index: values.iter().enumerate().map(|(i, &v)| (v, i)).collect(),
            tree: Tree::from_frequencies(&local),
            values,
        }
    }

    fn escape_symbol(&self) -> usize {
        self.values.len()
    }

    /// The Huffman tree coding this field kind's values (for codec
    /// validation).
    pub(crate) fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Encodes one field value; unseen values escape to a raw field of the
    /// region's contextual width (which always fits, because the widths
    /// were measured over the same program region).
    fn encode(&self, value: u64, raw_width: u32, out: &mut BitWriter) {
        match self.index.get(&value) {
            Some(&local) => self.tree.encode(local, out),
            None => {
                self.tree.encode(self.escape_symbol(), out);
                out.write(value, raw_width.max(1));
            }
        }
    }

    /// Decodes one field value, returning `(value, cost_ops)`.
    fn decode(
        &self,
        raw_width: u32,
        reader: &mut BitReader<'_>,
        mode: DecodeMode,
    ) -> Result<(u64, u32), ImageError> {
        let (local, bits) = mode.huff(&self.tree, reader)?;
        if local == self.escape_symbol() {
            let width = raw_width.max(1);
            let raw = mode.read(reader, width)?;
            Ok((raw, 2 * bits + 3))
        } else {
            Ok((self.values[local], 2 * bits))
        }
    }

    /// Interpreter footprint: tree links plus a 64-bit entry per value.
    fn table_bits(&self) -> u64 {
        self.tree.table_bits() + self.values.len() as u64 * 64
    }
}

/// Rebases a field value the way the contextual layout does (targets
/// become region-relative), so value statistics are position-independent.
fn rebase(kind: FieldKind, value: u64, region: &Region) -> u64 {
    match kind {
        FieldKind::Target => value - region.target_base as u64,
        _ => value,
    }
}

fn unrebase(kind: FieldKind, value: u64, region: &Region) -> u64 {
    match kind {
        FieldKind::Target => value + region.target_base as u64,
        _ => value,
    }
}

impl Scheme for ValueHuffman {
    fn kind(&self) -> SchemeKind {
        SchemeKind::ValueHuffman
    }

    fn encode(&self, program: &Program) -> Image {
        let tables = ContextTables::build(program);

        // Opcode digram statistics, as in the pair scheme.
        let mut preds = vec![START as u8; program.code.len()];
        for region in &tables.regions {
            for i in (region.start + 1)..region.end {
                preds[i as usize] = program.code[i as usize - 1].opcode() as u8;
            }
        }
        let mut op_freqs = vec![[0u64; OPCODE_COUNT]; OPCODE_COUNT + 1];
        for (i, inst) in program.code.iter().enumerate() {
            op_freqs[preds[i] as usize][inst.opcode() as usize] += 1;
        }
        let global = Tree::from_frequencies(&program.opcode_histogram());
        let ctx: Vec<CtxCode> = op_freqs.iter().map(CtxCode::build).collect();

        // Value statistics per field kind (rebased).
        let mut value_freqs: Vec<HashMap<u64, u64>> = vec![HashMap::new(); FIELD_KINDS.len()];
        for (i, inst) in program.code.iter().enumerate() {
            let region = tables.region_of(i as u32);
            for (kind, value) in inst.opcode().field_kinds().iter().zip(inst.fields()) {
                *value_freqs[kind.index()]
                    .entry(rebase(*kind, value, region))
                    .or_insert(0) += 1;
            }
        }
        let values: Vec<ValueCode> = value_freqs.iter().map(ValueCode::build).collect();

        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for (i, inst) in program.code.iter().enumerate() {
            offsets.push(w.bit_len());
            let region = tables.region_of(i as u32);
            ctx[preds[i] as usize].encode(inst.opcode(), &global, &mut w);
            for (kind, value) in inst.opcode().field_kinds().iter().zip(inst.fields()) {
                values[kind.index()].encode(
                    rebase(*kind, value, region),
                    region.widths.width(*kind),
                    &mut w,
                );
            }
        }
        let (bytes, bit_len) = w.finish();
        let side = tables.table_bits()
            + global.table_bits()
            + ctx.iter().map(CtxCode::table_bits).sum::<u64>()
            + values.iter().map(ValueCode::table_bits).sum::<u64>();
        Image {
            kind: SchemeKind::ValueHuffman,
            bytes,
            bit_len,
            offsets,
            side_table_bits: side,
            mode: DecodeMode::default(),
            decoder: DecoderData::ValueHuffman {
                ctx,
                global,
                preds,
                tables,
                values,
            },
        }
    }
}

/// Decodes one instruction; cost: region lookup (1) + opcode tree select +
/// walk, then per field: codebook select (1) + value tree walk (2 per code
/// bit, +3 raw on escape).
#[allow(clippy::too_many_arguments)]
#[inline]
pub(super) fn decode(
    reader: &mut BitReader<'_>,
    ctx: &[CtxCode],
    global: &Tree,
    preds: &[u8],
    region: &Region,
    values: &[ValueCode],
    index: u32,
    mode: DecodeMode,
) -> Result<Decoded, ImageError> {
    let pred = *preds
        .get(index as usize)
        .ok_or(ImageError::BadIndex(index))?;
    let (symbol, op_cost) = ctx[pred as usize].decode(global, reader, mode)?;
    let opcode = Opcode::from_u8(symbol).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(symbol),
    ))?;
    let kinds = opcode.field_kinds();
    let mut field_cost = 0u32;
    let inst = match mode {
        DecodeMode::Tree => {
            let mut fields = Vec::with_capacity(kinds.len());
            for kind in kinds {
                let (coded, cost) =
                    values[kind.index()].decode(region.widths.width(*kind), reader, mode)?;
                field_cost += 1 + cost;
                fields.push(unrebase(*kind, coded, region));
            }
            Inst::from_parts(opcode, &fields)?
        }
        DecodeMode::Table => {
            let mut buf = [0u64; super::MAX_FIELDS];
            for (i, kind) in kinds.iter().enumerate() {
                let (coded, cost) =
                    values[kind.index()].decode(region.widths.width(*kind), reader, mode)?;
                field_cost += 1 + cost;
                buf[i] = unrebase(*kind, coded, region);
            }
            Inst::from_parts(opcode, &buf[..kinds.len()])?
        }
    };
    Ok(Decoded {
        inst,
        cost: 2 + op_cost + field_cost,
        bits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples_both_tiers() {
        for s in hlr::programs::ALL {
            let base = compile(&s.compile().unwrap());
            let (fused, _) = crate::fuse::fuse(&base);
            for p in [&base, &fused] {
                let image = ValueHuffman.encode(p);
                assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
            }
        }
    }

    #[test]
    fn beats_pair_on_most_samples() {
        let mut wins = 0;
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let pair = super::super::PairHuffman.encode(&p).bit_len;
            let value = ValueHuffman.encode(&p).bit_len;
            if value < pair {
                wins += 1;
            }
        }
        assert!(
            wins * 3 >= hlr::programs::ALL.len() * 2,
            "value coding won on only {wins}/{} samples",
            hlr::programs::ALL.len()
        );
    }

    #[test]
    fn interpreter_tables_are_the_largest_of_any_scheme() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let value = ValueHuffman.encode(&p).side_table_bits;
        for scheme in [
            SchemeKind::Packed,
            SchemeKind::Contextual,
            SchemeKind::Huffman,
            SchemeKind::PairHuffman,
        ] {
            assert!(value > scheme.encode(&p).side_table_bits, "{scheme}");
        }
    }

    #[test]
    fn escape_path_handles_unseen_values() {
        let mut freqs = HashMap::new();
        freqs.insert(3u64, 10u64);
        freqs.insert(7, 5);
        let code = ValueCode::build(&freqs);
        let mut w = BitWriter::new();
        code.encode(3, 8, &mut w); // known
        code.encode(100, 8, &mut w); // escape
        let (buf, len) = w.finish();
        for mode in DecodeMode::all() {
            let mut r = BitReader::new(&buf, len);
            assert_eq!(code.decode(8, &mut r, mode).unwrap().0, 3);
            let (v, cost) = code.decode(8, &mut r, mode).unwrap();
            assert_eq!(v, 100);
            assert!(cost > 2, "escape costs the raw read too ({mode})");
        }
    }

    #[test]
    fn deterministic_construction() {
        let p = compile(&hlr::programs::MIXED.compile().unwrap());
        let a = ValueHuffman.encode(&p);
        let b = ValueHuffman.encode(&p);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.bit_len, b.bit_len);
    }
}
