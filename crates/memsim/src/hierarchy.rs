//! The two-level memory hierarchy cost model of Section 7.
//!
//! The paper's unit of time is the level-1 access time, "assumed to be
//! equal to one machine instruction execution time"; level 2 costs ten
//! units and an access through the DTB/cache associative array costs two
//! (`τ_D = 2 t_1`).

/// Access-time parameters of the hierarchy, in level-1 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryCosts {
    /// Level-1 access time `t1` (also one host instruction time).
    pub t1: u64,
    /// Level-2 access time `t2`.
    pub t2: u64,
    /// DTB / cache access time `τ_D` (nominally `2 t1`).
    pub tau_d: u64,
}

impl Default for MemoryCosts {
    /// The paper's stated values: `t1 = 1`, `t2 = 10 t1`, `τ_D = 2 t1`.
    fn default() -> Self {
        MemoryCosts {
            t1: 1,
            t2: 10,
            tau_d: 2,
        }
    }
}

/// Which storage level an access touched, for ledger accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Fast level-1 store (interpreter, semantic routines, DTB buffer).
    Level1,
    /// Slow level-2 store (the static DIR program).
    Level2,
    /// The associative array of a DTB or cache.
    Associative,
}

/// Counts references per level and converts them to cycles under a cost
/// model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceCounter {
    /// Level-1 references.
    pub level1: u64,
    /// Level-2 references.
    pub level2: u64,
    /// Associative-array references.
    pub associative: u64,
}

impl ReferenceCounter {
    /// Records one reference.
    pub fn touch(&mut self, level: Level) {
        self.touch_n(level, 1);
    }

    /// Records `n` references.
    pub fn touch_n(&mut self, level: Level, n: u64) {
        match level {
            Level::Level1 => self.level1 += n,
            Level::Level2 => self.level2 += n,
            Level::Associative => self.associative += n,
        }
    }

    /// Total cycles under `costs`.
    pub fn cycles(&self, costs: &MemoryCosts) -> u64 {
        self.level1 * costs.t1 + self.level2 * costs.t2 + self.associative * costs.tau_d
    }

    /// Total references across all levels.
    pub fn references(&self) -> u64 {
        self.level1 + self.level2 + self.associative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = MemoryCosts::default();
        assert_eq!(c.t1, 1);
        assert_eq!(c.t2, 10);
        assert_eq!(c.tau_d, 2);
    }

    #[test]
    fn cycles_weight_levels() {
        let mut r = ReferenceCounter::default();
        r.touch(Level::Level1);
        r.touch_n(Level::Level2, 3);
        r.touch(Level::Associative);
        let c = MemoryCosts::default();
        assert_eq!(r.cycles(&c), 1 + 30 + 2);
        assert_eq!(r.references(), 5);
    }

    #[test]
    fn custom_costs_apply() {
        let mut r = ReferenceCounter::default();
        r.touch_n(Level::Level2, 2);
        let c = MemoryCosts {
            t1: 1,
            t2: 100,
            tau_d: 5,
        };
        assert_eq!(r.cycles(&c), 200);
    }
}
