//! Byte-aligned, unencoded representation: the baseline "expanded" DIR.
//!
//! Every opcode takes one byte; operand fields take natural fixed widths
//! (two bytes for slots, four for targets, eight for immediates). This is
//! the generous-but-fast layout a naive DIR would use, and the baseline the
//! Wilner/Hehner compaction percentages are measured against.

use crate::bitstream::{BitReader, BitWriter, BitsExhausted};
use crate::isa::{FieldKind, Inst, Opcode};
use crate::program::Program;

use super::{DecodeMode, Decoded, DecoderData, Image, ImageError, Scheme, SchemeKind};

/// The byte-aligned scheme (unit struct; it has no parameters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteAligned;

/// Fixed width in bits of each field kind.
fn field_bits(kind: FieldKind) -> u32 {
    match kind {
        FieldKind::Slot | FieldKind::GlobalSlot | FieldKind::Len | FieldKind::Proc => 16,
        FieldKind::Target => 32,
        FieldKind::Imm => 64,
        FieldKind::Alu => 8,
    }
}

impl Scheme for ByteAligned {
    fn kind(&self) -> SchemeKind {
        SchemeKind::ByteAligned
    }

    fn encode(&self, program: &Program) -> Image {
        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for inst in &program.code {
            offsets.push(w.bit_len());
            w.write(inst.opcode() as u64, 8);
            for (kind, value) in inst.opcode().field_kinds().iter().zip(inst.fields()) {
                w.write(value, field_bits(*kind));
            }
        }
        let (bytes, bit_len) = w.finish();
        Image {
            kind: SchemeKind::ByteAligned,
            bytes,
            bit_len,
            offsets,
            side_table_bits: 0,
            mode: DecodeMode::default(),
            decoder: DecoderData::Byte,
        }
    }
}

/// Decodes one instruction; cost: one read for the opcode plus one per
/// operand field.
#[inline]
pub(super) fn decode(reader: &mut BitReader<'_>, mode: DecodeMode) -> Result<Decoded, ImageError> {
    let op_raw = mode.read(reader, 8)?;
    let opcode = Opcode::from_u8(op_raw as u8).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(op_raw as u8),
    ))?;
    let kinds = opcode.field_kinds();
    let inst = match mode {
        DecodeMode::Tree => {
            let mut fields = Vec::with_capacity(kinds.len());
            for kind in kinds {
                fields.push(reader.read_bitwise(field_bits(*kind))?);
            }
            Inst::from_parts(opcode, &fields)?
        }
        DecodeMode::Table => {
            let mut buf = [0u64; super::MAX_FIELDS];
            for (i, kind) in kinds.iter().enumerate() {
                buf[i] = reader.read(field_bits(*kind))?;
            }
            Inst::from_parts(opcode, &buf[..kinds.len()])?
        }
    };
    Ok(Decoded {
        inst,
        cost: 1 + kinds.len() as u32,
        bits: 0, // filled by Image::decode
    })
}

// Make the BitsExhausted conversion reachable for rustc's trait solver.
#[allow(unused)]
fn _exhausted(e: BitsExhausted) -> ImageError {
    e.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let image = ByteAligned.encode(&p);
        assert_eq!(image.decode_all().unwrap(), p.code);
    }

    #[test]
    fn size_matches_schema() {
        let p = compile(&hlr::compile("proc main() begin write 1; end").unwrap());
        let image = ByteAligned.encode(&p);
        // prelude: Call(8+16) Halt(8); main: PushConst(8+64) Write(8) Return(8)
        assert_eq!(image.bit_len, 24 + 8 + 72 + 8 + 8);
    }

    #[test]
    fn decode_cost_is_field_count_plus_one() {
        let p = compile(&hlr::compile("proc main() begin write 1; end").unwrap());
        let image = ByteAligned.encode(&p);
        // instruction 0 is Call (1 field), 1 is Halt (0 fields)
        assert_eq!(image.decode(0).unwrap().cost, 2);
        assert_eq!(image.decode(1).unwrap().cost, 1);
    }

    #[test]
    fn corrupt_opcode_reports_error() {
        let p = compile(&hlr::compile("proc main() begin skip; end").unwrap());
        let mut image = ByteAligned.encode(&p);
        image.bytes[0] = 0xFF; // invalid opcode discriminant
        assert!(matches!(
            image.decode(0),
            Err(ImageError::Decode(crate::isa::DecodeError::BadOpcode(0xFF)))
        ));
    }
}
