//! Analyze-plane integration tests: the load-time verifier accepts the
//! whole sample corpus under every encoding scheme, rejects each
//! known-bad fixture with the exact diagnostic code, and the `Verified`
//! fast path is observably identical to the checked path — both at the
//! DIR reference-executor level and through a fully loaded `Machine`.

use analyze::{DiagCode, Severity};
use dir::encode::{fixtures, SchemeKind};
use dir::program::ProcInfo;
use uhm::{DtbConfig, Machine, Mode};

fn sample_programs() -> Vec<(&'static str, dir::Program)> {
    hlr::programs::ALL
        .iter()
        .map(|s| {
            (
                s.name,
                dir::compiler::compile(&s.compile().expect("samples compile")),
            )
        })
        .collect()
}

/// Every compiler-produced image of every sample verifies clean under
/// every encoding scheme: no error-severity diagnostic anywhere.
#[test]
fn corpus_is_clean_under_every_scheme() {
    for (name, program) in sample_programs() {
        for scheme in SchemeKind::all() {
            let report = analyze::analyze(&program, &scheme.encode(&program));
            assert!(
                report.is_clean(),
                "{name} under {scheme}:\n{}",
                report.render()
            );
            assert_eq!(report.count(Severity::Error), 0, "{name} under {scheme}");
        }
    }
}

/// A minimal structurally well-formed program whose body starts with
/// `bad` — the vehicle for defects no compiler output contains.
fn bad_program(bad: dir::Inst) -> dir::Program {
    dir::Program {
        code: vec![
            dir::Inst::Call(0),
            dir::Inst::Halt,
            bad,
            dir::Inst::PushConst(0),
            dir::Inst::Pop,
            dir::Inst::Return,
        ],
        procs: vec![ProcInfo {
            name: "main".into(),
            entry: 2,
            end: 6,
            n_args: 0,
            frame_size: 1,
            returns_value: false,
        }],
        entry_proc: 0,
        globals_size: 0,
    }
}

/// Each defect class is rejected with its own diagnostic code, and
/// `verify` refuses to mint a witness for it.
#[test]
fn negative_fixtures_carry_exact_diagnostic_codes() {
    let cases = [
        (DiagCode::StackUnderflow, bad_program(dir::Inst::Pop)),
        (DiagCode::JumpOutOfRange, bad_program(dir::Inst::Jump(999))),
        (
            DiagCode::UninitializedLocal,
            bad_program(dir::Inst::PushLocal(0)),
        ),
        (DiagCode::BadCallee, bad_program(dir::Inst::Call(7))),
    ];
    for (expect, program) in cases {
        let image = SchemeKind::ByteAligned.encode(&program);
        let report = analyze::analyze(&program, &image);
        assert!(
            report.diagnostics.iter().any(|d| d.code == expect),
            "expected {} in:\n{}",
            expect.id(),
            report.render()
        );
        assert!(!report.is_clean());
        assert!(analyze::verify(&program, image).is_err());
    }
}

/// Corrupted encoded images are stopped by the codec pass at load time —
/// before any decode attempt could turn them into a mid-run trap.
#[test]
fn corrupt_images_fail_the_codec_pass() {
    let program = sample_programs().remove(0).1;
    for image in [
        fixtures::truncated_codebook(&program),
        fixtures::conflicting_codebook(&program),
        fixtures::oversized_field_width(&program),
    ] {
        let report = analyze::analyze(&program, &image);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::CodecDefect));
        assert!(analyze::verify(&program, image).is_err());
    }
}

/// An image that decodes fine but encodes a *different* program is
/// rejected: a witness always pins the image to the proved program.
#[test]
fn witness_refuses_a_mismatched_image() {
    let programs = sample_programs();
    let (_, a) = &programs[0];
    let (_, b) = &programs[1];
    let report = analyze::analyze(a, &SchemeKind::Packed.encode(b));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::ImageMismatch));
    assert!(analyze::verify(a, SchemeKind::Packed.encode(b)).is_err());
}

/// The DIR-level trusted path produces bit-identical output and stats
/// for every sample.
#[test]
fn verified_dir_execution_is_bit_identical() {
    for (name, program) in sample_programs() {
        let verified = analyze::verify(&program, SchemeKind::Huffman.encode(&program))
            .unwrap_or_else(|r| panic!("{name} verifies:\n{}", r.render()));
        let (want, want_stats) = dir::exec::run_with(&program, dir::exec::Limits::default(), false)
            .expect("corpus is trap-free");
        let (got, got_stats) =
            analyze::run_verified(&verified, dir::exec::Limits::default()).unwrap();
        assert_eq!(got, want, "{name}");
        assert_eq!(got_stats.instructions, want_stats.instructions, "{name}");
    }
}

/// A machine loaded from a witness runs every mode with output and
/// metrics equal to an unverified machine on the same program.
#[test]
fn verified_machine_is_observably_identical() {
    for (name, program) in sample_programs() {
        let verified = analyze::verify(&program, SchemeKind::Huffman.encode(&program)).unwrap();
        let loaded = Machine::load(&verified);
        assert!(loaded.is_verified());
        let plain = Machine::new(&program, SchemeKind::Huffman);
        for mode in [
            Mode::Interpreter,
            Mode::Dtb(DtbConfig::with_capacity(64)),
            Mode::TwoLevelDtb {
                l1: DtbConfig::with_capacity(8),
                l2: DtbConfig::with_capacity(256),
            },
        ] {
            let a = loaded.run(&mode).unwrap();
            let b = plain.run(&mode).unwrap();
            assert_eq!(a.output, b.output, "{name} {mode:?}");
            assert_eq!(a.metrics, b.metrics, "{name} {mode:?}");
        }
    }
}
