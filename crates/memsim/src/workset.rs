//! Working-set and stack-distance analysis of reference traces.
//!
//! Section 4 of the paper rests the DTB on the "principle of locality" and
//! Denning's working-set model: over any interval, most references fall on
//! a small subset of the address space. This module measures that property
//! on concrete instruction traces, providing the empirical hit-ratio
//! foundation the paper could only cite.

use std::collections::HashMap;

/// Average working-set size over a trace for one window length, per
/// Denning's definition: the mean number of distinct addresses referenced
/// in the window `(t - tau, t]`.
pub fn working_set_size(trace: &[u64], tau: usize) -> f64 {
    if trace.is_empty() || tau == 0 {
        return 0.0;
    }
    // Sliding window with occurrence counts.
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let mut total = 0u64;
    for t in 0..trace.len() {
        *counts.entry(trace[t]).or_insert(0) += 1;
        if t >= tau {
            let old = trace[t - tau];
            let c = counts.get_mut(&old).expect("address in window");
            *c -= 1;
            if *c == 0 {
                counts.remove(&old);
            }
        }
        total += counts.len() as u64;
    }
    total as f64 / trace.len() as f64
}

/// LRU stack distance of every reference: the number of *distinct*
/// addresses referenced since the previous reference to the same address
/// (`None` for first references).
///
/// The distance equals the minimum fully-associative LRU capacity for
/// which the reference hits, so the histogram of distances yields the
/// entire hit-ratio-versus-capacity curve in one pass.
pub fn stack_distances(trace: &[u64]) -> Vec<Option<usize>> {
    // Move-to-front list; alphabets in this workload are small, so the
    // O(n·u) scan is fine.
    let mut stack: Vec<u64> = Vec::new();
    let mut out = Vec::with_capacity(trace.len());
    for &addr in trace {
        match stack.iter().position(|&a| a == addr) {
            Some(pos) => {
                out.push(Some(pos));
                stack.remove(pos);
                stack.insert(0, addr);
            }
            None => {
                out.push(None);
                stack.insert(0, addr);
            }
        }
    }
    out
}

/// Hit ratio of a fully associative LRU cache of each given capacity, via
/// the stack-distance histogram.
pub fn lru_hit_ratios(trace: &[u64], capacities: &[usize]) -> Vec<f64> {
    if trace.is_empty() {
        return capacities.iter().map(|_| 0.0).collect();
    }
    let distances = stack_distances(trace);
    // histogram[d] = number of references at stack distance d.
    let mut histogram: Vec<u64> = Vec::new();
    for d in distances.into_iter().flatten() {
        if d >= histogram.len() {
            histogram.resize(d + 1, 0);
        }
        histogram[d] += 1;
    }
    // Prefix sums: hits(capacity C) = sum of histogram[0..C].
    let mut prefix = vec![0u64; histogram.len() + 1];
    for (i, &h) in histogram.iter().enumerate() {
        prefix[i + 1] = prefix[i] + h;
    }
    let n = trace.len() as f64;
    capacities
        .iter()
        .map(|&c| {
            let hits = prefix[c.min(histogram.len())];
            hits as f64 / n
        })
        .collect()
}

/// Summary locality statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityReport {
    /// Trace length.
    pub references: usize,
    /// Distinct addresses.
    pub unique: usize,
    /// Mean working-set size at a window of 100 references.
    pub ws100: f64,
    /// Mean working-set size at a window of 1000 references.
    pub ws1000: f64,
    /// Hit ratio of a 64-entry fully associative LRU cache.
    pub lru64: f64,
}

impl LocalityReport {
    /// Builds the report for a trace.
    pub fn measure(trace: &[u64]) -> LocalityReport {
        let unique = {
            let mut v: Vec<u64> = trace.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        LocalityReport {
            references: trace.len(),
            unique,
            ws100: working_set_size(trace, 100),
            ws1000: working_set_size(trace, 1000),
            lru64: lru_hit_ratios(trace, &[64])[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_of_constant_trace_is_one() {
        let trace = vec![5u64; 100];
        assert!((working_set_size(&trace, 10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn working_set_grows_with_window() {
        let trace: Vec<u64> = (0..1000).map(|i| i % 50).collect();
        let w10 = working_set_size(&trace, 10);
        let w100 = working_set_size(&trace, 100);
        assert!(w10 < w100);
        assert!(w100 <= 50.0);
    }

    #[test]
    fn working_set_window_larger_than_distinct_saturates() {
        let trace: Vec<u64> = (0..400).map(|i| i % 4).collect();
        let ws = working_set_size(&trace, 100);
        assert!(ws > 3.5 && ws <= 4.0);
    }

    #[test]
    fn stack_distance_basics() {
        let d = stack_distances(&[1, 2, 1, 2, 3, 1]);
        assert_eq!(d, vec![None, None, Some(1), Some(1), None, Some(2)]);
    }

    #[test]
    fn lru_hit_ratio_matches_simulated_cache() {
        use crate::cache::{Access, Geometry, SetAssocCache};
        let trace: Vec<u64> = (0..2000).map(|i| (i * i + i / 7) % 37).collect();
        for cap in [4usize, 8, 16, 32] {
            let analytic = lru_hit_ratios(&trace, &[cap])[0];
            let mut cache = SetAssocCache::new(Geometry::fully_associative(cap));
            let mut hits = 0u64;
            for &a in &trace {
                if cache.access(a) == Access::Hit {
                    hits += 1;
                }
            }
            let simulated = hits as f64 / trace.len() as f64;
            assert!(
                (analytic - simulated).abs() < 1e-9,
                "cap {cap}: {analytic} vs {simulated}"
            );
        }
    }

    #[test]
    fn hit_ratio_is_monotone_in_capacity() {
        let trace: Vec<u64> = (0..5000).map(|i| (i * 13 + i % 11) % 97).collect();
        let ratios = lru_hit_ratios(&trace, &[1, 2, 4, 8, 16, 32, 64, 128]);
        for w in ratios.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn loop_trace_hits_once_capacity_covers_loop() {
        // A loop over 10 addresses repeated 100 times.
        let trace: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let ratios = lru_hit_ratios(&trace, &[9, 10]);
        // Capacity 9 thrashes under LRU (classic pathological case);
        // capacity 10 captures everything but cold misses.
        assert!(ratios[0] < 0.01);
        assert!(ratios[1] > 0.98);
    }

    #[test]
    fn report_fields_are_consistent() {
        let trace: Vec<u64> = (0..3000).map(|i| i % 20).collect();
        let r = LocalityReport::measure(&trace);
        assert_eq!(r.references, 3000);
        assert_eq!(r.unique, 20);
        assert!(r.lru64 > 0.99);
        assert!(r.ws100 <= 20.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        assert_eq!(working_set_size(&[], 10), 0.0);
        assert!(stack_distances(&[]).is_empty());
        assert_eq!(lru_hit_ratios(&[], &[4]), vec![0.0]);
    }
}
