//! Bit-granular reader/writer used by all encoded representations.
//!
//! The paper's encodings pack fields that "span the boundaries of the units
//! of memory access"; this module provides exactly that: an MSB-first bit
//! stream over a byte buffer.
//!
//! The reader has two read paths. [`BitReader::read`] extracts a whole
//! field from one 64-bit big-endian window of the buffer — the
//! word-batched fast plane every production decoder uses.
//! [`BitReader::read_bitwise`] is the original bit-at-a-time loop, kept
//! verbatim as the *reference* path: the tree-walking reference decoders
//! read through it, so the fast plane can be differentially tested (and
//! benchmarked) against an implementation whose cost profile matches the
//! paper's "examine one bit per level" description. Both paths share the
//! cursor and the end-of-stream rules, so they are interchangeable
//! mid-stream.

/// Appends bit fields to a byte buffer, MSB-first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total bits written.
    len: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.len
    }

    /// Writes the low `width` bits of `value`, MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = (self.len / 8) as usize;
            if byte_idx == self.buf.len() {
                self.buf.push(0);
            }
            let bit_idx = 7 - (self.len % 8) as u32;
            self.buf[byte_idx] |= (bit as u8) << bit_idx;
            self.len += 1;
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Finishes writing, returning the buffer and the exact bit length.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.buf, self.len)
    }
}

/// Reads bit fields from a byte buffer, MSB-first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: u64,
    len: u64,
    /// Word-batched refill buffer: a cached 64-bit window of the stream
    /// starting at bit `win_pos`, MSB-aligned. The fast read path serves
    /// up to 57 bits per call out of this register and reloads it only
    /// when fewer remain, instead of reassembling a window from bytes on
    /// every read. Interior mutability keeps [`BitReader::peek`] `&self`.
    win: std::cell::Cell<u64>,
    win_pos: std::cell::Cell<u64>,
}

/// `win_pos` value marking the refill buffer invalid: no real bit
/// position reaches it, so the first fast read always reloads.
const WIN_INVALID: u64 = u64::MAX >> 1;

/// An attempt to read past the end of a bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsExhausted;

impl std::fmt::Display for BitsExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "read past end of bit stream")
    }
}

impl std::error::Error for BitsExhausted {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `len` bits of `buf`, starting at bit 0.
    pub fn new(buf: &'a [u8], len: u64) -> Self {
        Self::at(buf, len, 0)
    }

    /// Creates a reader positioned at bit offset `at`.
    pub fn at(buf: &'a [u8], len: u64, at: u64) -> Self {
        BitReader {
            buf,
            pos: at,
            len,
            win: std::cell::Cell::new(0),
            win_pos: std::cell::Cell::new(WIN_INVALID),
        }
    }

    /// Current bit position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Valid bits in the stream: the declared `len` clamped to the backing
    /// buffer, so a stream whose header claims more bits than the buffer
    /// holds (a truncated or corrupted image) errors instead of reading
    /// out of bounds.
    #[inline]
    fn avail(&self) -> u64 {
        self.len.min(self.buf.len() as u64 * 8)
    }

    /// Bits left before the end of the stream.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.avail().saturating_sub(self.pos)
    }

    /// Loads 64 bits starting at bit `bitpos`, MSB-aligned (bit 63 of the
    /// result is the bit at `bitpos`). Bits past the end of the buffer
    /// read as zero; callers bound their consumption by [`Self::avail`].
    #[inline]
    fn load64(&self, bitpos: u64) -> u64 {
        let byte = (bitpos / 8) as usize;
        let shift = (bitpos % 8) as u32;
        // One branch: the common in-bounds case reads 9 bytes directly;
        // near the end the window is padded with zeros.
        let w: [u8; 9] = if byte + 9 <= self.buf.len() {
            self.buf[byte..byte + 9].try_into().expect("9-byte window")
        } else {
            let mut w = [0u8; 9];
            if byte < self.buf.len() {
                let n = self.buf.len() - byte;
                w[..n].copy_from_slice(&self.buf[byte..]);
            }
            w
        };
        let hi = u64::from_be_bytes(w[..8].try_into().expect("8-byte head"));
        if shift == 0 {
            hi
        } else {
            (hi << shift) | (w[8] as u64 >> (8 - shift))
        }
    }

    /// The 64-bit window at the cursor, served from the refill buffer.
    /// Valid for widths up to 57: the cached window is reused while at
    /// least 57 bits of it lie ahead of the cursor and reloaded
    /// otherwise, so consecutive reads cost two shifts and one
    /// well-predicted branch each instead of reassembling bytes.
    #[inline]
    fn window(&self) -> u64 {
        let off = self.pos.wrapping_sub(self.win_pos.get());
        if off < 8 {
            self.win.get() << off
        } else {
            let w = self.load64(self.pos);
            self.win.set(w);
            self.win_pos.set(self.pos);
            w
        }
    }

    /// Reads `width` bits, MSB-first, extracting the whole field from one
    /// 64-bit window — the word-batched fast path.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if fewer than `width` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    #[inline]
    pub fn read(&mut self, width: u32) -> Result<u64, BitsExhausted> {
        assert!(width <= 64, "width {width} > 64");
        if self.pos + width as u64 > self.avail() {
            return Err(BitsExhausted);
        }
        if width == 0 {
            return Ok(0);
        }
        let out = if width <= 57 {
            self.window() >> (64 - width)
        } else {
            // Wider than the refill window guarantees: load directly.
            self.load64(self.pos) >> (64 - width)
        };
        self.pos += width as u64;
        Ok(out)
    }

    /// Reads `width` bits one bit at a time — the reference path whose
    /// cost profile the modeled decoders assume. Byte-for-byte the seed
    /// implementation of [`BitReader::read`]; identical results and
    /// errors, different host cost.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if fewer than `width` bits remain.
    pub fn read_bitwise(&mut self, width: u32) -> Result<u64, BitsExhausted> {
        assert!(width <= 64, "width {width} > 64");
        if self.pos + width as u64 > self.avail() {
            return Err(BitsExhausted);
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.buf[(self.pos / 8) as usize];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(out)
    }

    /// Returns the next `width` bits without consuming them, MSB-first in
    /// the low bits of the result. Bits past the end of the stream read
    /// as zero — callers that care must check [`BitReader::remaining`]
    /// before trusting more than `remaining()` bits of the window. This
    /// is the table decoder's probe: one load, no cursor movement, no
    /// error path.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 57 (the widest window one
    /// unaligned 64-bit load can always supply).
    #[inline]
    pub fn peek(&self, width: u32) -> u64 {
        assert!(
            (1..=57).contains(&width),
            "peek width {width} out of 1..=57"
        );
        let avail = self.avail();
        // Fast path: a full 64-bit window of real stream bits remains, so
        // no padding can leak into the peeked value.
        if self.pos + 64 <= avail {
            return self.window() >> (64 - width);
        }
        let window = if self.pos >= avail {
            0
        } else {
            let raw = self.window();
            // Zero bits the stream does not actually hold (the buffer may
            // be longer than the declared bit length).
            let valid = avail - self.pos;
            if valid < 64 {
                raw & !((1u64 << (64 - valid)) - 1)
            } else {
                raw
            }
        };
        window >> (64 - width)
    }

    /// Advances the cursor by `width` bits previously examined with
    /// [`BitReader::peek`].
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if fewer than `width` bits remain; the
    /// cursor does not move.
    #[inline]
    pub fn consume(&mut self, width: u32) -> Result<(), BitsExhausted> {
        if self.pos + width as u64 > self.avail() {
            return Err(BitsExhausted);
        }
        self.pos += width as u64;
        Ok(())
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, BitsExhausted> {
        Ok(self.read_bitwise(1)? == 1)
    }
}

/// Number of bits needed to represent values in `0..=max` (at least 1).
pub fn bits_for(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xDEADBEEF, 32);
        w.write(1, 1);
        w.write(0, 5);
        w.write(u64::MAX, 64);
        let (buf, len) = w.finish();
        assert_eq!(len, 3 + 32 + 1 + 5 + 64);
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.read(3).unwrap(), 0b101);
        assert_eq!(r.read(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read(1).unwrap(), 1);
        assert_eq!(r.read(5).unwrap(), 0);
        assert_eq!(r.read(64).unwrap(), u64::MAX);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn fields_span_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write(0b1111111, 7);
        w.write(0b10, 2); // crosses byte 0 -> 1
        let (buf, len) = w.finish();
        assert_eq!(len, 9);
        assert_eq!(buf.len(), 2);
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.read(7).unwrap(), 0b1111111);
        assert_eq!(r.read(2).unwrap(), 0b10);
    }

    #[test]
    fn reader_at_offset() {
        let mut w = BitWriter::new();
        w.write(0b1010, 4);
        w.write(0b11, 2);
        let (buf, len) = w.finish();
        let mut r = BitReader::at(&buf, len, 4);
        assert_eq!(r.read(2).unwrap(), 0b11);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(8, 3);
    }

    #[test]
    fn bits_for_bounds() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..10 {
            w.write_bit(i % 3 == 0);
        }
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        for i in 0..10 {
            assert_eq!(r.read_bit().unwrap(), i % 3 == 0);
        }
    }

    #[test]
    fn position_tracks_reads() {
        let mut w = BitWriter::new();
        w.write(0xAB, 8);
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        assert_eq!(r.position(), 0);
        r.read(3).unwrap();
        assert_eq!(r.position(), 3);
    }

    /// Seeded cross-check: the batched and bitwise paths agree on every
    /// read, at every width, from every alignment — including the error.
    #[test]
    fn batched_reads_match_bitwise_reads() {
        let mut w = BitWriter::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut widths = Vec::new();
        for i in 0..400u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let width = (x >> 59) as u32 % 17 + 1; // 1..=17, misaligned mix
            let value = x & ((1u64 << width) - 1);
            w.write(value, width);
            widths.push(width + i % 2); // sometimes read a different width
        }
        let (buf, len) = w.finish();
        let mut fast = BitReader::new(&buf, len);
        let mut slow = BitReader::new(&buf, len);
        for width in widths {
            let a = fast.read(width.min(64));
            let b = slow.read_bitwise(width.min(64));
            assert_eq!(a, b);
            assert_eq!(fast.position(), slow.position());
            if a.is_err() {
                break;
            }
        }
    }

    #[test]
    fn peek_does_not_consume_and_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write(0b1011, 4);
        let (buf, len) = w.finish();
        let r = BitReader::new(&buf, len);
        assert_eq!(r.peek(4), 0b1011);
        // Past-the-end bits are zero padding, position untouched.
        assert_eq!(r.peek(8), 0b1011_0000);
        assert_eq!(r.position(), 0);
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    fn peek_masks_undeclared_buffer_bits() {
        // The buffer holds 8 bits but the stream declares only 3: the
        // undeclared tail must read as zero, exactly as read() refuses it.
        let buf = [0b1111_1111u8];
        let r = BitReader::new(&buf, 3);
        assert_eq!(r.peek(8), 0b1110_0000);
    }

    #[test]
    fn consume_checks_the_end_of_stream() {
        let buf = [0xFFu8];
        let mut r = BitReader::new(&buf, 8);
        r.consume(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.consume(4), Err(BitsExhausted));
        assert_eq!(r.position(), 5, "failed consume must not move");
        r.consume(3).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn read_beyond_declared_length_errors() {
        // Buffer longer than the declared bit length: both paths refuse.
        let buf = [0xAB, 0xCD];
        let mut a = BitReader::new(&buf, 4);
        assert_eq!(a.read(4).unwrap(), 0xA);
        assert!(a.read(1).is_err());
        let mut b = BitReader::new(&buf, 4);
        assert_eq!(b.read_bitwise(4).unwrap(), 0xA);
        assert!(b.read_bitwise(1).is_err());
    }

    #[test]
    fn truncated_buffer_clamps_declared_length() {
        // Declared length exceeds the buffer: reads clamp to real bytes.
        let buf = [0xFFu8];
        let mut r = BitReader::new(&buf, 64);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.read(8).unwrap(), 0xFF);
        assert!(r.read(1).is_err());
    }
}
