//! Validation of the Section-7 analytic model against the cycle-accurate
//! simulation, and regression tests pinning the published tables.

use dir::encode::SchemeKind;
use uhm::model::{printed, published, ModeKind, Params};
use uhm::{CostModel, DtbConfig, Machine, Mode};

/// The printed closed forms reproduce every cell of the published Tables 2
/// and 3 within rounding.
#[test]
fn published_tables_regenerate() {
    for (i, &d) in published::D_VALUES.iter().enumerate() {
        for (j, &x) in published::X_VALUES.iter().enumerate() {
            assert!(
                (printed::f1(d, x) - published::TABLE2[i][j]).abs() < 0.01,
                "table 2 cell ({i},{j})"
            );
            assert!(
                (printed::f2(d, x) - published::TABLE3[i][j]).abs() < 0.01,
                "table 3 cell ({i},{j})"
            );
        }
    }
}

/// The analytic model, parameterised entirely from measurements, predicts
/// each machine's simulated time within 5%.
#[test]
fn model_predicts_simulation() {
    let costs = CostModel::default();
    for sample in [
        &hlr::programs::SIEVE,
        &hlr::programs::FIB_REC,
        &hlr::programs::GCD_CHAIN,
        &hlr::programs::STRAIGHTLINE,
    ] {
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        let machine = Machine::new(&program, SchemeKind::PairHuffman);
        let dtb_cfg = DtbConfig::with_capacity(64);
        let interp = machine.run(&Mode::Interpreter).expect("runs");
        let dtb = machine.run(&Mode::Dtb(dtb_cfg)).expect("runs");
        let cache = machine
            .run(&Mode::ICache {
                geometry: memsim::Geometry::new(96, 4),
            })
            .expect("runs");
        let params = Params::from_reports(&costs, &interp, &dtb, &cache);
        for (report, kind) in [
            (&interp, ModeKind::Interpreter),
            (&dtb, ModeKind::Dtb),
            (&cache, ModeKind::ICache),
        ] {
            let sim = report.metrics.time_per_instruction();
            let model = params.predict(&kind);
            let err = (model - sim).abs() / sim;
            assert!(
                err < 0.05,
                "{}: {kind:?} model {model:.2} vs sim {sim:.2} ({:.1}% off)",
                sample.name,
                err * 100.0
            );
        }
    }
}

/// Monotonicity properties of the model that the paper relies on: F1 and
/// F2 grow with `d` and shrink with `x` under both parameterisations.
#[test]
fn figures_of_merit_monotonicity() {
    let ds = [5.0, 10.0, 20.0, 30.0, 40.0];
    let xs = [2.0, 5.0, 10.0, 20.0, 40.0];
    for w in ds.windows(2) {
        assert!(printed::f1(w[1], 10.0) > printed::f1(w[0], 10.0));
        assert!(printed::f2(w[1], 10.0) > printed::f2(w[0], 10.0));
        let a = Params::paper_stated(w[0], 10.0);
        let b = Params::paper_stated(w[1], 10.0);
        assert!(b.f2() > a.f2());
    }
    for w in xs.windows(2) {
        assert!(printed::f1(20.0, w[1]) < printed::f1(20.0, w[0]));
        assert!(printed::f2(20.0, w[1]) < printed::f2(20.0, w[0]));
        let a = Params::paper_stated(20.0, w[0]);
        let b = Params::paper_stated(20.0, w[1]);
        assert!(b.f2() < a.f2());
    }
}

/// §7's closing caveat, reproduced: "the DTB is not particularly effective
/// if the task of decoding is trivial or if the time spent in the semantic
/// routines is much greater" — as d → 0 or x → ∞, F2 → small.
#[test]
fn dtb_benefit_vanishes_when_decode_is_trivial_or_x_dominates() {
    let p_trivial_decode = Params::paper_stated(0.5, 10.0);
    assert!(p_trivial_decode.f2() < 20.0);
    let p_vector_machine = Params::paper_stated(10.0, 500.0);
    assert!(p_vector_machine.f2() < 5.0);
    // Whereas the sweet spot is large:
    assert!(Params::paper_stated(30.0, 5.0).f2() > 50.0);
}

/// The measured hit ratio feeds the model: degrading h_D in the model
/// tracks the simulated effect of shrinking the DTB.
#[test]
fn hit_ratio_degradation_tracks_capacity() {
    let program = dir::compiler::compile(&hlr::programs::QUEENS.compile().expect("compiles"));
    let machine = Machine::new(&program, SchemeKind::PairHuffman);
    let mut previous_h = 1.1f64;
    let mut previous_t = 0.0f64;
    for cap in [256usize, 32, 4] {
        let report = machine
            .run(&Mode::Dtb(DtbConfig::with_capacity(cap)))
            .expect("runs");
        let h = report.metrics.dtb.unwrap().hit_ratio();
        let t = report.metrics.time_per_instruction();
        assert!(h < previous_h, "h_D must fall as capacity falls");
        assert!(t > previous_t, "T2 must rise as capacity falls");
        previous_h = h;
        previous_t = t;
    }
}
