//! The DIR instruction set.
//!
//! A *directly interpretable representation* in Rau's sense: no associative
//! memory is needed (all names are numeric slots), the syntax is a flat,
//! context-insensitive instruction sequence, and no preliminary scan is
//! required before interpretation can begin.
//!
//! The ISA is a stack intermediate language with two semantic tiers:
//!
//! * the **base tier** emitted by the [`compiler`](crate::compiler) — pure
//!   stack operations, one effect per instruction;
//! * the **fused tier** produced by the [`fuse`](crate::fuse) pass — two- and
//!   three-address instructions (`BinLocals`, `IncLocal`, `CmpConstBr`, ...)
//!   that raise the semantic level, shrink the program and reduce the
//!   steering work per operation, exactly the "increase the complexity and
//!   variety of the opcodes" move of the paper's Section 3.2.
//!
//! Every instruction exposes a uniform *(opcode, fields)* view through
//! [`Inst::opcode`] and [`Inst::fields`]; the five encoding schemes in
//! [`encode`](crate::encode) are written against that view only, so adding
//! an instruction automatically extends all encoders.

use hlr::ast::BinOp;
use hlr::ast::UnOp;

/// An arithmetic/logic operation shared by the DIR ALU instructions, the
/// fused instructions and the UHM micro-ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Wrapping multiplication.
    Mul = 2,
    /// Truncating division; traps on zero divisor.
    Div = 3,
    /// Remainder; traps on zero divisor.
    Mod = 4,
    /// `==` producing 0/1.
    Eq = 5,
    /// `!=` producing 0/1.
    Ne = 6,
    /// `<` producing 0/1.
    Lt = 7,
    /// `<=` producing 0/1.
    Le = 8,
    /// `>` producing 0/1.
    Gt = 9,
    /// `>=` producing 0/1.
    Ge = 10,
    /// Strict logical and on 0/1 values.
    And = 11,
    /// Strict logical or on 0/1 values.
    Or = 12,
}

/// All binary [`AluOp`]s in discriminant order.
pub const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Mod,
    AluOp::Eq,
    AluOp::Ne,
    AluOp::Lt,
    AluOp::Le,
    AluOp::Gt,
    AluOp::Ge,
    AluOp::And,
    AluOp::Or,
];

/// A division or remainder by zero detected by [`AluOp::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivByZero;

impl AluOp {
    /// True for the operations whose [`AluOp::apply`] can fail: `Div` and
    /// `Mod` trap when the right operand is zero.
    #[must_use]
    pub fn traps_on_zero(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Mod)
    }

    /// Applies the operation with the `Div`/`Mod` zero guard elided.
    ///
    /// Callers must hold a static proof that `b != 0` at this site (a
    /// [`SiteFacts`](crate::facts::SiteFacts) bit). On a broken proof the
    /// division panics via Rust's own zero check instead of returning the
    /// modeled trap — exactly the failure mode the conformance auditor
    /// exists to rule out before any fact reaches an executor.
    #[must_use]
    pub fn apply_unchecked(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Div => a.wrapping_div(b),
            AluOp::Mod => a.wrapping_rem(b),
            other => other
                .apply(a, b)
                .expect("only Div/Mod can fail and they are handled above"),
        }
    }

    /// Applies the operation with RAUL semantics (wrapping arithmetic, 0/1
    /// booleans).
    ///
    /// # Errors
    ///
    /// Returns [`DivByZero`] for `Div`/`Mod` with `b == 0`.
    pub fn apply(self, a: i64, b: i64) -> Result<i64, DivByZero> {
        Ok(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return Err(DivByZero);
                }
                a.wrapping_div(b)
            }
            AluOp::Mod => {
                if b == 0 {
                    return Err(DivByZero);
                }
                a.wrapping_rem(b)
            }
            AluOp::Eq => (a == b) as i64,
            AluOp::Ne => (a != b) as i64,
            AluOp::Lt => (a < b) as i64,
            AluOp::Le => (a <= b) as i64,
            AluOp::Gt => (a > b) as i64,
            AluOp::Ge => (a >= b) as i64,
            AluOp::And => ((a != 0) && (b != 0)) as i64,
            AluOp::Or => ((a != 0) || (b != 0)) as i64,
        })
    }

    /// Converts a discriminant back into an `AluOp`.
    #[inline]
    pub fn from_u8(v: u8) -> Option<AluOp> {
        ALU_OPS.get(v as usize).copied()
    }

    /// Maps an HLR binary operator onto its ALU operation.
    pub fn from_binop(op: BinOp) -> AluOp {
        match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Mod => AluOp::Mod,
            BinOp::Eq => AluOp::Eq,
            BinOp::Ne => AluOp::Ne,
            BinOp::Lt => AluOp::Lt,
            BinOp::Le => AluOp::Le,
            BinOp::Gt => AluOp::Gt,
            BinOp::Ge => AluOp::Ge,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
        }
    }
}

/// A DIR instruction.
///
/// Branch targets and `Call` operands are absolute instruction indices in
/// the flat code array — the "DIR address space" that keys the dynamic
/// translation buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // ---- Base tier: data movement -------------------------------------
    /// Push an immediate constant.
    PushConst(i64),
    /// Push frame slot `.0`.
    PushLocal(u32),
    /// Push global slot `.0`.
    PushGlobal(u32),
    /// Pop into frame slot `.0`.
    StoreLocal(u32),
    /// Pop into global slot `.0`.
    StoreGlobal(u32),
    /// Pop an index, push `frame[base + index]`; traps when out of bounds.
    LoadArrLocal {
        /// First slot of the array in the frame.
        base: u32,
        /// Element count for the bounds check.
        len: u32,
    },
    /// Pop an index, push `globals[base + index]`; traps when out of bounds.
    LoadArrGlobal {
        /// First slot of the array in the global area.
        base: u32,
        /// Element count for the bounds check.
        len: u32,
    },
    /// Pop a value then an index, store into `frame[base + index]`.
    StoreArrLocal {
        /// First slot of the array in the frame.
        base: u32,
        /// Element count for the bounds check.
        len: u32,
    },
    /// Pop a value then an index, store into `globals[base + index]`.
    StoreArrGlobal {
        /// First slot of the array in the global area.
        base: u32,
        /// Element count for the bounds check.
        len: u32,
    },
    /// Discard the top of stack.
    Pop,

    // ---- Base tier: ALU ------------------------------------------------
    /// Pop `b` then `a`, push `a op b`.
    Bin(AluOp),
    /// Negate the top of stack.
    Neg,
    /// Logical-not the top of stack (0/1).
    Not,

    // ---- Base tier: control -------------------------------------------
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfFalse(u32),
    /// Pop; jump when non-zero.
    JumpIfTrue(u32),
    /// Call procedure `.0` (argument count and frame size come from the
    /// program's procedure table).
    Call(u32),
    /// Return to the caller; a function's result is on the operand stack.
    Return,
    /// Stop execution.
    Halt,
    /// Pop and append to the program output.
    Write,

    // ---- Fused tier (higher semantic level) ----------------------------
    /// `frame[dst] := frame[a] op frame[b]`.
    BinLocals {
        /// Operation.
        op: AluOp,
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// Destination slot.
        dst: u32,
    },
    /// `frame[slot] := frame[slot] + imm` (wrapping).
    IncLocal {
        /// Target slot.
        slot: u32,
        /// Added constant.
        imm: i64,
    },
    /// `frame[slot] := imm`.
    SetLocalConst {
        /// Target slot.
        slot: u32,
        /// Stored constant.
        imm: i64,
    },
    /// `if !(frame[slot] op imm) jump target` — a fused compare-and-branch
    /// (the branch is taken when the comparison is *false*, matching the
    /// `JumpIfFalse` lowering of structured conditionals).
    CmpConstBr {
        /// Comparison operation.
        op: AluOp,
        /// Compared slot.
        slot: u32,
        /// Compared constant.
        imm: i64,
        /// Branch target when the comparison fails.
        target: u32,
    },
    /// `if !(frame[a] op frame[b]) jump target`.
    CmpLocalsBr {
        /// Comparison operation.
        op: AluOp,
        /// Left slot.
        a: u32,
        /// Right slot.
        b: u32,
        /// Branch target when the comparison fails.
        target: u32,
    },
}

/// Opcode identifiers, one per [`Inst`] shape.
///
/// The discriminants are the symbols over which the frequency-based
/// encodings build their code trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // each mirrors the identically-named `Inst` variant
pub enum Opcode {
    PushConst = 0,
    PushLocal,
    PushGlobal,
    StoreLocal,
    StoreGlobal,
    LoadArrLocal,
    LoadArrGlobal,
    StoreArrLocal,
    StoreArrGlobal,
    Pop,
    Bin,
    Neg,
    Not,
    Jump,
    JumpIfFalse,
    JumpIfTrue,
    Call,
    Return,
    Halt,
    Write,
    BinLocals,
    IncLocal,
    SetLocalConst,
    CmpConstBr,
    CmpLocalsBr,
}

/// Number of distinct opcodes.
pub const OPCODE_COUNT: usize = 25;

/// All opcodes in discriminant order.
pub const OPCODES: [Opcode; OPCODE_COUNT] = [
    Opcode::PushConst,
    Opcode::PushLocal,
    Opcode::PushGlobal,
    Opcode::StoreLocal,
    Opcode::StoreGlobal,
    Opcode::LoadArrLocal,
    Opcode::LoadArrGlobal,
    Opcode::StoreArrLocal,
    Opcode::StoreArrGlobal,
    Opcode::Pop,
    Opcode::Bin,
    Opcode::Neg,
    Opcode::Not,
    Opcode::Jump,
    Opcode::JumpIfFalse,
    Opcode::JumpIfTrue,
    Opcode::Call,
    Opcode::Return,
    Opcode::Halt,
    Opcode::Write,
    Opcode::BinLocals,
    Opcode::IncLocal,
    Opcode::SetLocalConst,
    Opcode::CmpConstBr,
    Opcode::CmpLocalsBr,
];

/// The kind of an operand field, which determines its width under each
/// encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// A frame slot number.
    Slot,
    /// A global-area slot number.
    GlobalSlot,
    /// An array length (bounds-check operand).
    Len,
    /// An absolute instruction index (branch target).
    Target,
    /// A procedure index.
    Proc,
    /// A signed immediate, carried zigzag-encoded.
    Imm,
    /// An [`AluOp`] discriminant.
    Alu,
}

/// All field kinds, for tabulation.
pub const FIELD_KINDS: [FieldKind; 7] = [
    FieldKind::Slot,
    FieldKind::GlobalSlot,
    FieldKind::Len,
    FieldKind::Target,
    FieldKind::Proc,
    FieldKind::Imm,
    FieldKind::Alu,
];

impl FieldKind {
    /// Index of this kind within [`FIELD_KINDS`].
    pub fn index(self) -> usize {
        match self {
            FieldKind::Slot => 0,
            FieldKind::GlobalSlot => 1,
            FieldKind::Len => 2,
            FieldKind::Target => 3,
            FieldKind::Proc => 4,
            FieldKind::Imm => 5,
            FieldKind::Alu => 6,
        }
    }
}

/// Zigzag-encodes a signed immediate for width-based field encoding.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// An error produced when reassembling an instruction from its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode discriminant is not a valid [`Opcode`].
    BadOpcode(u8),
    /// An [`AluOp`] field carried an invalid discriminant.
    BadAluOp(u64),
    /// The number of fields did not match the opcode's schema.
    FieldCount {
        /// The opcode being rebuilt.
        opcode: Opcode,
        /// Fields expected by the schema.
        expected: usize,
        /// Fields supplied.
        got: usize,
    },
    /// A field value overflowed its natural type (e.g. a slot > `u32::MAX`).
    FieldRange(FieldKind, u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(v) => write!(f, "invalid opcode discriminant {v}"),
            DecodeError::BadAluOp(v) => write!(f, "invalid alu-op discriminant {v}"),
            DecodeError::FieldCount {
                opcode,
                expected,
                got,
            } => write!(f, "{opcode:?} expects {expected} fields, got {got}"),
            DecodeError::FieldRange(kind, v) => {
                write!(f, "field {kind:?} value {v} out of range")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Opcode {
    /// Converts a discriminant back into an `Opcode`.
    #[inline]
    pub fn from_u8(v: u8) -> Option<Opcode> {
        OPCODES.get(v as usize).copied()
    }

    /// The operand-field schema of this opcode, in encoding order.
    #[inline]
    pub fn field_kinds(self) -> &'static [FieldKind] {
        use FieldKind::*;
        match self {
            Opcode::PushConst => &[Imm],
            Opcode::PushLocal | Opcode::StoreLocal => &[Slot],
            Opcode::PushGlobal | Opcode::StoreGlobal => &[GlobalSlot],
            Opcode::LoadArrLocal | Opcode::StoreArrLocal => &[Slot, Len],
            Opcode::LoadArrGlobal | Opcode::StoreArrGlobal => &[GlobalSlot, Len],
            Opcode::Pop
            | Opcode::Neg
            | Opcode::Not
            | Opcode::Return
            | Opcode::Halt
            | Opcode::Write => &[],
            Opcode::Bin => &[Alu],
            Opcode::Jump | Opcode::JumpIfFalse | Opcode::JumpIfTrue => &[Target],
            Opcode::Call => &[Proc],
            Opcode::BinLocals => &[Alu, Slot, Slot, Slot],
            Opcode::IncLocal => &[Slot, Imm],
            Opcode::SetLocalConst => &[Slot, Imm],
            Opcode::CmpConstBr => &[Alu, Slot, Imm, Target],
            Opcode::CmpLocalsBr => &[Alu, Slot, Slot, Target],
        }
    }

    /// Returns `true` for opcodes introduced by the fusion pass (the higher
    /// semantic tier).
    pub fn is_fused(self) -> bool {
        matches!(
            self,
            Opcode::BinLocals
                | Opcode::IncLocal
                | Opcode::SetLocalConst
                | Opcode::CmpConstBr
                | Opcode::CmpLocalsBr
        )
    }
}

impl Inst {
    /// The opcode of this instruction.
    #[inline]
    pub fn opcode(self) -> Opcode {
        match self {
            Inst::PushConst(_) => Opcode::PushConst,
            Inst::PushLocal(_) => Opcode::PushLocal,
            Inst::PushGlobal(_) => Opcode::PushGlobal,
            Inst::StoreLocal(_) => Opcode::StoreLocal,
            Inst::StoreGlobal(_) => Opcode::StoreGlobal,
            Inst::LoadArrLocal { .. } => Opcode::LoadArrLocal,
            Inst::LoadArrGlobal { .. } => Opcode::LoadArrGlobal,
            Inst::StoreArrLocal { .. } => Opcode::StoreArrLocal,
            Inst::StoreArrGlobal { .. } => Opcode::StoreArrGlobal,
            Inst::Pop => Opcode::Pop,
            Inst::Bin(_) => Opcode::Bin,
            Inst::Neg => Opcode::Neg,
            Inst::Not => Opcode::Not,
            Inst::Jump(_) => Opcode::Jump,
            Inst::JumpIfFalse(_) => Opcode::JumpIfFalse,
            Inst::JumpIfTrue(_) => Opcode::JumpIfTrue,
            Inst::Call(_) => Opcode::Call,
            Inst::Return => Opcode::Return,
            Inst::Halt => Opcode::Halt,
            Inst::Write => Opcode::Write,
            Inst::BinLocals { .. } => Opcode::BinLocals,
            Inst::IncLocal { .. } => Opcode::IncLocal,
            Inst::SetLocalConst { .. } => Opcode::SetLocalConst,
            Inst::CmpConstBr { .. } => Opcode::CmpConstBr,
            Inst::CmpLocalsBr { .. } => Opcode::CmpLocalsBr,
        }
    }

    /// The operand-field values of this instruction, in schema order.
    /// Immediates are zigzag-encoded; [`AluOp`]s are discriminants.
    pub fn fields(self) -> Vec<u64> {
        match self {
            Inst::PushConst(v) => vec![zigzag(v)],
            Inst::PushLocal(s)
            | Inst::StoreLocal(s)
            | Inst::PushGlobal(s)
            | Inst::StoreGlobal(s) => vec![s as u64],
            Inst::LoadArrLocal { base, len }
            | Inst::LoadArrGlobal { base, len }
            | Inst::StoreArrLocal { base, len }
            | Inst::StoreArrGlobal { base, len } => vec![base as u64, len as u64],
            Inst::Pop | Inst::Neg | Inst::Not | Inst::Return | Inst::Halt | Inst::Write => {
                vec![]
            }
            Inst::Bin(op) => vec![op as u64],
            Inst::Jump(t) | Inst::JumpIfFalse(t) | Inst::JumpIfTrue(t) => vec![t as u64],
            Inst::Call(p) => vec![p as u64],
            Inst::BinLocals { op, a, b, dst } => {
                vec![op as u64, a as u64, b as u64, dst as u64]
            }
            Inst::IncLocal { slot, imm } => vec![slot as u64, zigzag(imm)],
            Inst::SetLocalConst { slot, imm } => vec![slot as u64, zigzag(imm)],
            Inst::CmpConstBr {
                op,
                slot,
                imm,
                target,
            } => vec![op as u64, slot as u64, zigzag(imm), target as u64],
            Inst::CmpLocalsBr { op, a, b, target } => {
                vec![op as u64, a as u64, b as u64, target as u64]
            }
        }
    }

    /// Reassembles an instruction from an opcode and raw field values (the
    /// inverse of [`Inst::fields`]).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the field count, an ALU discriminant
    /// or a field range is invalid.
    #[inline]
    pub fn from_parts(opcode: Opcode, fields: &[u64]) -> Result<Inst, DecodeError> {
        let schema = opcode.field_kinds();
        if fields.len() != schema.len() {
            return Err(DecodeError::FieldCount {
                opcode,
                expected: schema.len(),
                got: fields.len(),
            });
        }
        let u32_at = |i: usize| -> Result<u32, DecodeError> {
            u32::try_from(fields[i]).map_err(|_| DecodeError::FieldRange(schema[i], fields[i]))
        };
        let alu_at = |i: usize| -> Result<AluOp, DecodeError> {
            u8::try_from(fields[i])
                .ok()
                .and_then(AluOp::from_u8)
                .ok_or(DecodeError::BadAluOp(fields[i]))
        };
        Ok(match opcode {
            Opcode::PushConst => Inst::PushConst(unzigzag(fields[0])),
            Opcode::PushLocal => Inst::PushLocal(u32_at(0)?),
            Opcode::PushGlobal => Inst::PushGlobal(u32_at(0)?),
            Opcode::StoreLocal => Inst::StoreLocal(u32_at(0)?),
            Opcode::StoreGlobal => Inst::StoreGlobal(u32_at(0)?),
            Opcode::LoadArrLocal => Inst::LoadArrLocal {
                base: u32_at(0)?,
                len: u32_at(1)?,
            },
            Opcode::LoadArrGlobal => Inst::LoadArrGlobal {
                base: u32_at(0)?,
                len: u32_at(1)?,
            },
            Opcode::StoreArrLocal => Inst::StoreArrLocal {
                base: u32_at(0)?,
                len: u32_at(1)?,
            },
            Opcode::StoreArrGlobal => Inst::StoreArrGlobal {
                base: u32_at(0)?,
                len: u32_at(1)?,
            },
            Opcode::Pop => Inst::Pop,
            Opcode::Bin => Inst::Bin(alu_at(0)?),
            Opcode::Neg => Inst::Neg,
            Opcode::Not => Inst::Not,
            Opcode::Jump => Inst::Jump(u32_at(0)?),
            Opcode::JumpIfFalse => Inst::JumpIfFalse(u32_at(0)?),
            Opcode::JumpIfTrue => Inst::JumpIfTrue(u32_at(0)?),
            Opcode::Call => Inst::Call(u32_at(0)?),
            Opcode::Return => Inst::Return,
            Opcode::Halt => Inst::Halt,
            Opcode::Write => Inst::Write,
            Opcode::BinLocals => Inst::BinLocals {
                op: alu_at(0)?,
                a: u32_at(1)?,
                b: u32_at(2)?,
                dst: u32_at(3)?,
            },
            Opcode::IncLocal => Inst::IncLocal {
                slot: u32_at(0)?,
                imm: unzigzag(fields[1]),
            },
            Opcode::SetLocalConst => Inst::SetLocalConst {
                slot: u32_at(0)?,
                imm: unzigzag(fields[1]),
            },
            Opcode::CmpConstBr => Inst::CmpConstBr {
                op: alu_at(0)?,
                slot: u32_at(1)?,
                imm: unzigzag(fields[2]),
                target: u32_at(3)?,
            },
            Opcode::CmpLocalsBr => Inst::CmpLocalsBr {
                op: alu_at(0)?,
                a: u32_at(1)?,
                b: u32_at(2)?,
                target: u32_at(3)?,
            },
        })
    }

    /// Returns the branch-target operand of this instruction, if any.
    pub fn target(self) -> Option<u32> {
        match self {
            Inst::Jump(t) | Inst::JumpIfFalse(t) | Inst::JumpIfTrue(t) => Some(t),
            Inst::CmpConstBr { target, .. } | Inst::CmpLocalsBr { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the branch-target operand through `map`.
    pub fn map_target(self, map: impl Fn(u32) -> u32) -> Inst {
        match self {
            Inst::Jump(t) => Inst::Jump(map(t)),
            Inst::JumpIfFalse(t) => Inst::JumpIfFalse(map(t)),
            Inst::JumpIfTrue(t) => Inst::JumpIfTrue(map(t)),
            Inst::CmpConstBr {
                op,
                slot,
                imm,
                target,
            } => Inst::CmpConstBr {
                op,
                slot,
                imm,
                target: map(target),
            },
            Inst::CmpLocalsBr { op, a, b, target } => Inst::CmpLocalsBr {
                op,
                a,
                b,
                target: map(target),
            },
            other => other,
        }
    }
}

/// Maps an HLR unary operator to the corresponding DIR instruction.
pub fn unop_inst(op: UnOp) -> Inst {
    match op {
        UnOp::Neg => Inst::Neg,
        UnOp::Not => Inst::Not,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One representative instruction per opcode, with interesting operand
    /// values.
    pub(crate) fn representatives() -> Vec<Inst> {
        vec![
            Inst::PushConst(-12345),
            Inst::PushLocal(3),
            Inst::PushGlobal(7),
            Inst::StoreLocal(0),
            Inst::StoreGlobal(255),
            Inst::LoadArrLocal { base: 4, len: 100 },
            Inst::LoadArrGlobal { base: 0, len: 1 },
            Inst::StoreArrLocal { base: 9, len: 64 },
            Inst::StoreArrGlobal { base: 2, len: 8 },
            Inst::Pop,
            Inst::Bin(AluOp::Mod),
            Inst::Neg,
            Inst::Not,
            Inst::Jump(1000),
            Inst::JumpIfFalse(0),
            Inst::JumpIfTrue(42),
            Inst::Call(5),
            Inst::Return,
            Inst::Halt,
            Inst::Write,
            Inst::BinLocals {
                op: AluOp::Mul,
                a: 1,
                b: 2,
                dst: 3,
            },
            Inst::IncLocal { slot: 6, imm: -1 },
            Inst::SetLocalConst { slot: 2, imm: 99 },
            Inst::CmpConstBr {
                op: AluOp::Le,
                slot: 1,
                imm: 100,
                target: 77,
            },
            Inst::CmpLocalsBr {
                op: AluOp::Lt,
                a: 0,
                b: 1,
                target: 12,
            },
        ]
    }

    #[test]
    fn representatives_cover_every_opcode() {
        let mut seen: Vec<Opcode> = representatives().iter().map(|i| i.opcode()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), OPCODE_COUNT);
    }

    #[test]
    fn fields_round_trip_through_from_parts() {
        for inst in representatives() {
            let op = inst.opcode();
            let fields = inst.fields();
            assert_eq!(fields.len(), op.field_kinds().len(), "{op:?}");
            let back = Inst::from_parts(op, &fields).unwrap();
            assert_eq!(back, inst);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes get small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn opcode_from_u8_round_trips() {
        for (i, op) in OPCODES.iter().enumerate() {
            assert_eq!(Opcode::from_u8(i as u8), Some(*op));
            assert_eq!(*op as usize, i);
        }
        assert_eq!(Opcode::from_u8(OPCODE_COUNT as u8), None);
    }

    #[test]
    fn aluop_from_u8_round_trips() {
        for (i, op) in ALU_OPS.iter().enumerate() {
            assert_eq!(AluOp::from_u8(i as u8), Some(*op));
        }
        assert_eq!(AluOp::from_u8(13), None);
    }

    #[test]
    fn alu_semantics_match_reference_evaluator() {
        use hlr::ast::BinOp;
        let binops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ];
        let values = [0i64, 1, -1, 7, -7, i64::MAX, i64::MIN, 100];
        for &op in &binops {
            let alu = AluOp::from_binop(op);
            for &a in &values {
                for &b in &values {
                    let want = hlr::eval::apply_binop(op, a, b);
                    let got = alu.apply(a, b);
                    match (want, got) {
                        (Ok(w), Ok(g)) => assert_eq!(w, g, "{op:?} {a} {b}"),
                        (Err(_), Err(DivByZero)) => {}
                        (w, g) => panic!("{op:?} {a} {b}: {w:?} vs {g:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn from_parts_rejects_bad_input() {
        assert!(matches!(
            Inst::from_parts(Opcode::PushLocal, &[]),
            Err(DecodeError::FieldCount { .. })
        ));
        assert!(matches!(
            Inst::from_parts(Opcode::Bin, &[99]),
            Err(DecodeError::BadAluOp(99))
        ));
        assert!(matches!(
            Inst::from_parts(Opcode::PushLocal, &[u64::MAX]),
            Err(DecodeError::FieldRange(FieldKind::Slot, _))
        ));
    }

    #[test]
    fn target_mapping() {
        let i = Inst::JumpIfFalse(10);
        assert_eq!(i.target(), Some(10));
        assert_eq!(i.map_target(|t| t + 5).target(), Some(15));
        assert_eq!(Inst::Pop.target(), None);
        let c = Inst::CmpConstBr {
            op: AluOp::Lt,
            slot: 0,
            imm: 3,
            target: 9,
        };
        assert_eq!(c.map_target(|t| t * 2).target(), Some(18));
    }

    #[test]
    fn fused_opcode_classification() {
        assert!(Opcode::BinLocals.is_fused());
        assert!(Opcode::IncLocal.is_fused());
        assert!(!Opcode::PushLocal.is_fused());
        assert!(!Opcode::Bin.is_fused());
    }
}
