//! Every bench binary's `--json` output must be one parseable schema-1
//! [`RunReport`] line — the acceptance surface scripts and CI rely on.

use std::process::Command;

use telemetry::{Json, RunReport};

fn report_of(exe: &str) -> RunReport {
    let out = Command::new(exe)
        .arg("--json")
        .output()
        .expect("bench binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    RunReport::parse(text.trim()).expect("stdout is one schema-1 RunReport")
}

#[test]
fn dtb_sweep_emits_schema_1() {
    let rr = report_of(env!("CARGO_BIN_EXE_dtb_sweep"));
    assert_eq!(rr.tool, "dtb_sweep");
    let Some(Json::Arr(rows)) = rr.output else {
        panic!("expected per-workload rows");
    };
    assert!(!rows.is_empty());
    for row in &rows {
        let Some(Json::Arr(sweep)) = row.get("sweep") else {
            panic!("expected a sweep array per workload");
        };
        // Hit ratio is monotone in capacity for LRU on these workloads —
        // and always a valid probability.
        for point in sweep {
            let h = point.get("hit_ratio").and_then(Json::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&h), "hit ratio {h}");
        }
    }
}

#[test]
fn table1_emits_schema_1() {
    let rr = report_of(env!("CARGO_BIN_EXE_table1"));
    assert_eq!(rr.tool, "table1");
    let Some(Json::Arr(rows)) = rr.output else {
        panic!("expected representation rows");
    };
    // PSDER, PDP-11 and 360-RX representations at minimum.
    assert!(rows.len() >= 3);
    for row in &rows {
        assert!(row.get("total_bits").and_then(Json::as_i64).unwrap() > 0);
    }
}

#[test]
fn perf_gate_emits_schema_1() {
    let rr = report_of(env!("CARGO_BIN_EXE_perf_gate"));
    assert_eq!(rr.tool, "perf_gate");
    for key in ["lut_bits", "workloads", "tolerance"] {
        assert!(rr.config.get(key).is_some(), "config.{key} missing");
    }
    let Some(Json::Arr(rows)) = rr.output else {
        panic!("expected decode + translate rows");
    };
    let decode: Vec<_> = rows
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("decode"))
        .collect();
    let translate: Vec<_> = rows
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("translate"))
        .collect();
    // One decode row per scheme, each with both planes' throughput and a
    // positive speedup ratio.
    assert_eq!(decode.len(), 6, "one decode row per scheme");
    for row in &decode {
        assert!(row.get("scheme").and_then(Json::as_str).is_some());
        for key in ["tree_mb_s", "table_mb_s", "speedup"] {
            let v = row.get(key).and_then(Json::as_f64).unwrap();
            assert!(v > 0.0, "{key} = {v}");
        }
    }
    // Plain, memoized and fused translation stages.
    assert_eq!(translate.len(), 3, "three translation stages");
    for row in &translate {
        assert!(row.get("minstr_s").and_then(Json::as_f64).unwrap() > 0.0);
    }
}

#[test]
fn pool_throughput_emits_schema_1() {
    let rr = report_of(env!("CARGO_BIN_EXE_pool_throughput"));
    assert_eq!(rr.tool, "pool_throughput");
    for key in ["tenants", "corpus", "host_cores"] {
        assert!(rr.config.get(key).is_some(), "config.{key} missing");
    }
    let Some(Json::Arr(rows)) = rr.output else {
        panic!("expected one row per worker count");
    };
    assert_eq!(rows.len(), 4, "worker counts 1/2/4/8");
    let instrs: Vec<i64> = rows
        .iter()
        .map(|r| r.get("instructions").and_then(Json::as_i64).unwrap())
        .collect();
    // Modeled work is schedule-invariant: identical at every worker count.
    assert!(
        instrs.iter().all(|&i| i > 0 && i == instrs[0]),
        "{instrs:?}"
    );
    for row in &rows {
        assert!(row.get("minstr_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        let p50 = row.get("latency_p50_ns").and_then(Json::as_f64).unwrap();
        let p99 = row.get("latency_p99_ns").and_then(Json::as_f64).unwrap();
        assert!(p50 > 0.0 && p50 <= p99);
    }
}

#[test]
fn model_check_emits_schema_1() {
    let rr = report_of(env!("CARGO_BIN_EXE_model_check"));
    assert_eq!(rr.tool, "model_check");
    let max_err = rr
        .config
        .get("max_abs_error_percent")
        .and_then(Json::as_f64)
        .expect("config.max_abs_error_percent");
    assert!(max_err.is_finite());
}
