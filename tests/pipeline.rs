//! End-to-end pipeline tests: HLR source → resolved HIR → DIR → encoded
//! images → all three machine configurations, asserting byte-identical
//! semantics at every level.

use dir::encode::SchemeKind;
use uhm::{DtbConfig, Machine, Mode};

/// All execution levels and machine modes agree on every sample program.
#[test]
fn full_stack_agreement_on_all_samples() {
    for sample in hlr::programs::ALL {
        let hir = sample.compile().expect("sample compiles");
        let reference = hlr::eval::run(&hir).expect("reference runs");

        for (tier, program) in [
            ("stack", dir::compiler::compile(&hir)),
            ("fused", dir::fuse::fuse(&dir::compiler::compile(&hir)).0),
        ] {
            program.validate().expect("valid DIR");
            assert_eq!(
                dir::exec::run(&program).expect("dir exec"),
                reference,
                "{}/{tier}: dir executor",
                sample.name
            );
            assert_eq!(
                psder::interp::run(&program).expect("psder interp"),
                reference,
                "{}/{tier}: psder interpreter",
                sample.name
            );
            let machine = Machine::new(&program, SchemeKind::Huffman);
            for mode in [
                Mode::Interpreter,
                Mode::Dtb(DtbConfig::with_capacity(64)),
                Mode::ICache {
                    geometry: memsim::Geometry::new(16, 4),
                },
            ] {
                let report = machine.run(&mode).expect("machine runs");
                assert_eq!(
                    report.output, reference,
                    "{}/{tier}: machine {mode:?}",
                    sample.name
                );
            }
        }
    }
}

/// Every encoding scheme feeds the machine identically.
#[test]
fn machines_are_scheme_independent() {
    let hir = hlr::programs::COLLATZ.compile().expect("compiles");
    let program = dir::compiler::compile(&hir);
    let reference = dir::exec::run(&program).expect("runs");
    for scheme in SchemeKind::all() {
        let machine = Machine::new(&program, scheme);
        let report = machine
            .run(&Mode::Dtb(DtbConfig::with_capacity(32)))
            .expect("runs");
        assert_eq!(report.output, reference, "{scheme}");
    }
}

/// Encoded images of every sample, at both tiers, under every scheme,
/// decode back to the exact instruction sequence.
#[test]
fn all_images_round_trip() {
    for sample in hlr::programs::ALL {
        let hir = sample.compile().expect("compiles");
        let base = dir::compiler::compile(&hir);
        let (fused, _) = dir::fuse::fuse(&base);
        for program in [&base, &fused] {
            for scheme in SchemeKind::all() {
                let image = scheme.encode(program);
                assert_eq!(
                    image.decode_all().expect("decodes"),
                    program.code,
                    "{}: {scheme}",
                    sample.name
                );
            }
        }
    }
}

/// Runtime traps surface identically at every level and in every mode.
#[test]
fn traps_are_uniform_across_the_stack() {
    let cases = [
        ("proc main() begin write 10 / (5 - 5); end", "div"),
        ("proc main() begin int a[4]; write a[4]; end", "oob high"),
        (
            "proc main() begin int a[4]; a[0 - 1] := 1; skip; end",
            "oob low",
        ),
        ("proc main() begin write 7 % 0; end", "rem"),
    ];
    for (src, label) in cases {
        let hir = hlr::compile(src).expect("compiles");
        let expected: dir::exec::Trap = hlr::eval::run(&hir).expect_err("traps").into();
        let program = dir::compiler::compile(&hir);
        assert_eq!(
            dir::exec::run(&program).expect_err("traps"),
            expected,
            "{label}"
        );
        assert_eq!(
            psder::interp::run(&program).expect_err("traps"),
            expected,
            "{label}"
        );
        let machine = Machine::new(&program, SchemeKind::Packed);
        for mode in [Mode::Interpreter, Mode::Dtb(DtbConfig::with_capacity(16))] {
            assert_eq!(
                machine.run(&mode).expect_err("traps"),
                expected,
                "{label} {mode:?}"
            );
        }
    }
}

/// The facade crate re-exports the whole stack.
#[test]
fn facade_reexports_work() {
    let hir = uhm_repro::hlr::compile("proc main() begin write 9; end").expect("compiles");
    let program = uhm_repro::dir::compiler::compile(&hir);
    assert_eq!(uhm_repro::dir::exec::run(&program).expect("runs"), vec![9]);
}
