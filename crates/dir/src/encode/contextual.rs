//! Contextually encoded representation (§3.2: "some economy can be achieved
//! by using contextual information when selecting field sizes").
//!
//! Field widths are chosen *per contour region* (the prelude and each
//! procedure): inside a procedure whose frame has 6 slots, a slot field
//! needs only 3 bits; branch targets are region-relative. The decoder must
//! track the current region and consult its width table before extracting
//! each field, which adds a width lookup to every field's cost.

use crate::bitstream::{BitReader, BitWriter};
use crate::isa::{FieldKind, Inst, Opcode};
use crate::program::Program;

use super::packed::opcode_bits;
use super::{
    ContextTables, DecodeMode, Decoded, DecoderData, Image, ImageError, Scheme, SchemeKind,
};

/// The contextual scheme (unit struct; tables come from the program).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Contextual;

impl Scheme for Contextual {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Contextual
    }

    fn encode(&self, program: &Program) -> Image {
        let tables = ContextTables::build(program);
        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for (i, inst) in program.code.iter().enumerate() {
            offsets.push(w.bit_len());
            let region = tables.region_of(i as u32);
            w.write(inst.opcode() as u64, opcode_bits());
            write_fields(&mut w, inst, region);
        }
        let (bytes, bit_len) = w.finish();
        Image {
            kind: SchemeKind::Contextual,
            bytes,
            bit_len,
            offsets,
            side_table_bits: tables.table_bits(),
            mode: DecodeMode::default(),
            decoder: DecoderData::Contextual(tables),
        }
    }
}

/// Writes an instruction's operand fields with the region's widths and
/// region-relative targets. Shared with the frequency-based schemes, which
/// reuse the contextual operand layout.
pub(super) fn write_fields(w: &mut BitWriter, inst: &Inst, region: &super::Region) {
    for (kind, value) in inst.opcode().field_kinds().iter().zip(inst.fields()) {
        let v = match kind {
            FieldKind::Target => {
                debug_assert!(
                    value >= region.target_base as u64,
                    "branch out of region: {value} < {}",
                    region.target_base
                );
                value - region.target_base as u64
            }
            _ => value,
        };
        w.write(v, region.widths.width(*kind));
    }
}

/// Reads an instruction's operand fields with the region's widths,
/// rebasing targets, and assembles the instruction. The tree path is the
/// seed decoder verbatim — heap-allocated fields, bit-at-a-time reads;
/// the table path collects into a stack buffer with word-batched reads,
/// leaving no per-instruction allocation on the fast plane.
#[inline]
pub(super) fn read_inst(
    reader: &mut BitReader<'_>,
    opcode: Opcode,
    region: &super::Region,
    mode: DecodeMode,
) -> Result<Inst, ImageError> {
    let kinds = opcode.field_kinds();
    match mode {
        DecodeMode::Tree => {
            let mut fields = Vec::with_capacity(kinds.len());
            for kind in kinds {
                let raw = reader.read_bitwise(region.widths.width(*kind))?;
                fields.push(match kind {
                    FieldKind::Target => raw + region.target_base as u64,
                    _ => raw,
                });
            }
            Ok(Inst::from_parts(opcode, &fields)?)
        }
        DecodeMode::Table => {
            let mut buf = [0u64; super::MAX_FIELDS];
            for (i, kind) in kinds.iter().enumerate() {
                let raw = reader.read(region.widths.width(*kind))?;
                buf[i] = match kind {
                    FieldKind::Target => raw + region.target_base as u64,
                    _ => raw,
                };
            }
            Ok(Inst::from_parts(opcode, &buf[..kinds.len()])?)
        }
    }
}

/// Decodes one instruction; cost: region lookup (1) + extract/mask for the
/// opcode (2) + width lookup/extract/mask per field (3 each).
#[inline]
pub(super) fn decode(
    reader: &mut BitReader<'_>,
    region: &super::Region,
    mode: DecodeMode,
) -> Result<Decoded, ImageError> {
    let op_raw = mode.read(reader, opcode_bits())?;
    let opcode = Opcode::from_u8(op_raw as u8).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(op_raw as u8),
    ))?;
    let inst = read_inst(reader, opcode, region, mode)?;
    Ok(Decoded {
        inst,
        cost: 3 + 3 * opcode.field_kinds().len() as u32,
        bits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let image = Contextual.encode(&p);
            assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
        }
    }

    #[test]
    fn contextual_is_smaller_than_packed() {
        // Multi-procedure programs, where per-contour widths differ.
        for s in [&hlr::programs::QUEENS, &hlr::programs::COLLATZ] {
            let p = compile(&s.compile().unwrap());
            let packed = super::super::Packed.encode(&p);
            let ctx = Contextual.encode(&p);
            assert!(
                ctx.bit_len < packed.bit_len,
                "{}: {} vs {}",
                s.name,
                ctx.bit_len,
                packed.bit_len
            );
        }
    }

    #[test]
    fn small_procedures_get_narrow_slot_fields() {
        let p = compile(
            &hlr::compile(
                "proc tiny(int a) -> int begin return a; end
                 proc main() begin write tiny(3); end",
            )
            .unwrap(),
        );
        let tables = ContextTables::build(&p);
        // Find the region of `tiny` (frame of 1 slot): slot width must be 1.
        let tiny = &p.procs[0];
        let region = tables.region_of(tiny.entry);
        assert_eq!(region.widths.width(FieldKind::Slot), 1);
    }

    #[test]
    fn targets_are_region_relative() {
        let p = compile(
            &hlr::compile("proc main() begin int i := 0; while i < 5 do i := i + 1; end").unwrap(),
        );
        let tables = ContextTables::build(&p);
        let main = &p.procs[0];
        let region = tables.region_of(main.entry);
        // Region-relative target widths are far narrower than absolute.
        assert!(region.widths.width(FieldKind::Target) <= 5);
    }
}
