//! **E8 — allocation-policy ablation (§5.1):** fixed allocation units
//! versus variable allocation with fixed-size overflow increments.
//!
//! Fixed units must be as large as the largest translation and waste the
//! slack; smaller units with an overflow area hold more translations in the
//! same level-1 footprint, trading occasional chain fetches and (under
//! pressure) uncacheable translations.
//!
//! Run with `cargo run -p uhm-bench --bin alloc_ablation --release`.
//! With `--json`, emits a versioned RunReport instead of the text table.

use dir::encode::SchemeKind;
use memsim::Geometry;
use psder::MAX_TRANSLATION_WORDS;
use telemetry::Json;
use uhm::{Allocation, DtbConfig, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

fn main() {
    let json = json_flag();
    // Policies with an (approximately) equal level-1 budget of short words.
    let budget_entries = 32;
    let fixed = DtbConfig {
        geometry: Geometry::new(budget_entries / 4, 4),
        unit_words: MAX_TRANSLATION_WORDS,
        allocation: Allocation::Fixed,
        replacement: uhm::Replacement::Lru,
    };
    // Same word budget: 32 entries * 3-word units = 96 primary words, plus
    // 16 overflow blocks * 3 = 48; vs fixed 32 * 6 = 192 words.
    let overflow = DtbConfig {
        geometry: Geometry::new(48 / 4, 4),
        unit_words: 3,
        allocation: Allocation::Overflow { blocks: 16 },
        replacement: uhm::Replacement::Lru,
    };
    if !json {
        println!(
            "Allocation ablation (equal level-1 budget: fixed = {} words, overflow = {} words)\n",
            fixed.buffer_words(),
            overflow.buffer_words()
        );
        println!(
            "{:>14} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>10}",
            "workload",
            "fix h_D",
            "fix T2",
            "fix evic",
            "ovf h_D",
            "ovf T2",
            "ovf evic",
            "uncached"
        );
        println!("{}", "-".repeat(106));
    }
    let mut rows = Vec::new();
    for w in workloads() {
        let machine = Machine::new(&w.base, SchemeKind::PairHuffman);
        let rf = machine.run(&Mode::Dtb(fixed)).expect("trap-free");
        let ro = machine.run(&Mode::Dtb(overflow)).expect("trap-free");
        let sf = rf.metrics.dtb.unwrap();
        let so = ro.metrics.dtb.unwrap();
        if json {
            rows.push(Json::obj(vec![
                ("workload", w.name.into()),
                (
                    "fixed",
                    Json::obj(vec![
                        ("hit_ratio", sf.hit_ratio().into()),
                        (
                            "time_per_instruction",
                            rf.metrics.time_per_instruction().into(),
                        ),
                        ("evictions", sf.evictions.into()),
                    ]),
                ),
                (
                    "overflow",
                    Json::obj(vec![
                        ("hit_ratio", so.hit_ratio().into()),
                        (
                            "time_per_instruction",
                            ro.metrics.time_per_instruction().into(),
                        ),
                        ("evictions", so.evictions.into()),
                        ("uncached", so.uncached.into()),
                    ]),
                ),
            ]));
        } else {
            println!(
                "{:>14} | {:>10.3} {:>10.2} {:>10} | {:>10.3} {:>10.2} {:>10} {:>10}",
                w.name,
                sf.hit_ratio(),
                rf.metrics.time_per_instruction(),
                sf.evictions,
                so.hit_ratio(),
                ro.metrics.time_per_instruction(),
                so.evictions,
                so.uncached,
            );
        }
    }
    if json {
        let config = Json::obj(vec![
            ("fixed_words", (fixed.buffer_words() as u64).into()),
            ("overflow_words", (overflow.buffer_words() as u64).into()),
        ]);
        println!("{}", bench_report("alloc_ablation", config, rows).render());
        return;
    }
    println!("\nWith the same fast-memory budget, 3-word units + overflow track more");
    println!("translations (48 vs 32 entries), raising h_D on working sets that");
    println!("exceed the fixed-policy entry count — §5.1's argument for variable");
    println!("allocation with fixed increments.");
}
