//! Language tour: RAUL from source text to every representation level —
//! tokens, AST, resolved HIR, DIR listing, PSDER translation — with the
//! reference evaluator confirming semantics at each step.
//!
//! Run with `cargo run --example language_tour`.

fn main() {
    let source = r#"
        int limit := 20;
        proc gcd(int a, int b) -> int begin
            int t;
            while b <> 0 do begin
                t := a % b;
                a := b;
                b := t;
            end
            return a;
        end
        proc main() begin
            int i;
            for i := 1 to limit do begin
                if gcd(i, 12) = 1 then write i;
            end
        end
    "#;

    // Level 0: the HLR. Lexing and parsing.
    let tokens = hlr::lexer::tokenize(source).expect("lexes");
    println!(
        "HLR: {} bytes of source, {} tokens",
        source.len(),
        tokens.len()
    );
    let ast = hlr::parser::parse(source).expect("parses");
    println!(
        "AST: {} globals, {} procedures",
        ast.globals.len(),
        ast.procs.len()
    );
    println!("\nPretty-printed (a fixed point of parse ∘ print):\n");
    let printed = hlr::pretty::print(&ast);
    for line in printed.lines().take(12) {
        println!("    {line}");
    }
    println!("    ...");

    // Binding: names to (contour, slot), types checked.
    let hir = hlr::sema::analyze(&ast).expect("type checks");
    for p in &hir.procs {
        println!(
            "proc {:>5}: {} params, frame of {} slots, {} contours",
            p.name, p.n_params, p.frame_size, p.contour_count
        );
    }
    let reference = hlr::eval::run(&hir).expect("runs");
    println!("\nReference evaluation (direct HLR interpretation): {reference:?}");

    // Level 1: the DIR.
    let program = dir::compiler::compile(&hir);
    println!("\nDIR listing (first 14 instructions):");
    for line in program.to_string().lines().take(15) {
        println!("    {line}");
    }
    assert_eq!(dir::exec::run(&program).expect("runs"), reference);

    // Level 2: the PSDER translation of one instruction.
    let pc = program.procs[0].entry;
    let inst = program.code[pc as usize];
    println!("\nPSDER translation of instruction {pc} ({inst:?}):");
    for short in psder::translate(inst, pc + 1) {
        println!("    {short:?}");
    }
    assert_eq!(psder::interp::run(&program).expect("runs"), reference);

    println!("\nAll three execution levels agree: {reference:?}");
    println!("(integers below 20 coprime to 12)");
}
