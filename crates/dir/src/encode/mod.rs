//! The encoding dimension of the representation space (paper §3.2).
//!
//! Five schemes of increasing sophistication encode the same DIR program:
//!
//! | Scheme | Paper's description | Decode cost driver |
//! |---|---|---|
//! | [`ByteAligned`] | "unencoded" fields on byte boundaries | one read per field |
//! | [`Packed`] | packed fields spanning memory-unit boundaries | extract + mask per field |
//! | [`Contextual`] | field sizes limited by scope/contour information | width lookup + extract + mask |
//! | [`HuffmanScheme`] | frequency-based (Huffman) opcode encoding | tree walk, 2 ops per code bit |
//! | [`PairHuffman`] | pair-frequency encoding, one tree per predecessor | tree select + tree walk |
//!
//! All schemes share the *(opcode, fields)* view of [`crate::isa`], so they
//! encode any instruction the ISA can express. Program size is the bit
//! length of the stream; decoder-side tables (field-width tables, decode
//! trees) are accounted separately in [`Image::side_table_bits`] — they
//! enlarge the *interpreter*, not the program, exactly as the paper
//! distinguishes.
//!
//! ## Addresses
//!
//! The DIR address of an instruction is its index in the code array; the
//! image records each instruction's bit offset so fetch costs can be
//! charged in memory words. (A production encoding would use bit offsets as
//! addresses directly; the index<->offset table models that address
//! arithmetic and is not charged to program size.)

mod byte;
mod contextual;
mod huffman_scheme;
mod packed;
mod pair;
mod template;
mod value_huffman;

pub use byte::ByteAligned;
pub use contextual::Contextual;
pub use huffman_scheme::HuffmanScheme;
pub use packed::Packed;
pub use pair::PairHuffman;
pub use value_huffman::ValueHuffman;

use crate::bitstream::{bits_for, BitReader, BitsExhausted};
use crate::huffman::{CodebookIssue, Tree};
use crate::isa::{DecodeError, FieldKind, Inst, FIELD_KINDS, OPCODE_COUNT};
use crate::program::Program;

/// Widest operand schema across the ISA (the fused four-field opcodes):
/// the table decoders collect fields on the stack instead of in a heap
/// `Vec`, so they need a capacity bound.
pub(crate) const MAX_FIELDS: usize = 4;

/// Which host implementation decodes the image. Both produce identical
/// instructions, consumed bit counts and *modeled* decode costs — they
/// differ only in host wall-clock. The modeled cost accounting stays a
/// property of the representation, not of the decoder that happens to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecodeMode {
    /// Reference decoder: bit-at-a-time reads and pointer-tree Huffman
    /// walks, exactly the naive implementation the paper's cost model
    /// describes. Kept as the differential-testing oracle and the
    /// baseline for host-throughput comparisons.
    Tree,
    /// Fast plane: word-batched field extraction and canonical-Huffman
    /// lookup-table decoding.
    #[default]
    Table,
}

impl DecodeMode {
    /// Both modes, reference first.
    pub fn all() -> [DecodeMode; 2] {
        [DecodeMode::Tree, DecodeMode::Table]
    }

    /// Short label for flags and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            DecodeMode::Tree => "tree",
            DecodeMode::Table => "table",
        }
    }

    /// Parses a `--decoder` flag value.
    pub fn parse(s: &str) -> Option<DecodeMode> {
        match s {
            "tree" => Some(DecodeMode::Tree),
            "table" => Some(DecodeMode::Table),
            _ => None,
        }
    }

    /// Reads a `width`-bit field through this mode's bitstream path.
    #[inline]
    pub(crate) fn read(self, reader: &mut BitReader<'_>, width: u32) -> Result<u64, BitsExhausted> {
        match self {
            DecodeMode::Tree => reader.read_bitwise(width),
            DecodeMode::Table => reader.read(width),
        }
    }

    /// Decodes one Huffman symbol through this mode's codebook path.
    #[inline]
    pub(crate) fn huff(
        self,
        tree: &crate::huffman::Tree,
        reader: &mut BitReader<'_>,
    ) -> Result<(usize, u32), BitsExhausted> {
        match self {
            DecodeMode::Tree => tree.decode(reader),
            DecodeMode::Table => tree.decode_table(reader),
        }
    }
}

impl std::fmt::Display for DecodeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifies an encoding scheme, ordered by increasing degree of encoding
/// (the horizontal axis of the paper's Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeKind {
    /// Byte-aligned, unencoded fields.
    ByteAligned,
    /// Bit-packed fields with program-wide widths.
    Packed,
    /// Bit-packed fields with per-procedure (contour) widths.
    Contextual,
    /// Huffman-coded opcodes over contextual fields.
    Huffman,
    /// Predecessor-conditioned Huffman opcodes over contextual fields.
    PairHuffman,
    /// Pair-coded opcodes plus frequency-coded operand values — the far
    /// right of the encoding axis.
    ValueHuffman,
}

impl SchemeKind {
    /// All schemes in increasing encoding degree.
    pub fn all() -> [SchemeKind; 6] {
        [
            SchemeKind::ByteAligned,
            SchemeKind::Packed,
            SchemeKind::Contextual,
            SchemeKind::Huffman,
            SchemeKind::PairHuffman,
            SchemeKind::ValueHuffman,
        ]
    }

    /// Short label for benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::ByteAligned => "byte",
            SchemeKind::Packed => "packed",
            SchemeKind::Contextual => "contextual",
            SchemeKind::Huffman => "huffman",
            SchemeKind::PairHuffman => "pair",
            SchemeKind::ValueHuffman => "valuehuff",
        }
    }

    /// Encodes `program` under this scheme.
    ///
    /// Every scheme is lossless: the encoded [`Image`] decodes back to
    /// the original instruction stream exactly.
    ///
    /// ```
    /// use dir::encode::SchemeKind;
    ///
    /// let hir = hlr::compile("proc main() begin write 40 + 2; end")?;
    /// let program = dir::compiler::compile(&hir);
    /// let image = SchemeKind::Huffman.encode(&program);
    /// assert_eq!(image.decode_all().unwrap(), program.code);
    /// // Entropy coding beats the byte-aligned format on program bits.
    /// let byte = SchemeKind::ByteAligned.encode(&program);
    /// assert!(image.program_bits() < byte.program_bits());
    /// # Ok::<(), hlr::Error>(())
    /// ```
    pub fn encode(self, program: &Program) -> Image {
        match self {
            SchemeKind::ByteAligned => ByteAligned.encode(program),
            SchemeKind::Packed => Packed.encode(program),
            SchemeKind::Contextual => Contextual.encode(program),
            SchemeKind::Huffman => HuffmanScheme.encode(program),
            SchemeKind::PairHuffman => PairHuffman.encode(program),
            SchemeKind::ValueHuffman => ValueHuffman.encode(program),
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An encoding scheme: a bidirectional mapping between a [`Program`] and a
/// bit image.
pub trait Scheme {
    /// The scheme's identity.
    fn kind(&self) -> SchemeKind;

    /// Encodes a whole program.
    fn encode(&self, program: &Program) -> Image;
}

/// A decoded instruction together with its modelled decode cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The instruction.
    pub inst: Inst,
    /// Modelled decode cost in host instructions — the paper's parameter
    /// `d`, measured rather than assumed.
    pub cost: u32,
    /// Encoded width of this instruction in bits.
    pub bits: u64,
}

/// An error while decoding from an [`Image`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Instruction index out of range.
    BadIndex(u32),
    /// The bit stream ended prematurely (image corrupt).
    Exhausted,
    /// The decoded parts did not form a valid instruction.
    Decode(DecodeError),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadIndex(i) => write!(f, "instruction index {i} out of range"),
            ImageError::Exhausted => write!(f, "bit stream exhausted"),
            ImageError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<BitsExhausted> for ImageError {
    fn from(_: BitsExhausted) -> Self {
        ImageError::Exhausted
    }
}

impl From<DecodeError> for ImageError {
    fn from(e: DecodeError) -> Self {
        ImageError::Decode(e)
    }
}

/// A defect in an image's decoder-side tables, found by
/// [`Image::validate_codec`] without reading a single stream bit. Each
/// variant is a *structural* property of the side tables themselves —
/// detectable at load time, where the same damage would otherwise surface
/// as a mid-run decode trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecIssue {
    /// A Huffman codebook is invalid (bad width, prefix conflict, or a
    /// code space that is not exactly full).
    Codebook {
        /// Which table: `"opcode"`, `"global"`, `"pred[i]"`, or
        /// `"value[FieldKind]"`.
        table: String,
        /// The underlying codebook defect.
        issue: CodebookIssue,
    },
    /// A declared field width exceeds the 64-bit value domain.
    FieldWidth {
        /// The affected field kind.
        kind: FieldKind,
        /// The declared width in bits.
        width: u32,
    },
    /// Instruction bit offsets are not strictly increasing.
    OffsetOrder {
        /// First instruction whose offset does not exceed its
        /// predecessor's.
        index: u32,
    },
    /// An instruction offset lies at or past the end of the stream.
    OffsetRange {
        /// The offending instruction index.
        index: u32,
        /// Its recorded bit offset.
        offset: u64,
        /// The stream length in bits.
        bit_len: u64,
    },
    /// A context region is empty, inverted, or overlaps its predecessor.
    RegionBounds {
        /// Index of the offending region.
        region: usize,
    },
    /// A predecessor-table entry names an impossible opcode.
    PredecessorEntry {
        /// The instruction whose predecessor entry is out of range.
        index: u32,
    },
    /// The predecessor table length disagrees with the instruction count.
    PredecessorLength {
        /// Entries present.
        len: usize,
        /// Entries required (one per instruction).
        expected: usize,
    },
}

impl std::fmt::Display for CodecIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecIssue::Codebook { table, issue } => {
                write!(f, "codebook `{table}`: {issue}")
            }
            CodecIssue::FieldWidth { kind, width } => {
                write!(f, "field {kind:?} declares impossible width {width}")
            }
            CodecIssue::OffsetOrder { index } => {
                write!(f, "offset of instruction {index} does not advance")
            }
            CodecIssue::OffsetRange {
                index,
                offset,
                bit_len,
            } => write!(
                f,
                "instruction {index} offset {offset} outside stream of {bit_len} bits"
            ),
            CodecIssue::RegionBounds { region } => {
                write!(f, "context region {region} empty, inverted, or overlapping")
            }
            CodecIssue::PredecessorEntry { index } => {
                write!(f, "predecessor entry for instruction {index} out of range")
            }
            CodecIssue::PredecessorLength { len, expected } => {
                write!(
                    f,
                    "predecessor table holds {len} entries, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CodecIssue {}

/// Pushes a [`CodecIssue::Codebook`] when `tree`'s codebook fails
/// [`Tree::check`].
fn check_tree(tree: &Tree, table: &str, out: &mut Vec<CodecIssue>) {
    if let Err(issue) = tree.check() {
        out.push(CodecIssue::Codebook {
            table: table.to_string(),
            issue,
        });
    }
}

/// Field widths above 64 bits cannot describe any value the bitstream can
/// deliver.
fn check_widths(widths: &FieldWidths, out: &mut Vec<CodecIssue>) {
    for (i, &width) in widths.widths.iter().enumerate() {
        if width > 64 {
            out.push(CodecIssue::FieldWidth {
                kind: FIELD_KINDS[i],
                width,
            });
        }
    }
}

/// Regions must be non-empty, ordered, and disjoint; each region's width
/// table gets the same sanity screen as the program-wide one.
fn check_regions(tables: &ContextTables, out: &mut Vec<CodecIssue>) {
    let mut prev_end = 0u32;
    for (i, r) in tables.regions.iter().enumerate() {
        if r.start >= r.end || r.start < prev_end {
            out.push(CodecIssue::RegionBounds { region: i });
        } else {
            prev_end = r.end;
        }
        check_widths(&r.widths, out);
    }
}

/// Shared validation of the pair-conditioned opcode machinery (the `Pair`
/// and `ValueHuffman` decoders).
fn check_pair_decoder(
    ctx: &[pair::CtxCode],
    global: &Tree,
    preds: &[u8],
    tables: &ContextTables,
    n_insts: usize,
    out: &mut Vec<CodecIssue>,
) {
    check_tree(global, "global", out);
    for (i, c) in ctx.iter().enumerate() {
        check_tree(&c.tree, &format!("pred[{i}]"), out);
    }
    check_regions(tables, out);
    if preds.len() != n_insts {
        out.push(CodecIssue::PredecessorLength {
            len: preds.len(),
            expected: n_insts,
        });
    }
    // OPCODE_COUNT itself is the legal start-of-region sentinel.
    for (i, &p) in preds.iter().enumerate() {
        if p as usize > OPCODE_COUNT {
            out.push(CodecIssue::PredecessorEntry { index: i as u32 });
        }
    }
}

/// Compile-time proof that an [`Image`] — decode trees, LUTs and context
/// tables included — is plain immutable data, so `Arc<Image>` can be
/// shared read-only across worker threads (the multi-tenant pool relies
/// on this). The only interior mutability in the decode path lives in the
/// per-call [`BitReader`] window, which is stack state, not image state.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Image>();
};

/// An encoded program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// The scheme that produced this image.
    pub kind: SchemeKind,
    /// The encoded bit stream.
    pub bytes: Vec<u8>,
    /// Exact length of the stream in bits (the program's static size).
    pub bit_len: u64,
    /// Bit offset of each instruction (index = DIR address).
    pub offsets: Vec<u64>,
    /// Bits of decoder-side tables (width tables, Huffman trees): charged
    /// to interpreter size, not program size.
    pub side_table_bits: u64,
    /// Host decoder used by [`Image::decode`] / [`Image::decode_from`].
    pub mode: DecodeMode,
    pub(crate) decoder: DecoderData,
}

/// Scheme-specific state needed to decode an image.
#[derive(Debug, Clone)]
pub(crate) enum DecoderData {
    Byte,
    Packed(FieldWidths),
    Contextual(ContextTables),
    Huffman {
        tree: crate::huffman::Tree,
        tables: ContextTables,
    },
    Pair {
        /// One escape-coded codebook per predecessor opcode, plus a
        /// start-of-region codebook at index [`crate::isa::OPCODE_COUNT`].
        ctx: Vec<pair::CtxCode>,
        /// The unconditioned fallback tree reached through ESCAPE codes.
        global: crate::huffman::Tree,
        /// Static predecessor opcode per instruction (`OPCODE_COUNT` for
        /// region starts). Reconstructible by sequential decode, so not
        /// charged to program size; see the module docs.
        preds: Vec<u8>,
        tables: ContextTables,
    },
    ValueHuffman {
        /// Per-predecessor opcode codebooks (as in `Pair`).
        ctx: Vec<pair::CtxCode>,
        /// Fallback opcode tree.
        global: crate::huffman::Tree,
        /// Static predecessor opcodes (see `Pair`).
        preds: Vec<u8>,
        tables: ContextTables,
        /// One value codebook per field kind.
        values: Vec<value_huffman::ValueCode>,
    },
}

impl Image {
    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` when the image holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Program size in bits (excluding decoder-side tables).
    pub fn program_bits(&self) -> u64 {
        self.bit_len
    }

    /// Average encoded instruction width in bits.
    pub fn mean_inst_bits(&self) -> f64 {
        if self.offsets.is_empty() {
            0.0
        } else {
            self.bit_len as f64 / self.offsets.len() as f64
        }
    }

    /// Number of `word_bits`-sized memory words touched when fetching
    /// instruction `index` — the paper's per-instruction `s2`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `word_bits` is zero.
    pub fn fetch_words(&self, index: u32, word_bits: u32) -> u32 {
        let start = self.offsets[index as usize];
        let end = self
            .offsets
            .get(index as usize + 1)
            .copied()
            .unwrap_or(self.bit_len);
        let end = end.max(start + 1);
        let first = start / word_bits as u64;
        let last = (end - 1) / word_bits as u64;
        (last - first + 1) as u32
    }

    /// Decodes the instruction at `index`, reporting the modelled decode
    /// cost.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on a bad index or a corrupt stream.
    pub fn decode(&self, index: u32) -> Result<Decoded, ImageError> {
        self.decode_from(&self.bytes, index)
    }

    /// Decodes the instruction at `index` out of `bytes`, an alternative
    /// level-2 copy of this image's stream (same bit offsets and decoder
    /// tables). This is the fault plane's entry point: the machine keeps
    /// a mutable level-2 copy that injected faults flip bits in, and
    /// decodes through the original image's tables. A copy shorter than
    /// `bit_len` claims is reported as [`ImageError::Exhausted`], never
    /// read out of bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on a bad index or a corrupt stream.
    pub fn decode_from(&self, bytes: &[u8], index: u32) -> Result<Decoded, ImageError> {
        self.decode_with(bytes, index, self.mode)
    }

    /// Selects the host decoder for subsequent [`Image::decode`] calls.
    /// Purely a host-implementation switch: results and modeled costs are
    /// identical either way (the differential suite proves it).
    pub fn set_decode_mode(&mut self, mode: DecodeMode) {
        self.mode = mode;
    }

    /// Decodes the instruction at `index` out of `bytes` through an
    /// explicitly chosen host decoder, regardless of the image's own
    /// [`Image::mode`]. The differential harness and the throughput gate
    /// drive both decoders over one image through this entry.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] on a bad index or a corrupt stream.
    pub fn decode_with(
        &self,
        bytes: &[u8],
        index: u32,
        mode: DecodeMode,
    ) -> Result<Decoded, ImageError> {
        let offset = *self
            .offsets
            .get(index as usize)
            .ok_or(ImageError::BadIndex(index))?;
        let mut reader = crate::bitstream::BitReader::at(bytes, self.bit_len, offset);
        let decoded = match &self.decoder {
            DecoderData::Byte => byte::decode(&mut reader, mode)?,
            DecoderData::Packed(widths) => packed::decode(&mut reader, widths, mode)?,
            DecoderData::Contextual(tables) => {
                contextual::decode(&mut reader, tables.region_of(index), mode)?
            }
            DecoderData::Huffman { tree, tables } => {
                huffman_scheme::decode(&mut reader, tree, tables.region_of(index), mode)?
            }
            DecoderData::Pair {
                ctx,
                global,
                preds,
                tables,
            } => pair::decode(
                &mut reader,
                ctx,
                global,
                preds,
                tables.region_of(index),
                index,
                mode,
            )?,
            DecoderData::ValueHuffman {
                ctx,
                global,
                preds,
                tables,
                values,
            } => value_huffman::decode(
                &mut reader,
                ctx,
                global,
                preds,
                tables.region_of(index),
                values,
                index,
                mode,
            )?,
        };
        Ok(Decoded {
            bits: reader.position() - offset,
            ..decoded
        })
    }

    /// Decodes the whole image sequentially through `mode` — the fast
    /// plane's streaming entry. One reader crosses the stream once, and
    /// contour regions advance with a cursor instead of a binary search
    /// per instruction. Instructions, consumed widths and modeled costs
    /// are bit-identical to per-index [`Image::decode_with`] in either
    /// mode; the differential suite proves it.
    ///
    /// # Errors
    ///
    /// Returns the first decode failure.
    pub fn decode_all_with(&self, mode: DecodeMode) -> Result<Vec<Decoded>, ImageError> {
        // Each decoder variant streams from its own small function so the
        // optimizer sees one loop at a time; inside each, the mode match
        // monomorphizes the loop with `mode` as a constant, folding every
        // per-field `match mode` away.
        match &self.decoder {
            DecoderData::Byte => self.stream_byte(mode),
            DecoderData::Packed(widths) => self.stream_packed(widths, mode),
            DecoderData::Contextual(tables) => self.stream_contextual(tables, mode),
            DecoderData::Huffman { tree, tables } => self.stream_huffman(tree, tables, mode),
            DecoderData::Pair {
                ctx,
                global,
                preds,
                tables,
            } => self.stream_pair(ctx, global, preds, tables, mode),
            DecoderData::ValueHuffman {
                ctx,
                global,
                preds,
                tables,
                values,
            } => self.stream_value(ctx, global, preds, tables, values, mode),
        }
    }

    fn stream_byte(&self, mode: DecodeMode) -> Result<Vec<Decoded>, ImageError> {
        match mode {
            DecodeMode::Tree => self.stream(|r, _| byte::decode(r, DecodeMode::Tree)),
            DecodeMode::Table => self.stream(|r, _| byte::decode(r, DecodeMode::Table)),
        }
    }

    fn stream_packed(
        &self,
        widths: &FieldWidths,
        mode: DecodeMode,
    ) -> Result<Vec<Decoded>, ImageError> {
        match mode {
            DecodeMode::Tree => self.stream(|r, _| packed::decode(r, widths, DecodeMode::Tree)),
            DecodeMode::Table => self.stream(|r, _| packed::decode(r, widths, DecodeMode::Table)),
        }
    }

    fn stream_contextual(
        &self,
        tables: &ContextTables,
        mode: DecodeMode,
    ) -> Result<Vec<Decoded>, ImageError> {
        let mut cursor = 0usize;
        match mode {
            DecodeMode::Tree => self.stream(|r, index| {
                contextual::decode(r, tables.region_at(&mut cursor, index), DecodeMode::Tree)
            }),
            DecodeMode::Table => self.stream(|r, index| {
                contextual::decode(r, tables.region_at(&mut cursor, index), DecodeMode::Table)
            }),
        }
    }

    fn stream_huffman(
        &self,
        tree: &crate::huffman::Tree,
        tables: &ContextTables,
        mode: DecodeMode,
    ) -> Result<Vec<Decoded>, ImageError> {
        let mut cursor = 0usize;
        match mode {
            DecodeMode::Tree => self.stream(|r, index| {
                huffman_scheme::decode(
                    r,
                    tree,
                    tables.region_at(&mut cursor, index),
                    DecodeMode::Tree,
                )
            }),
            DecodeMode::Table => huffman_scheme::stream_table(self, tree, tables),
        }
    }

    fn stream_pair(
        &self,
        ctx: &[pair::CtxCode],
        global: &crate::huffman::Tree,
        preds: &[u8],
        tables: &ContextTables,
        mode: DecodeMode,
    ) -> Result<Vec<Decoded>, ImageError> {
        let mut cursor = 0usize;
        match mode {
            DecodeMode::Tree => self.stream(|r, index| {
                pair::decode(
                    r,
                    ctx,
                    global,
                    preds,
                    tables.region_at(&mut cursor, index),
                    index,
                    DecodeMode::Tree,
                )
            }),
            DecodeMode::Table => self.stream(|r, index| {
                pair::decode(
                    r,
                    ctx,
                    global,
                    preds,
                    tables.region_at(&mut cursor, index),
                    index,
                    DecodeMode::Table,
                )
            }),
        }
    }

    fn stream_value(
        &self,
        ctx: &[pair::CtxCode],
        global: &crate::huffman::Tree,
        preds: &[u8],
        tables: &ContextTables,
        values: &[value_huffman::ValueCode],
        mode: DecodeMode,
    ) -> Result<Vec<Decoded>, ImageError> {
        let mut cursor = 0usize;
        match mode {
            DecodeMode::Tree => self.stream(|r, index| {
                value_huffman::decode(
                    r,
                    ctx,
                    global,
                    preds,
                    tables.region_at(&mut cursor, index),
                    values,
                    index,
                    DecodeMode::Tree,
                )
            }),
            DecodeMode::Table => self.stream(|r, index| {
                value_huffman::decode(
                    r,
                    ctx,
                    global,
                    preds,
                    tables.region_at(&mut cursor, index),
                    values,
                    index,
                    DecodeMode::Table,
                )
            }),
        }
    }

    /// Shared skeleton of [`Image::decode_all_with`]: one reader walks
    /// the stream once and `step` decodes each instruction in place.
    /// Generic over the step closure so each decoder variant gets its own
    /// monomorphized loop with the scheme dispatch hoisted out of it.
    fn stream<F>(&self, mut step: F) -> Result<Vec<Decoded>, ImageError>
    where
        F: FnMut(&mut BitReader<'_>, u32) -> Result<Decoded, ImageError>,
    {
        let mut out = Vec::with_capacity(self.len());
        let mut reader = BitReader::new(&self.bytes, self.bit_len);
        for index in 0..self.len() as u32 {
            let start = reader.position();
            let decoded = step(&mut reader, index)?;
            out.push(Decoded {
                bits: reader.position() - start,
                ..decoded
            });
        }
        Ok(out)
    }

    /// Decodes the whole image back to the instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns the first decode failure.
    pub fn decode_all(&self) -> Result<Vec<Inst>, ImageError> {
        (0..self.len() as u32)
            .map(|i| self.decode(i).map(|d| d.inst))
            .collect()
    }

    /// Statically validates this image's decoder-side tables: Huffman
    /// codebooks (prefix-freeness, Kraft completeness, width sanity),
    /// field-width tables, context-region bounds, predecessor tables, and
    /// the instruction offset index. Reads no stream bits, so it is cheap
    /// enough to run unconditionally at load time — the analyze plane's
    /// first pass. Images produced by [`SchemeKind::encode`] always
    /// return an empty list; the [`fixtures`] module builds images that
    /// do not.
    pub fn validate_codec(&self) -> Vec<CodecIssue> {
        let mut out = Vec::new();
        for (i, w) in self.offsets.windows(2).enumerate() {
            if w[1] <= w[0] {
                out.push(CodecIssue::OffsetOrder {
                    index: i as u32 + 1,
                });
            }
        }
        for (i, &offset) in self.offsets.iter().enumerate() {
            if offset >= self.bit_len {
                out.push(CodecIssue::OffsetRange {
                    index: i as u32,
                    offset,
                    bit_len: self.bit_len,
                });
            }
        }
        match &self.decoder {
            DecoderData::Byte => {}
            DecoderData::Packed(widths) => check_widths(widths, &mut out),
            DecoderData::Contextual(tables) => check_regions(tables, &mut out),
            DecoderData::Huffman { tree, tables } => {
                check_tree(tree, "opcode", &mut out);
                check_regions(tables, &mut out);
            }
            DecoderData::Pair {
                ctx,
                global,
                preds,
                tables,
            } => check_pair_decoder(ctx, global, preds, tables, self.len(), &mut out),
            DecoderData::ValueHuffman {
                ctx,
                global,
                preds,
                tables,
                values,
            } => {
                check_pair_decoder(ctx, global, preds, tables, self.len(), &mut out);
                for (k, vc) in values.iter().enumerate() {
                    check_tree(vc.tree(), &format!("value[{:?}]", FIELD_KINDS[k]), &mut out);
                }
            }
        }
        out
    }

    /// Mean decode cost over all instructions (static average of the
    /// paper's parameter `d`).
    ///
    /// # Panics
    ///
    /// Panics if the image is corrupt (encoders always produce decodable
    /// images).
    pub fn mean_decode_cost(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: u64 = (0..self.len() as u32)
            .map(|i| self.decode(i).expect("self-produced image decodes").cost as u64)
            .sum();
        total as f64 / self.len() as f64
    }
}

/// Program-wide (or per-region) field widths, indexed by
/// [`FieldKind::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldWidths {
    /// Width in bits per field kind.
    pub widths: [u32; FIELD_KINDS.len()],
}

impl FieldWidths {
    /// Width for one field kind.
    pub fn width(&self, kind: FieldKind) -> u32 {
        self.widths[kind.index()]
    }

    /// Computes widths wide enough for every field value in
    /// `insts`, with targets made region-relative when `rel_base` is set.
    pub fn measure<'a>(
        insts: impl Iterator<Item = &'a Inst>,
        rel_base: Option<u32>,
    ) -> FieldWidths {
        let mut max = [0u64; FIELD_KINDS.len()];
        for inst in insts {
            let kinds = inst.opcode().field_kinds();
            for (kind, value) in kinds.iter().zip(inst.fields()) {
                let v = match (kind, rel_base) {
                    (FieldKind::Target, Some(base)) => value - base as u64,
                    _ => value,
                };
                let i = kind.index();
                max[i] = max[i].max(v);
            }
        }
        let mut widths = [0u32; FIELD_KINDS.len()];
        for (w, &m) in widths.iter_mut().zip(&max) {
            *w = bits_for(m);
        }
        FieldWidths { widths }
    }

    /// Bits needed to store this width table (6 bits per entry suffice for
    /// widths up to 64).
    pub fn table_bits(&self) -> u64 {
        FIELD_KINDS.len() as u64 * 6
    }
}

/// Per-region (prelude + procedures) context tables for the contextual and
/// frequency schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextTables {
    /// `(start, end, widths, target_base)` per region, in address order.
    pub regions: Vec<Region>,
}

/// One contour region of the program with its field widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First instruction index of the region.
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
    /// Field widths within the region.
    pub widths: FieldWidths,
    /// Base subtracted from target fields (region-relative branches).
    pub target_base: u32,
}

impl ContextTables {
    /// Builds per-region tables for `program`: the prelude and each
    /// procedure form one region each (the contours the paper's contextual
    /// encoding keys on).
    pub fn build(program: &Program) -> ContextTables {
        let mut regions = Vec::new();
        let prelude_end = program
            .procs
            .iter()
            .map(|p| p.entry)
            .min()
            .unwrap_or(program.code.len() as u32);
        let mut bounds: Vec<(u32, u32)> = vec![(0, prelude_end)];
        let mut procs: Vec<(u32, u32)> = program.procs.iter().map(|p| (p.entry, p.end)).collect();
        procs.sort_unstable();
        bounds.extend(procs);
        for (start, end) in bounds {
            if start == end {
                continue;
            }
            let widths = FieldWidths::measure(
                program.code[start as usize..end as usize].iter(),
                Some(start),
            );
            regions.push(Region {
                start,
                end,
                widths,
                target_base: start,
            });
        }
        ContextTables { regions }
    }

    /// Finds the region containing instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` belongs to no region (cannot happen for images
    /// built by [`ContextTables::build`]).
    pub fn region_of(&self, index: u32) -> &Region {
        let at = self
            .regions
            .partition_point(|r| r.end <= index)
            .min(self.regions.len() - 1);
        let r = &self.regions[at];
        assert!(
            r.start <= index && index < r.end,
            "instruction {index} outside all regions"
        );
        r
    }

    /// Region containing `index`, found by advancing a monotone cursor —
    /// O(1) amortized for a sequential pass, where [`Self::region_of`]'s
    /// binary search would repeat per instruction. `index` must be
    /// non-decreasing across calls with the same cursor.
    #[inline]
    pub fn region_at(&self, cursor: &mut usize, index: u32) -> &Region {
        while index >= self.regions[*cursor].end && *cursor + 1 < self.regions.len() {
            *cursor += 1;
        }
        let r = &self.regions[*cursor];
        debug_assert!(
            r.start <= index && index < r.end,
            "instruction {index} outside all regions"
        );
        r
    }

    /// Total bits of all width tables plus region bounds (two 32-bit words
    /// per region), charged to the interpreter.
    pub fn table_bits(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| r.widths.table_bits() + 64)
            .sum()
    }
}

/// Deliberately damaged images for negative testing of the analyze plane.
///
/// Each constructor starts from a well-formed encoding of `program` and
/// corrupts exactly one decoder-side table, modelling side-table damage in
/// storage. The resulting images still *decode* (the decode trie and LUT
/// are kept intact) — the point is that [`Image::validate_codec`] must
/// reject them before any decode is attempted.
pub mod fixtures {
    use super::*;

    /// A Huffman image whose opcode codebook lost coverage: the deepest
    /// code is extended by one bit, so the Kraft sum no longer fills the
    /// code space — the signature of a truncated codebook. Validation
    /// reports [`CodebookIssue::Incomplete`].
    ///
    /// # Panics
    ///
    /// Panics if `program` uses fewer than two distinct opcodes.
    pub fn truncated_codebook(program: &Program) -> Image {
        corrupt_opcode_codebook(program, |codes| {
            let deepest = codes
                .iter()
                .enumerate()
                .max_by_key(|&(_, &(_, w))| w)
                .map(|(i, _)| i)
                .expect("codebook is non-empty");
            codes[deepest].0 <<= 1;
            codes[deepest].1 += 1;
        })
    }

    /// A Huffman image where one code was overwritten with an extension
    /// of another, so the two collide. Validation reports
    /// [`CodebookIssue::PrefixConflict`].
    ///
    /// # Panics
    ///
    /// Panics if `program` uses fewer than two distinct opcodes.
    pub fn conflicting_codebook(program: &Program) -> Image {
        corrupt_opcode_codebook(program, |codes| {
            assert!(codes.len() >= 2, "need two symbols to conflict");
            codes[1] = (codes[0].0 << 1, codes[0].1 + 1);
        })
    }

    /// A packed image whose width table declares a 65-bit field — wider
    /// than any value the bitstream can deliver. Validation reports
    /// [`CodecIssue::FieldWidth`].
    pub fn oversized_field_width(program: &Program) -> Image {
        let mut image = SchemeKind::Packed.encode(program);
        match &mut image.decoder {
            DecoderData::Packed(widths) => widths.widths[0] = 65,
            _ => unreachable!("Packed scheme yields a Packed decoder"),
        }
        image
    }

    fn corrupt_opcode_codebook(
        program: &Program,
        damage: impl FnOnce(&mut Vec<(u64, u32)>),
    ) -> Image {
        let mut image = SchemeKind::Huffman.encode(program);
        match &mut image.decoder {
            DecoderData::Huffman { tree, .. } => {
                let mut codes = tree.codes().to_vec();
                damage(&mut codes);
                *tree = tree.with_codes(codes);
            }
            _ => unreachable!("Huffman scheme yields a Huffman decoder"),
        }
        image
    }
}

/// Convenience: encodes `program` under every scheme.
pub fn encode_all(program: &Program) -> Vec<Image> {
    SchemeKind::all()
        .into_iter()
        .map(|k| k.encode(program))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::fuse::fuse;

    fn sample_programs() -> Vec<Program> {
        let mut out = Vec::new();
        for s in hlr::programs::ALL {
            let base = compile(&s.compile().unwrap());
            let (fused, _) = fuse(&base);
            out.push(base);
            out.push(fused);
        }
        out
    }

    #[test]
    fn every_scheme_round_trips_every_sample() {
        for p in sample_programs() {
            for kind in SchemeKind::all() {
                let image = kind.encode(&p);
                let back = image.decode_all().unwrap_or_else(|e| panic!("{kind}: {e}"));
                assert_eq!(back, p.code, "{kind}");
            }
        }
    }

    #[test]
    fn encoding_degree_shrinks_programs() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let sizes: Vec<u64> = SchemeKind::all()
                .iter()
                .map(|k| k.encode(&p).program_bits())
                .collect();
            // byte > packed >= contextual > huffman. Contextual only ties
            // packed on single-procedure programs whose region widths equal
            // the program-wide widths.
            assert!(
                sizes[0] > sizes[1],
                "{}: byte {} <= packed {}",
                s.name,
                sizes[0],
                sizes[1]
            );
            assert!(
                sizes[1] >= sizes[2],
                "{}: packed {} < contextual {}",
                s.name,
                sizes[1],
                sizes[2]
            );
            assert!(
                sizes[2] > sizes[3],
                "{}: contextual {} <= huffman {}",
                s.name,
                sizes[2],
                sizes[3]
            );
        }
        // On multi-procedure programs the contour information buys real
        // bits: strict inequality.
        for s in [&hlr::programs::QUEENS, &hlr::programs::GCD_CHAIN] {
            let p = compile(&s.compile().unwrap());
            let packed = SchemeKind::Packed.encode(&p).program_bits();
            let ctx = SchemeKind::Contextual.encode(&p).program_bits();
            assert!(ctx < packed, "{}: {} vs {}", s.name, ctx, packed);
        }
    }

    #[test]
    fn decode_costs_grow_with_encoding_degree() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let costs: Vec<f64> = SchemeKind::all()
            .iter()
            .map(|k| k.encode(&p).mean_decode_cost())
            .collect();
        assert!(costs[0] < costs[1]);
        assert!(costs[1] < costs[2]);
        assert!(costs[2] < costs[3]);
    }

    #[test]
    fn offsets_are_monotone_and_dense() {
        let p = compile(&hlr::programs::MATMUL.compile().unwrap());
        for kind in SchemeKind::all() {
            let image = kind.encode(&p);
            assert_eq!(image.len(), p.code.len());
            for w in image.offsets.windows(2) {
                assert!(w[0] < w[1], "{kind}: offsets not strictly increasing");
            }
            assert!(*image.offsets.last().unwrap() < image.bit_len);
        }
    }

    #[test]
    fn fetch_words_counts_straddles() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let image = SchemeKind::Packed.encode(&p);
        let mut total = 0u32;
        for i in 0..image.len() as u32 {
            let w = image.fetch_words(i, 32);
            assert!(w >= 1);
            total += w;
        }
        assert!(total as u64 >= image.bit_len / 32);
    }

    #[test]
    fn bad_index_is_an_error() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let image = SchemeKind::ByteAligned.encode(&p);
        assert!(matches!(
            image.decode(image.len() as u32),
            Err(ImageError::BadIndex(_))
        ));
    }

    #[test]
    fn side_tables_grow_with_sophistication() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let images = encode_all(&p);
        assert_eq!(images[0].side_table_bits, 0); // byte-aligned needs none
        assert!(images[2].side_table_bits > images[1].side_table_bits);
        assert!(images[4].side_table_bits > images[3].side_table_bits);
    }

    #[test]
    fn huffman_beats_packed_by_a_wilner_margin() {
        // Wilner reports 25-75% memory reduction from encoding; check the
        // full-encoding scheme against the byte-aligned baseline.
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let byte = SchemeKind::ByteAligned.encode(&p).program_bits() as f64;
            let pair = SchemeKind::PairHuffman.encode(&p).program_bits() as f64;
            let reduction = 1.0 - pair / byte;
            assert!(
                reduction > 0.25,
                "{}: only {:.0}% reduction",
                s.name,
                reduction * 100.0
            );
        }
    }

    #[test]
    fn both_decode_modes_agree_on_every_sample() {
        for p in sample_programs() {
            for kind in SchemeKind::all() {
                let image = kind.encode(&p);
                for i in 0..image.len() as u32 {
                    let tree = image
                        .decode_with(&image.bytes, i, DecodeMode::Tree)
                        .unwrap();
                    let table = image
                        .decode_with(&image.bytes, i, DecodeMode::Table)
                        .unwrap();
                    assert_eq!(tree, table, "{kind} at {i}");
                }
            }
        }
    }

    #[test]
    fn set_decode_mode_switches_the_default_path() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let mut image = SchemeKind::Huffman.encode(&p);
        assert_eq!(image.mode, DecodeMode::Table);
        let fast: Vec<_> = (0..image.len() as u32)
            .map(|i| image.decode(i).unwrap())
            .collect();
        image.set_decode_mode(DecodeMode::Tree);
        let slow: Vec<_> = (0..image.len() as u32)
            .map(|i| image.decode(i).unwrap())
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn one_image_decodes_identically_from_many_threads() {
        // The pool shares one Arc<Image> per distinct program across its
        // workers; concurrent decoding must agree with the sequential
        // reference on every scheme.
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        for kind in SchemeKind::all() {
            let image = std::sync::Arc::new(kind.encode(&p));
            let want = image.decode_all().unwrap();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let image = std::sync::Arc::clone(&image);
                    let want = &want;
                    scope.spawn(move || {
                        let got = image.decode_all().unwrap();
                        assert_eq!(&got, want, "{kind}");
                    });
                }
            });
        }
    }

    #[test]
    fn every_self_produced_image_validates_clean() {
        for p in sample_programs() {
            for kind in SchemeKind::all() {
                let issues = kind.encode(&p).validate_codec();
                assert!(issues.is_empty(), "{kind}: {issues:?}");
            }
        }
    }

    #[test]
    fn fixtures_fail_validation_with_the_right_issue() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let truncated = fixtures::truncated_codebook(&p).validate_codec();
        assert!(
            matches!(
                truncated.first(),
                Some(CodecIssue::Codebook {
                    issue: crate::huffman::CodebookIssue::Incomplete,
                    ..
                })
            ),
            "{truncated:?}"
        );
        let conflict = fixtures::conflicting_codebook(&p).validate_codec();
        assert!(
            matches!(
                conflict.first(),
                Some(CodecIssue::Codebook {
                    issue: crate::huffman::CodebookIssue::PrefixConflict { .. },
                    ..
                })
            ),
            "{conflict:?}"
        );
        let wide = fixtures::oversized_field_width(&p).validate_codec();
        assert!(
            matches!(wide.first(), Some(CodecIssue::FieldWidth { width: 65, .. })),
            "{wide:?}"
        );
    }

    #[test]
    fn region_lookup_finds_owner() {
        let p = compile(&hlr::programs::GCD_CHAIN.compile().unwrap());
        let tables = ContextTables::build(&p);
        for r in &tables.regions {
            assert_eq!(tables.region_of(r.start).start, r.start);
            assert_eq!(tables.region_of(r.end - 1).start, r.start);
        }
    }
}
