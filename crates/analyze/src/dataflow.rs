//! Pass 5: interprocedural interval dataflow and per-site fact discharge.
//!
//! Where [`absint`] proves *structural* safety (depths,
//! slots, branch containment), this pass tracks *values*: an interval
//! `[lo, hi]` per local slot and per operand-stack entry, propagated to a
//! fixpoint over each region's CFG and across the call graph via
//! argument/return summaries. From the converged states it discharges
//! per-instruction facts into a [`SiteFacts`] bitmap:
//!
//! - **divisor nonzero** — a `Div`/`Mod` whose divisor interval excludes
//!   zero may skip its zero guard;
//! - **index in bounds** — an array access whose index interval fits
//!   `[0, len)` may skip its bounds guard;
//! - **branch never/always taken** — a conditional whose condition
//!   interval is decided ([`DiagCode::BranchNeverTaken`] /
//!   [`DiagCode::BranchAlwaysTaken`]), which in turn proves code
//!   unreachable ([`DiagCode::UnreachableCode`]);
//! - **stack depth exact** — every converged address carries one exact
//!   static stack depth (counted in the report).
//!
//! Branch refinement gives the pass most of its power: a stack value
//! remembers the comparison that produced it (its `Origin`), so
//! `i <= n` guarding a loop body narrows `i`'s interval on the taken
//! edge — which is what discharges `a[i]` inside the loop. Widening
//! (applied at loop heads after `WIDEN_AFTER` joins) keeps loop counters'
//! stationary bounds while forcing the moving bound to converge.
//!
//! The pass only runs on images that are clean after passes 1–4: facts
//! ride on the [`Verified`](crate::Verified) witness, and the absint
//! invariants (no underflow, consistent depths, in-range slots) are its
//! preconditions. Every assumption is still guarded defensively — an
//! inconsistency aborts the region with no facts rather than panicking.
//! Soundness of the published bitmap is closed dynamically by the
//! conformance auditor, which evaluates every elided guard and reports a
//! firing as a divergence.

use std::collections::BTreeMap;

use dir::facts::SiteFacts;
use dir::isa::{AluOp, Inst};
use dir::program::Program;

use crate::absint::{self, Region};
use crate::diag::{DiagCode, Diagnostic};

/// Joins at one address before widening kicks in.
const WIDEN_AFTER: u32 = 3;
/// Argument/return summary joins before widening to the extremes.
const SUMMARY_WIDEN_AFTER: u32 = 3;

/// A closed integer interval `[lo, hi]` over the wrapped `i64` domain.
/// `TOP` is the full range; there is no explicit bottom — absence of a
/// state plays that role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Least value the quantity can take.
    pub lo: i64,
    /// Greatest value the quantity can take.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range (no information).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The interval containing exactly `v`.
    #[must_use]
    pub fn singleton(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// True when this is the full range.
    #[must_use]
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// True when the interval cannot contain zero (a discharged divisor).
    #[must_use]
    pub fn excludes_zero(self) -> bool {
        self.lo > 0 || self.hi < 0
    }

    /// True when the interval is exactly `[0, 0]`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// True when `v` lies inside the interval.
    #[must_use]
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound: the smallest interval containing both.
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Classic asymmetric widening: a bound that moved since `self` jumps
    /// to its extreme, a stationary bound is kept. `next` must contain
    /// `self` (it is a join with `self`). Guarantees convergence in at
    /// most two applications per bound while preserving the stationary
    /// bound of loop counters.
    #[must_use]
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// Greatest lower bound, or `None` when the intervals are disjoint.
    #[must_use]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

/// Interval transfer of one ALU operation. Wrapping arithmetic forces
/// `TOP` whenever any concrete operand pair could overflow; comparisons
/// and booleans produce decided `[0,0]`/`[1,1]` or undecided `[0,1]`.
fn alu_interval(op: AluOp, a: Interval, b: Interval) -> Interval {
    let bool_itv = |t: Option<bool>| match t {
        Some(true) => Interval::singleton(1),
        Some(false) => Interval::singleton(0),
        None => Interval { lo: 0, hi: 1 },
    };
    match op {
        AluOp::Add => match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        },
        AluOp::Sub => match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        },
        AluOp::Mul => {
            let corners = [
                a.lo.checked_mul(b.lo),
                a.lo.checked_mul(b.hi),
                a.hi.checked_mul(b.lo),
                a.hi.checked_mul(b.hi),
            ];
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for c in corners {
                match c {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => return Interval::TOP,
                }
            }
            Interval { lo, hi }
        }
        // Quotients and remainders are not tracked (their transfer is
        // fiddly around mixed-sign divisors); TOP is always sound. The
        // *divisor* interval is what discharges the site fact.
        AluOp::Div | AluOp::Mod => Interval::TOP,
        AluOp::Eq => bool_itv(if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
            Some(true)
        } else if a.intersect(b).is_none() {
            Some(false)
        } else {
            None
        }),
        AluOp::Ne => bool_itv(if a.intersect(b).is_none() {
            Some(true)
        } else if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
            Some(false)
        } else {
            None
        }),
        AluOp::Lt => bool_itv(if a.hi < b.lo {
            Some(true)
        } else if a.lo >= b.hi {
            Some(false)
        } else {
            None
        }),
        AluOp::Le => bool_itv(if a.hi <= b.lo {
            Some(true)
        } else if a.lo > b.hi {
            Some(false)
        } else {
            None
        }),
        AluOp::Gt => bool_itv(if a.lo > b.hi {
            Some(true)
        } else if a.hi <= b.lo {
            Some(false)
        } else {
            None
        }),
        AluOp::Ge => bool_itv(if a.lo >= b.hi {
            Some(true)
        } else if a.hi < b.lo {
            Some(false)
        } else {
            None
        }),
        AluOp::And => bool_itv(if a.excludes_zero() && b.excludes_zero() {
            Some(true)
        } else if a.is_zero() || b.is_zero() {
            Some(false)
        } else {
            None
        }),
        AluOp::Or => bool_itv(if a.excludes_zero() || b.excludes_zero() {
            Some(true)
        } else if a.is_zero() && b.is_zero() {
            Some(false)
        } else {
            None
        }),
    }
}

/// `x op rhs` with the operands swapped: `x < y` ⇔ `y > x`.
fn flip(op: AluOp) -> AluOp {
    match op {
        AluOp::Lt => AluOp::Gt,
        AluOp::Le => AluOp::Ge,
        AluOp::Gt => AluOp::Lt,
        AluOp::Ge => AluOp::Le,
        other => other,
    }
}

/// Narrows `x` under the assumption that the comparison `x op rhs`
/// evaluated to `truth`. Returns `None` when the assumption is infeasible
/// (the edge carrying it is dead). Non-comparison operations refine
/// nothing.
fn refine(op: AluOp, x: Interval, rhs: Interval, truth: bool) -> Option<Interval> {
    let mut lo = x.lo;
    let mut hi = x.hi;
    // The runtime rhs value r lies in `rhs`; each case derives the
    // tightest bound on x that holds for *every* feasible r.
    match (op, truth) {
        (AluOp::Lt, true) | (AluOp::Ge, false) => {
            // x < r <= rhs.hi, so x <= rhs.hi - 1.
            if let Some(b) = rhs.hi.checked_sub(1) {
                hi = hi.min(b);
            }
        }
        (AluOp::Le, true) | (AluOp::Gt, false) => {
            // x <= r <= rhs.hi.
            hi = hi.min(rhs.hi);
        }
        (AluOp::Gt, true) | (AluOp::Le, false) => {
            // x > r >= rhs.lo, so x >= rhs.lo + 1.
            if let Some(b) = rhs.lo.checked_add(1) {
                lo = lo.max(b);
            }
        }
        (AluOp::Ge, true) | (AluOp::Lt, false) => {
            // x >= r >= rhs.lo.
            lo = lo.max(rhs.lo);
        }
        (AluOp::Eq, true) | (AluOp::Ne, false) => {
            let i = x.intersect(rhs)?;
            lo = i.lo;
            hi = i.hi;
        }
        // Only a singleton rhs can trim a disequality; trimming is only
        // sound at the interval's endpoints.
        (AluOp::Eq, false) | (AluOp::Ne, true) if rhs.lo == rhs.hi => {
            let c = rhs.lo;
            if lo == c && hi == c {
                return None;
            }
            if lo == c {
                lo = c.checked_add(1)?;
            }
            if hi == c {
                hi = c.checked_sub(1)?;
            }
        }
        _ => {}
    }
    (lo <= hi).then_some(Interval { lo, hi })
}

/// Where a stack value came from, for branch refinement. Invalidated the
/// moment any slot it references is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Nothing known.
    None,
    /// The value equals frame slot `.0` (unchanged since the push).
    Local(u32),
    /// The value is the 0/1 result of `locals[slot] op rhs`.
    Cmp { op: AluOp, slot: u32, rhs: Rhs },
}

/// The right-hand side of a remembered comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rhs {
    Const(i64),
    Slot(u32),
}

/// One abstract operand-stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsVal {
    itv: Interval,
    origin: Origin,
}

impl AbsVal {
    fn top() -> AbsVal {
        AbsVal {
            itv: Interval::TOP,
            origin: Origin::None,
        }
    }
}

/// The abstract machine state at one address: one interval per frame slot
/// plus the typed operand stack. Globals are not tracked (always `TOP`):
/// they are shared across calls and their flow-insensitive treatment here
/// is always sound.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<AbsVal>,
    locals: Vec<Interval>,
}

impl State {
    /// Joins `other` into `self`; reports whether anything changed.
    /// Depths are guaranteed equal by the caller.
    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            let j = a.itv.join(b.itv);
            if j != a.itv {
                a.itv = j;
                changed = true;
            }
            if a.origin != b.origin && a.origin != Origin::None {
                a.origin = Origin::None;
                changed = true;
            }
        }
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }

    /// Widens `self` against its pre-join copy `before` (standard
    /// widen-after-join: any bound that moved goes to its extreme).
    fn widen_from(&mut self, before: &State) {
        for (a, b) in self.stack.iter_mut().zip(&before.stack) {
            a.itv = b.itv.widen(a.itv);
        }
        for (a, b) in self.locals.iter_mut().zip(&before.locals) {
            *a = b.widen(*a);
        }
    }

    /// Drops every origin that references slot `s` (it was just written).
    fn invalidate(&mut self, s: u32) {
        for v in &mut self.stack {
            let hit = match v.origin {
                Origin::None => false,
                Origin::Local(t) => t == s,
                Origin::Cmp { slot, rhs, .. } => slot == s || matches!(rhs, Rhs::Slot(t) if t == s),
            };
            if hit {
                v.origin = Origin::None;
            }
        }
    }
}

/// Interprocedural summary of one procedure.
#[derive(Debug, Clone)]
struct Summary {
    /// Joined argument intervals over every reachable call site; `None`
    /// until the first reachable call is seen.
    args: Option<Vec<Interval>>,
    arg_joins: u32,
    /// Joined return-value interval (valued procedures only).
    ret: Option<Interval>,
    ret_joins: u32,
    /// Whether any `Return` is reachable: until it is, code after a call
    /// to this procedure is unreachable.
    may_return: bool,
}

impl Summary {
    fn new() -> Summary {
        Summary {
            args: None,
            arg_joins: 0,
            ret: None,
            ret_joins: 0,
            may_return: false,
        }
    }
}

/// Everything one intra-region fixpoint produced.
struct RegionRun {
    /// Converged state per relative address (`None` = unreachable).
    states: Vec<Option<State>>,
    /// Joined argument intervals per called procedure.
    calls: BTreeMap<u32, Vec<Interval>>,
    /// Joined return interval, if a valued `Return` was reached.
    ret: Option<Interval>,
    /// Whether any `Return` was reached.
    may_return: bool,
    /// The run hit a structural inconsistency; publish no facts for it.
    aborted: bool,
}

/// Per-region fact coverage, for discharge-ratio reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionFacts {
    /// `<prelude>` or the procedure name.
    pub name: String,
    /// Whether the region converged (unreachable or aborted regions carry
    /// textual site counts with nothing proved).
    pub analyzed: bool,
    /// `Div`/`Mod` sites in the region.
    pub div_sites: u32,
    /// Divisor-nonzero facts discharged.
    pub div_proved: u32,
    /// Array-access sites in the region.
    pub idx_sites: u32,
    /// Index-in-bounds facts discharged.
    pub idx_proved: u32,
}

/// Aggregate output of the dataflow pass, alongside the [`SiteFacts`]
/// bitmap itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactsReport {
    /// `Div`/`Mod` sites in the program.
    pub div_sites: u32,
    /// Divisor-nonzero facts discharged.
    pub div_proved: u32,
    /// Array-access sites in the program.
    pub idx_sites: u32,
    /// Index-in-bounds facts discharged.
    pub idx_proved: u32,
    /// Reachable addresses with an exact static stack depth (all of them,
    /// by construction of the join).
    pub depth_exact: u32,
    /// Conditional branches proved never taken.
    pub branches_never: u32,
    /// Conditional branches proved always taken.
    pub branches_always: u32,
    /// Instructions proved unreachable.
    pub unreachable_insts: u32,
    /// Per-region breakdown.
    pub per_region: Vec<RegionFacts>,
}

/// Runs the interprocedural dataflow pass, appending `AN6xx` findings to
/// `diags` and returning the fact bitmap plus its coverage report.
///
/// Callers must only invoke this on programs that are clean after the
/// structural passes (see the module docs); on anything else every region
/// aborts defensively and the bitmap stays empty.
pub(crate) fn analyze(program: &Program, diags: &mut Vec<Diagnostic>) -> (SiteFacts, FactsReport) {
    let regions = absint::regions(program);
    let mut facts = SiteFacts::empty(program.code.len() as u32);
    let mut report = FactsReport::default();

    // Textual caller map: proc index -> regions containing a call to it.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); program.procs.len()];
    for (ri, r) in regions.iter().enumerate() {
        for inst in code_of(program, r) {
            if let Inst::Call(p) = *inst {
                if let Some(c) = callers.get_mut(p as usize) {
                    if !c.contains(&ri) {
                        c.push(ri);
                    }
                }
            }
        }
    }

    let mut summaries: Vec<Summary> = program.procs.iter().map(|_| Summary::new()).collect();
    let mut runs: Vec<Option<RegionRun>> = (0..regions.len()).map(|_| None).collect();
    let mut queue: Vec<usize> = vec![0];
    let mut queued: Vec<bool> = vec![false; regions.len()];
    queued[0] = true;
    let mut budget = regions.len() * 64 + 64;

    while let Some(ri) = queue.pop() {
        queued[ri] = false;
        if budget == 0 {
            // Fixpoint budget exhausted (requires an adversarial call
            // graph): publish nothing rather than unconverged facts.
            report.per_region = regions
                .iter()
                .map(|r| textual_region_facts(program, r))
                .collect();
            sum_region_facts(&mut report);
            return (SiteFacts::empty(program.code.len() as u32), report);
        }
        budget -= 1;

        let region = &regions[ri];
        let entry_locals = entry_locals(region, ri.checked_sub(1).map(|p| &summaries[p]));
        let run = run_region(program, region, entry_locals, &summaries);

        // Merge this run's interprocedural effects and requeue whoever
        // they invalidate.
        let mut requeue: Vec<usize> = Vec::new();
        if run.aborted {
            // Defensive: assume the broken region can call its textual
            // callees with anything and that they all return.
            for inst in code_of(program, region) {
                if let Inst::Call(p) = *inst {
                    if let Some(info) = program.procs.get(p as usize) {
                        let top_args = vec![Interval::TOP; info.n_args as usize];
                        merge_call(
                            &mut summaries[p as usize],
                            top_args,
                            Some(Interval::TOP),
                            true,
                            p as usize,
                            &callers,
                            &mut requeue,
                        );
                    }
                }
            }
        } else {
            for (p, args) in &run.calls {
                merge_call(
                    &mut summaries[*p as usize],
                    args.clone(),
                    None,
                    false,
                    *p as usize,
                    &callers,
                    &mut requeue,
                );
            }
            if let Some(p) = ri.checked_sub(1) {
                let s = &mut summaries[p];
                let mut changed = false;
                if run.may_return && !s.may_return {
                    s.may_return = true;
                    changed = true;
                }
                if let Some(r) = run.ret {
                    let next = match s.ret {
                        None => r,
                        Some(cur) => {
                            let j = cur.join(r);
                            if j != cur {
                                s.ret_joins += 1;
                                if s.ret_joins >= SUMMARY_WIDEN_AFTER {
                                    cur.widen(j)
                                } else {
                                    j
                                }
                            } else {
                                cur
                            }
                        }
                    };
                    if s.ret != Some(next) {
                        s.ret = Some(next);
                        changed = true;
                    }
                }
                if changed {
                    requeue.extend(callers[p].iter().copied());
                }
            }
        }
        runs[ri] = Some(run);
        for t in requeue {
            // A region whose inputs changed must re-run even if it has a
            // stored result; the callee itself re-runs when its args grew.
            if !queued[t] {
                queued[t] = true;
                queue.push(t);
            }
        }
        // A callee whose args changed was pushed via requeue only if it
        // appears in `callers`; merge_call queues the callee directly.
    }

    // Final extraction over the converged runs. Regions never reached
    // (dead procedures) publish textual site counts and nothing proved:
    // they cannot execute, and AN301 already flags them.
    for (ri, region) in regions.iter().enumerate() {
        match &runs[ri] {
            Some(run) if !run.aborted => {
                let rf = extract_region_facts(program, region, run, &mut facts, &mut report, diags);
                report.per_region.push(rf);
            }
            _ => report
                .per_region
                .push(textual_region_facts(program, region)),
        }
    }
    sum_region_facts(&mut report);
    (facts, report)
}

fn code_of<'p>(program: &'p Program, region: &Region) -> &'p [Inst] {
    let start = region.start as usize;
    let end = (region.end as usize).min(program.code.len());
    if start >= end {
        &[]
    } else {
        &program.code[start..end]
    }
}

/// Entry locals for a region: arguments from the summary (or the region's
/// declared arity of `TOP`s for the prelude/fallback), remaining slots
/// zero — frames are zero-filled by every executor.
fn entry_locals(region: &Region, summary: Option<&Summary>) -> Vec<Interval> {
    let fs = region.frame_size as usize;
    let n_args = (region.n_args as usize).min(fs);
    let mut locals = vec![Interval::singleton(0); fs];
    for (i, slot) in locals.iter_mut().enumerate().take(n_args) {
        *slot = match summary.and_then(|s| s.args.as_ref()) {
            Some(args) => args.get(i).copied().unwrap_or(Interval::TOP),
            None => Interval::TOP,
        };
    }
    locals
}

/// Joins one call's effects into a summary; queues the callee (and, when
/// its return summary grew, its callers) for re-analysis.
#[allow(clippy::too_many_arguments)]
fn merge_call(
    s: &mut Summary,
    args: Vec<Interval>,
    ret: Option<Interval>,
    may_return: bool,
    p: usize,
    callers: &[Vec<usize>],
    requeue: &mut Vec<usize>,
) {
    let mut callee_changed = false;
    match &mut s.args {
        None => {
            s.args = Some(args);
            callee_changed = true;
        }
        Some(cur) => {
            let mut grew = false;
            for (c, n) in cur.iter_mut().zip(&args) {
                let j = c.join(*n);
                if j != *c {
                    grew = true;
                    *c = j;
                }
            }
            if grew {
                s.arg_joins += 1;
                if s.arg_joins >= SUMMARY_WIDEN_AFTER {
                    for c in cur.iter_mut() {
                        *c = Interval::TOP;
                    }
                }
                callee_changed = true;
            }
        }
    }
    let mut caller_visible = false;
    if may_return && !s.may_return {
        s.may_return = true;
        caller_visible = true;
    }
    if let Some(r) = ret {
        let next = match s.ret {
            None => r,
            Some(cur) => cur.join(r),
        };
        if s.ret != Some(next) {
            s.ret = Some(next);
            caller_visible = true;
        }
    }
    if callee_changed {
        // Region index of procedure p is p + 1.
        requeue.push(p + 1);
    }
    if caller_visible {
        requeue.extend(callers[p].iter().copied());
    }
}

/// Runs the intra-region worklist to a fixpoint.
fn run_region(
    program: &Program,
    region: &Region,
    entry_locals: Vec<Interval>,
    summaries: &[Summary],
) -> RegionRun {
    let code = &program.code;
    let start = region.start as usize;
    let end = region.end as usize;
    let aborted_run = |states: Vec<Option<State>>| RegionRun {
        states,
        calls: BTreeMap::new(),
        ret: None,
        may_return: false,
        aborted: true,
    };
    if start >= end || end > code.len() {
        return aborted_run(Vec::new());
    }
    let n = end - start;
    let fs = region.frame_size as usize;

    let mut states: Vec<Option<State>> = vec![None; n];
    states[0] = Some(State {
        stack: Vec::new(),
        locals: entry_locals,
    });
    let mut join_counts: Vec<u32> = vec![0; n];
    // Widening is confined to loop heads (targets of backward branches):
    // widening mid-body would erase branch refinements before the head
    // converges. Every cycle this compiler emits passes through such a
    // head, and the iteration budget below backstops termination anyway.
    let mut widen_point: Vec<bool> = vec![false; n];
    for (i, inst) in code[start..end].iter().enumerate() {
        if let Some(t) = inst.target() {
            if t >= region.start && (t as usize) < start + i + 1 {
                widen_point[t as usize - start] = true;
            }
        }
    }
    let mut work: Vec<usize> = vec![0];
    let mut calls: BTreeMap<u32, Vec<Interval>> = BTreeMap::new();
    let mut ret: Option<Interval> = None;
    let mut may_return = false;
    let mut budget = n * 48 + 256;

    while let Some(rel) = work.pop() {
        if budget == 0 {
            return aborted_run(states);
        }
        budget -= 1;
        let mut st = states[rel].clone().expect("queued index has a state");
        let addr = (start + rel) as u32;
        let inst = code[start + rel];

        // (successor address, refined state) pairs; terminal instructions
        // and proved-infeasible edges push nothing.
        let mut succs: Vec<(u32, State)> = Vec::with_capacity(2);
        let fall = addr + 1;
        macro_rules! pop {
            () => {
                match st.stack.pop() {
                    Some(v) => v,
                    None => return aborted_run(states),
                }
            };
        }
        macro_rules! slot {
            ($s:expr) => {{
                let s = $s as usize;
                if s >= fs {
                    return aborted_run(states);
                }
                s
            }};
        }

        match inst {
            Inst::PushConst(v) => {
                st.stack.push(AbsVal {
                    itv: Interval::singleton(v),
                    origin: Origin::None,
                });
                succs.push((fall, st));
            }
            Inst::PushLocal(s) => {
                let itv = st.locals[slot!(s)];
                st.stack.push(AbsVal {
                    itv,
                    origin: Origin::Local(s),
                });
                succs.push((fall, st));
            }
            Inst::PushGlobal(s) => {
                if s >= program.globals_size {
                    return aborted_run(states);
                }
                st.stack.push(AbsVal::top());
                succs.push((fall, st));
            }
            Inst::StoreLocal(s) => {
                let v = pop!();
                let si = slot!(s);
                st.locals[si] = v.itv;
                st.invalidate(s);
                succs.push((fall, st));
            }
            Inst::StoreGlobal(s) => {
                if s >= program.globals_size {
                    return aborted_run(states);
                }
                pop!();
                succs.push((fall, st));
            }
            Inst::LoadArrLocal { base, len } | Inst::LoadArrGlobal { base, len } => {
                let area = if matches!(inst, Inst::LoadArrLocal { .. }) {
                    region.frame_size
                } else {
                    program.globals_size
                };
                if base.saturating_add(len) > area {
                    return aborted_run(states);
                }
                pop!();
                st.stack.push(AbsVal::top());
                succs.push((fall, st));
            }
            Inst::StoreArrLocal { base, len } => {
                if base.saturating_add(len) > region.frame_size {
                    return aborted_run(states);
                }
                pop!(); // value
                pop!(); // index
                for s in base..base.saturating_add(len) {
                    st.locals[s as usize] = Interval::TOP;
                    st.invalidate(s);
                }
                succs.push((fall, st));
            }
            Inst::StoreArrGlobal { base, len } => {
                if base.saturating_add(len) > program.globals_size {
                    return aborted_run(states);
                }
                pop!();
                pop!();
                succs.push((fall, st));
            }
            Inst::Pop | Inst::Write => {
                pop!();
                succs.push((fall, st));
            }
            Inst::Bin(op) => {
                let b = pop!();
                let a = pop!();
                if op.traps_on_zero() {
                    if b.itv.is_zero() {
                        // Always traps; nothing executes past this site.
                        continue;
                    }
                    // Execution past the site proves the divisor nonzero.
                    if let Origin::Local(s) = b.origin {
                        if let Some(r) =
                            refine(AluOp::Ne, st.locals[slot!(s)], Interval::singleton(0), true)
                        {
                            st.locals[s as usize] = r;
                        }
                    }
                }
                let itv = alu_interval(op, a.itv, b.itv);
                let origin = cmp_origin(op, &a, &b);
                st.stack.push(AbsVal { itv, origin });
                succs.push((fall, st));
            }
            Inst::Neg => {
                let v = pop!();
                let itv = alu_interval(AluOp::Sub, Interval::singleton(0), v.itv);
                st.stack.push(AbsVal {
                    itv,
                    origin: Origin::None,
                });
                succs.push((fall, st));
            }
            Inst::Not => {
                let v = pop!();
                let itv = if v.itv.excludes_zero() {
                    Interval::singleton(0)
                } else if v.itv.is_zero() {
                    Interval::singleton(1)
                } else {
                    Interval { lo: 0, hi: 1 }
                };
                let origin = match v.origin {
                    // !x is 1 exactly when x == 0.
                    Origin::Local(s) => Origin::Cmp {
                        op: AluOp::Eq,
                        slot: s,
                        rhs: Rhs::Const(0),
                    },
                    Origin::Cmp { op, slot, rhs } => Origin::Cmp {
                        op: negate(op),
                        slot,
                        rhs,
                    },
                    Origin::None => Origin::None,
                };
                st.stack.push(AbsVal { itv, origin });
                succs.push((fall, st));
            }
            Inst::Jump(t) => {
                if !in_region(t, region) {
                    return aborted_run(states);
                }
                succs.push((t, st));
            }
            Inst::JumpIfFalse(t) | Inst::JumpIfTrue(t) => {
                if !in_region(t, region) || fall >= region.end {
                    return aborted_run(states);
                }
                let c = pop!();
                let jump_when = matches!(inst, Inst::JumpIfFalse(_));
                // JumpIfFalse jumps when c == 0; JumpIfTrue when c != 0.
                let (zero_succ, nonzero_succ) = if jump_when { (t, fall) } else { (fall, t) };
                if !c.itv.is_zero() {
                    // The condition can be nonzero (true).
                    if let Some(s2) = assume(&st, &c.origin, true) {
                        succs.push((nonzero_succ, s2));
                    }
                }
                if c.itv.contains(0) {
                    if let Some(s2) = assume(&st, &c.origin, false) {
                        succs.push((zero_succ, s2));
                    }
                }
            }
            Inst::Call(p) => {
                let Some(info) = program.procs.get(p as usize) else {
                    return aborted_run(states);
                };
                let n_args = info.n_args as usize;
                if st.stack.len() < n_args {
                    return aborted_run(states);
                }
                let at = st.stack.len() - n_args;
                let args: Vec<Interval> = st.stack[at..].iter().map(|v| v.itv).collect();
                st.stack.truncate(at);
                match calls.get_mut(&p) {
                    Some(cur) => {
                        for (c, a) in cur.iter_mut().zip(&args) {
                            *c = c.join(*a);
                        }
                    }
                    None => {
                        calls.insert(p, args);
                    }
                }
                let s = &summaries[p as usize];
                if s.may_return {
                    if info.returns_value {
                        st.stack.push(AbsVal {
                            itv: s.ret.unwrap_or(Interval::TOP),
                            origin: Origin::None,
                        });
                    }
                    if fall >= region.end {
                        return aborted_run(states);
                    }
                    succs.push((fall, st));
                }
                // !may_return: the continuation is (currently) proved
                // unreachable; the callee's own Return requeues us.
            }
            Inst::Return => {
                if region.is_prelude {
                    return aborted_run(states);
                }
                if region.returns_value {
                    let v = pop!();
                    ret = Some(match ret {
                        None => v.itv,
                        Some(cur) => cur.join(v.itv),
                    });
                }
                may_return = true;
            }
            Inst::Halt => {}
            Inst::BinLocals { op, a, b, dst } => {
                let (ai, bi, di) = (slot!(a), slot!(b), slot!(dst));
                let (va, vb) = (st.locals[ai], st.locals[bi]);
                if op.traps_on_zero() {
                    if vb.is_zero() {
                        // Always traps: terminal.
                        continue;
                    }
                    if let Some(r) = refine(AluOp::Ne, vb, Interval::singleton(0), true) {
                        st.locals[bi] = r;
                    }
                }
                let r = alu_interval(op, va, vb);
                st.locals[di] = r;
                st.invalidate(dst);
                succs.push((fall, st));
            }
            Inst::IncLocal { slot, imm } => {
                let si = slot!(slot);
                st.locals[si] = alu_interval(AluOp::Add, st.locals[si], Interval::singleton(imm));
                st.invalidate(slot);
                succs.push((fall, st));
            }
            Inst::SetLocalConst { slot, imm } => {
                let si = slot!(slot);
                st.locals[si] = Interval::singleton(imm);
                st.invalidate(slot);
                succs.push((fall, st));
            }
            Inst::CmpConstBr {
                op,
                slot,
                imm,
                target,
            } => {
                if !in_region(target, region) || fall >= region.end {
                    return aborted_run(states);
                }
                let si = slot!(slot);
                if op.traps_on_zero() && imm == 0 {
                    // Division by a zero immediate always traps: terminal.
                    continue;
                }
                let lhs = st.locals[si];
                let rhs = Interval::singleton(imm);
                let r = alu_interval(op, lhs, rhs);
                // Jumps when the result is zero (false).
                if !r.is_zero() {
                    if let Some(x) = refine(op, lhs, rhs, true) {
                        let mut s2 = st.clone();
                        s2.locals[si] = x;
                        s2.invalidate(slot);
                        succs.push((fall, s2));
                    }
                }
                if r.contains(0) {
                    if let Some(x) = refine(op, lhs, rhs, false) {
                        st.locals[si] = x;
                        st.invalidate(slot);
                        succs.push((target, st));
                    }
                }
            }
            Inst::CmpLocalsBr { op, a, b, target } => {
                if !in_region(target, region) || fall >= region.end {
                    return aborted_run(states);
                }
                let (ai, bi) = (slot!(a), slot!(b));
                if op.traps_on_zero() {
                    if st.locals[bi].is_zero() {
                        // Always traps: terminal.
                        continue;
                    }
                    // Execution past the site proves the divisor nonzero.
                    if let Some(r) = refine(AluOp::Ne, st.locals[bi], Interval::singleton(0), true)
                    {
                        st.locals[bi] = r;
                    }
                }
                let (va, vb) = (st.locals[ai], st.locals[bi]);
                let r = alu_interval(op, va, vb);
                if !r.is_zero() {
                    if let (Some(x), Some(y)) =
                        (refine(op, va, vb, true), refine(flip(op), vb, va, true))
                    {
                        let mut s2 = st.clone();
                        s2.locals[ai] = x;
                        s2.locals[bi] = y;
                        s2.invalidate(a);
                        s2.invalidate(b);
                        succs.push((fall, s2));
                    }
                }
                if r.contains(0) {
                    if let (Some(x), Some(y)) =
                        (refine(op, va, vb, false), refine(flip(op), vb, va, false))
                    {
                        st.locals[ai] = x;
                        st.locals[bi] = y;
                        st.invalidate(a);
                        st.invalidate(b);
                        succs.push((target, st));
                    }
                }
            }
        }

        for (t, s2) in succs {
            if !in_region(t, region) {
                return aborted_run(states);
            }
            let trel = t as usize - start;
            match &mut states[trel] {
                slot @ None => {
                    *slot = Some(s2);
                    work.push(trel);
                }
                Some(old) => {
                    if old.stack.len() != s2.stack.len() || old.locals.len() != s2.locals.len() {
                        return aborted_run(states);
                    }
                    let before = old.clone();
                    if old.join_from(&s2) {
                        join_counts[trel] += 1;
                        if widen_point[trel] && join_counts[trel] >= WIDEN_AFTER {
                            old.widen_from(&before);
                        }
                        work.push(trel);
                    }
                }
            }
        }
    }

    RegionRun {
        states,
        calls,
        ret,
        may_return,
        aborted: false,
    }
}

fn in_region(addr: u32, region: &Region) -> bool {
    addr >= region.start && addr < region.end
}

/// Negation of a remembered comparison (`!(a < b)` is `a >= b`).
fn negate(op: AluOp) -> AluOp {
    match op {
        AluOp::Eq => AluOp::Ne,
        AluOp::Ne => AluOp::Eq,
        AluOp::Lt => AluOp::Ge,
        AluOp::Ge => AluOp::Lt,
        AluOp::Le => AluOp::Gt,
        AluOp::Gt => AluOp::Le,
        other => other,
    }
}

/// Origin for the result of `a op b`, when the comparison is one branch
/// refinement understands.
fn cmp_origin(op: AluOp, a: &AbsVal, b: &AbsVal) -> Origin {
    if !matches!(
        op,
        AluOp::Eq | AluOp::Ne | AluOp::Lt | AluOp::Le | AluOp::Gt | AluOp::Ge
    ) {
        return Origin::None;
    }
    match (a.origin, b.origin) {
        (Origin::Local(s), _) if b.itv.lo == b.itv.hi => Origin::Cmp {
            op,
            slot: s,
            rhs: Rhs::Const(b.itv.lo),
        },
        (Origin::Local(s), Origin::Local(t)) => Origin::Cmp {
            op,
            slot: s,
            rhs: Rhs::Slot(t),
        },
        (_, Origin::Local(t)) if a.itv.lo == a.itv.hi => Origin::Cmp {
            op: flip(op),
            slot: t,
            rhs: Rhs::Const(a.itv.lo),
        },
        _ => Origin::None,
    }
}

/// Refines a state under the assumption that a just-popped condition with
/// the given origin was nonzero (`truth`) or zero (`!truth`). Returns
/// `None` when the assumption is infeasible.
fn assume(st: &State, origin: &Origin, truth: bool) -> Option<State> {
    let mut s2 = st.clone();
    match *origin {
        Origin::None => {}
        Origin::Local(s) => {
            let cur = *s2.locals.get(s as usize)?;
            let refined = if truth {
                refine(AluOp::Ne, cur, Interval::singleton(0), true)?
            } else {
                cur.intersect(Interval::singleton(0))?
            };
            s2.locals[s as usize] = refined;
        }
        Origin::Cmp { op, slot, rhs } => {
            let lhs = *s2.locals.get(slot as usize)?;
            let rhs_itv = match rhs {
                Rhs::Const(c) => Interval::singleton(c),
                Rhs::Slot(t) => *s2.locals.get(t as usize)?,
            };
            let refined = refine(op, lhs, rhs_itv, truth)?;
            s2.locals[slot as usize] = refined;
            if let Rhs::Slot(t) = rhs {
                let other = refine(flip(op), rhs_itv, lhs, truth)?;
                s2.locals[t as usize] = other;
            }
        }
    }
    Some(s2)
}

/// Counts div/idx sites of a region without any proof (for unreachable or
/// aborted regions).
fn textual_region_facts(program: &Program, region: &Region) -> RegionFacts {
    let mut rf = RegionFacts {
        name: region.name.clone(),
        analyzed: false,
        div_sites: 0,
        div_proved: 0,
        idx_sites: 0,
        idx_proved: 0,
    };
    for inst in code_of(program, region) {
        match *inst {
            Inst::Bin(op)
            | Inst::BinLocals { op, .. }
            | Inst::CmpConstBr { op, .. }
            | Inst::CmpLocalsBr { op, .. }
                if op.traps_on_zero() =>
            {
                rf.div_sites += 1;
            }
            Inst::LoadArrLocal { .. }
            | Inst::LoadArrGlobal { .. }
            | Inst::StoreArrLocal { .. }
            | Inst::StoreArrGlobal { .. } => rf.idx_sites += 1,
            _ => {}
        }
    }
    rf
}

fn sum_region_facts(report: &mut FactsReport) {
    report.div_sites = report.per_region.iter().map(|r| r.div_sites).sum();
    report.div_proved = report.per_region.iter().map(|r| r.div_proved).sum();
    report.idx_sites = report.per_region.iter().map(|r| r.idx_sites).sum();
    report.idx_proved = report.per_region.iter().map(|r| r.idx_proved).sum();
}

/// Walks one converged region, setting fact bits and emitting `AN6xx`
/// diagnostics from the final states.
fn extract_region_facts(
    program: &Program,
    region: &Region,
    run: &RegionRun,
    facts: &mut SiteFacts,
    report: &mut FactsReport,
    diags: &mut Vec<Diagnostic>,
) -> RegionFacts {
    let start = region.start as usize;
    let mut rf = textual_region_facts(program, region);
    rf.analyzed = true;

    for (rel, inst) in code_of(program, region).iter().enumerate() {
        let addr = (start + rel) as u32;
        let Some(st) = &run.states[rel] else { continue };
        report.depth_exact += 1;

        // Divisor / index facts.
        let divisor: Option<Interval> = match *inst {
            Inst::Bin(op) if op.traps_on_zero() => st.stack.last().map(|v| v.itv),
            Inst::BinLocals { op, b, .. } | Inst::CmpLocalsBr { op, b, .. }
                if op.traps_on_zero() =>
            {
                st.locals.get(b as usize).copied()
            }
            Inst::CmpConstBr { op, imm, .. } if op.traps_on_zero() => {
                Some(Interval::singleton(imm))
            }
            _ => None,
        };
        if let Some(d) = divisor {
            if d.excludes_zero() {
                facts.set_div_ok(addr);
                rf.div_proved += 1;
            }
        }
        let index: Option<(Interval, u32)> = match *inst {
            Inst::LoadArrLocal { len, .. } | Inst::LoadArrGlobal { len, .. } => {
                st.stack.last().map(|v| (v.itv, len))
            }
            Inst::StoreArrLocal { len, .. } | Inst::StoreArrGlobal { len, .. } => {
                let d = st.stack.len();
                d.checked_sub(2)
                    .and_then(|i| st.stack.get(i))
                    .map(|v| (v.itv, len))
            }
            _ => None,
        };
        if let Some((idx, len)) = index {
            if idx.lo >= 0 && idx.hi < i64::from(len) {
                facts.set_idx_ok(addr);
                rf.idx_proved += 1;
            }
        }

        // Decided-branch diagnostics.
        let decided: Option<Option<bool>> = match *inst {
            Inst::JumpIfFalse(_) => st.stack.last().map(|c| {
                if c.itv.is_zero() {
                    Some(true) // condition zero: always jumps
                } else if c.itv.excludes_zero() {
                    Some(false) // never jumps
                } else {
                    None
                }
            }),
            Inst::JumpIfTrue(_) => st.stack.last().map(|c| {
                if c.itv.excludes_zero() {
                    Some(true)
                } else if c.itv.is_zero() {
                    Some(false)
                } else {
                    None
                }
            }),
            Inst::CmpConstBr { op, slot, imm, .. } => {
                let lhs = st.locals.get(slot as usize).copied();
                let rhs = Interval::singleton(imm);
                if op.traps_on_zero() && !rhs.excludes_zero() {
                    None
                } else {
                    lhs.map(|l| {
                        let r = alu_interval(op, l, rhs);
                        if r.is_zero() {
                            Some(true) // result false: always jumps
                        } else if r.excludes_zero() {
                            Some(false)
                        } else {
                            None
                        }
                    })
                }
            }
            Inst::CmpLocalsBr { op, a, b, .. } => {
                let lhs = st.locals.get(a as usize).copied();
                let rhs = st.locals.get(b as usize).copied();
                match (lhs, rhs) {
                    (Some(l), Some(r)) if !op.traps_on_zero() || r.excludes_zero() => {
                        let v = alu_interval(op, l, r);
                        if v.is_zero() {
                            Some(Some(true))
                        } else if v.excludes_zero() {
                            Some(Some(false))
                        } else {
                            Some(None)
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        match decided {
            Some(Some(true)) => {
                report.branches_always += 1;
                diags.push(Diagnostic::at(
                    DiagCode::BranchAlwaysTaken,
                    addr,
                    &region.name,
                    "branch condition is statically decided: always taken".to_string(),
                ));
            }
            Some(Some(false)) => {
                report.branches_never += 1;
                diags.push(Diagnostic::at(
                    DiagCode::BranchNeverTaken,
                    addr,
                    &region.name,
                    "branch condition is statically decided: never taken".to_string(),
                ));
            }
            _ => {}
        }
    }

    // Unreachable-code runs (coalesced into one diagnostic per run).
    let mut rel = 0usize;
    let n = run.states.len();
    while rel < n {
        if run.states[rel].is_none() {
            let first = rel;
            while rel < n && run.states[rel].is_none() {
                rel += 1;
            }
            let count = (rel - first) as u32;
            report.unreachable_insts += count;
            let a = (start + first) as u32;
            let b = (start + rel - 1) as u32;
            let span = if a == b {
                format!("instruction {a} is unreachable")
            } else {
                format!("instructions {a}..={b} are unreachable")
            };
            diags.push(Diagnostic::at(
                DiagCode::UnreachableCode,
                a,
                &region.name,
                span,
            ));
        } else {
            rel += 1;
        }
    }
    rf
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::compiler::compile;

    fn facts_for(src: &str) -> (SiteFacts, FactsReport, Vec<Diagnostic>) {
        let hir = hlr::compile(src).unwrap();
        let program = compile(&hir);
        let mut diags = Vec::new();
        let (facts, report) = analyze(&program, &mut diags);
        (facts, report, diags)
    }

    #[test]
    fn constant_divisor_is_discharged() {
        let (facts, report, _) = facts_for("proc main() begin write 10 / 2; end");
        assert_eq!(report.div_sites, 1);
        assert_eq!(report.div_proved, 1);
        assert_eq!(facts.div_count(), 1);
    }

    #[test]
    fn possibly_zero_divisor_is_not_discharged() {
        let (facts, report, _) = facts_for(
            "proc main() begin
                int d; d := 3 - 3;
                write 10 / d;
            end",
        );
        assert_eq!(report.div_sites, 1);
        assert_eq!(report.div_proved, 0);
        assert_eq!(facts.div_count(), 0);
    }

    #[test]
    fn loop_counter_index_is_discharged() {
        let (facts, report, _) = facts_for(
            "proc main() begin
                int a[10]; int i;
                for i := 0 to 9 do a[i] := i;
                write a[3];
            end",
        );
        assert!(report.idx_sites >= 2, "store in loop + literal load");
        assert_eq!(
            report.idx_proved, report.idx_sites,
            "bounded counter and literal index must both discharge"
        );
        assert_eq!(facts.idx_count(), report.idx_sites);
    }

    #[test]
    fn unbounded_index_is_not_discharged() {
        let (_, report, _) = facts_for(
            "int g;
             proc main() begin
                int a[4];
                write a[g];
            end",
        );
        assert_eq!(report.idx_sites, 1);
        assert_eq!(report.idx_proved, 0);
    }

    #[test]
    fn interprocedural_argument_ranges_discharge_callee_sites() {
        let (_, report, _) = facts_for(
            "proc half(int d) -> int begin return 100 / d; end
             proc main() begin write half(4); write half(5); end",
        );
        assert_eq!(report.div_sites, 1);
        assert_eq!(
            report.div_proved, 1,
            "both call sites pass nonzero constants; the join [4,5] excludes 0"
        );
    }

    #[test]
    fn zero_argument_voids_the_callee_fact() {
        let (_, report, _) = facts_for(
            "proc half(int d) -> int begin return 100 / d; end
             proc main() begin write half(4); write half(0 * 3); end",
        );
        assert_eq!(report.div_sites, 1);
        assert_eq!(report.div_proved, 0);
    }

    #[test]
    fn decided_branches_are_reported() {
        let (_, report, diags) = facts_for(
            "proc main() begin
                if 1 < 2 then write 7;
            end",
        );
        assert!(
            report.branches_never + report.branches_always >= 1,
            "a constant comparison must be decided: {report:?}"
        );
        assert!(diags.iter().any(|d| matches!(
            d.code,
            DiagCode::BranchNeverTaken | DiagCode::BranchAlwaysTaken
        )));
    }

    #[test]
    fn while_true_tail_is_unreachable() {
        let (_, report, diags) = facts_for(
            "proc spin() begin while true do skip; end
             proc main() begin call spin(); write 1; end",
        );
        // The loop never exits: spin's Return and main's continuation
        // (everything after the call) are unreachable.
        assert!(report.unreachable_insts > 0, "{report:?}");
        assert!(diags.iter().any(|d| d.code == DiagCode::UnreachableCode));
    }

    #[test]
    fn every_sample_program_analyzes_with_sound_depths() {
        for s in hlr::programs::ALL {
            let program = compile(&s.compile().unwrap());
            let mut diags = Vec::new();
            let (facts, report) = analyze(&program, &mut diags);
            assert!(
                report.per_region.iter().all(|r| r.analyzed),
                "{}: all regions reachable from the prelude must converge",
                s.name
            );
            assert!(report.div_proved <= report.div_sites, "{}", s.name);
            assert!(report.idx_proved <= report.idx_sites, "{}", s.name);
            assert_eq!(facts.div_count(), report.div_proved, "{}", s.name);
            assert_eq!(facts.idx_count(), report.idx_proved, "{}", s.name);
        }
    }

    #[test]
    fn join_is_monotone_and_widen_reaches_fixpoint_within_bound() {
        // Seeded property test: join is an upper bound of both operands,
        // and iterate-with-widen converges within the modeled bound.
        let mut rng = hlr::rng::Rng::new(0xDA7A_F10F);
        let rand_itv = |rng: &mut hlr::rng::Rng| {
            let a = rng.range_i64(-1_000_000, 1_000_000);
            let b = rng.range_i64(-1_000_000, 1_000_000);
            Interval {
                lo: a.min(b),
                hi: a.max(b),
            }
        };
        for _ in 0..2_000 {
            let x = rand_itv(&mut rng);
            let y = rand_itv(&mut rng);
            let j = x.join(y);
            assert!(j.lo <= x.lo && j.hi >= x.hi, "join contains x");
            assert!(j.lo <= y.lo && j.hi >= y.hi, "join contains y");
            assert_eq!(j, y.join(x), "join is commutative");
            assert_eq!(j.join(j), j, "join is idempotent");

            // Widening chain: feed an endless stream of fresh samples; the
            // state must stop changing after at most WIDEN_AFTER joins
            // plus two widening steps (one per bound).
            let mut state = x;
            let mut changes = 0u32;
            for _ in 0..64 {
                let sample = rand_itv(&mut rng);
                let joined = state.join(sample);
                if joined == state {
                    continue;
                }
                changes += 1;
                state = if changes >= WIDEN_AFTER {
                    state.widen(joined)
                } else {
                    joined
                };
            }
            assert!(
                changes <= WIDEN_AFTER + 2,
                "widening must cap the ascending chain, saw {changes} changes"
            );
            // And the fixpoint really is a fixpoint.
            assert_eq!(state.widen(state.join(state)), state);
        }
    }

    #[test]
    fn refine_preserves_soundness_on_samples() {
        let mut rng = hlr::rng::Rng::new(0x5EED_0123);
        let ops = [
            AluOp::Eq,
            AluOp::Ne,
            AluOp::Lt,
            AluOp::Le,
            AluOp::Gt,
            AluOp::Ge,
        ];
        for _ in 0..4_000 {
            let a = rng.range_i64(-40, 40);
            let b = rng.range_i64(-40, 40);
            let (xl, xh) = {
                let l = rng.range_i64(-40, 40);
                (l.min(a), l.max(a))
            };
            let x = Interval { lo: xl, hi: xh };
            let rhs = Interval::singleton(b);
            let op = ops[rng.range_u32(0, ops.len() as u32) as usize];
            let truth = op.apply(a, b).unwrap() != 0;
            // `a` satisfies `a op b == truth` and lies in x, so the
            // refined interval must keep it.
            let refined = refine(op, x, rhs, truth)
                .unwrap_or_else(|| panic!("feasible refinement dropped: {op:?} {a} {b} {truth}"));
            assert!(
                refined.contains(a),
                "{op:?} x={x:?} rhs={b} truth={truth}: refined {refined:?} lost {a}"
            );
        }
    }
}
