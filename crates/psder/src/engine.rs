//! The execution core shared by every machine configuration.
//!
//! The engine holds the architectural state the paper's UHM exposes to its
//! two instruction units — operand stack, return-address stack, frame
//! storage, global area, register file and output — and knows how to apply
//! one micro-word (IU1) or one short instruction (IU2). It deliberately
//! performs **no fetch, no decode and no cycle accounting**: those policies
//! are what distinguish the interpreter, DTB and i-cache machines, and they
//! live in the `uhm` crate. This split keeps the semantics testable in
//! isolation and guarantees all machines compute identical results.

use dir::exec::Trap;
use dir::program::Program;

use crate::micro::{MicroOp, MicroWord, Reg, REG_COUNT};
use crate::short::{InterpMode, PopMode, PushMode, RoutineId, ShortInstr};

/// Per-procedure metadata the engine needs at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProcMeta {
    entry: u32,
    n_args: u32,
    frame_size: u32,
}

/// Effect of executing one micro-word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroEffect {
    /// Continue with the next word.
    Continue,
    /// The machine halted.
    Halt,
}

/// Effect of executing one short instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortEffect {
    /// Continue with the next short instruction.
    Continue,
    /// IU2 relinquishes control to IU1 for this semantic routine.
    CallRoutine(RoutineId),
    /// INTERP: continue at this DIR address.
    Interp(u32),
}

/// The architectural state of the universal host machine.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Operand stack (shared by IU2 pushes/pops and the routines).
    stack: Vec<i64>,
    /// DIR-level return-address stack.
    ra_stack: Vec<u32>,
    /// Frame base offsets into `slots`.
    frames: Vec<usize>,
    /// Flat storage for all live frames.
    slots: Vec<i64>,
    /// Global area.
    globals: Vec<i64>,
    /// Micro register file.
    regs: [i64; REG_COUNT],
    /// Program output.
    output: Vec<i64>,
    procs: Vec<ProcMeta>,
    max_depth: u32,
    /// When set, the defensive malformed-state checks (operand-stack
    /// underflow, slot range) take the cheap branch: a load-time verifier
    /// proved them unreachable. See [`Engine::set_trusted`].
    trusted: bool,
    /// Per-site elision flags for the DIR instruction currently being
    /// executed: the caller (the machine's dispatch loop or the PSDER
    /// interpreter) sets these from a `SiteFacts` bitmap before handing
    /// the instruction's translation to the engine. See
    /// [`Engine::set_site_elide`].
    site_elide_div: bool,
    site_elide_idx: bool,
    /// Auditor mode: elided guards are still evaluated; a firing guard
    /// increments [`Engine::site_violations`] and traps with checked
    /// semantics.
    audit: bool,
    /// Elided guards that fired while auditing (soundness divergences).
    site_violations: u64,
}

impl Engine {
    /// Creates the engine for a program, with the prelude's empty frame
    /// in place.
    pub fn new(program: &Program, max_depth: u32) -> Engine {
        Engine {
            stack: Vec::with_capacity(64),
            ra_stack: Vec::with_capacity(64),
            frames: vec![0],
            slots: Vec::new(),
            globals: vec![0; program.globals_size as usize],
            regs: [0; REG_COUNT],
            output: Vec::new(),
            procs: program
                .procs
                .iter()
                .map(|p| ProcMeta {
                    entry: p.entry,
                    n_args: p.n_args,
                    frame_size: p.frame_size,
                })
                .collect(),
            max_depth,
            trusted: false,
            site_elide_div: false,
            site_elide_idx: false,
            audit: false,
            site_violations: 0,
        }
    }

    /// Switches the engine's defensive malformed-state checks off: the
    /// caller asserts that a load-time verifier proved operand-stack
    /// underflow and out-of-range slots unreachable for the program this
    /// engine executes (the analyze crate's `Verified` witness). Dynamic
    /// traps — division by zero, array bounds, call depth — are still
    /// raised. On an unverified malformed program the trusted engine
    /// stays memory-safe but may read zeros where the checked engine
    /// would trap.
    pub fn set_trusted(&mut self, trusted: bool) {
        self.trusted = trusted;
    }

    /// Whether the defensive checks are currently disabled.
    pub fn is_trusted(&self) -> bool {
        self.trusted
    }

    /// Sets the per-site elision flags for the DIR instruction whose
    /// translation is about to execute: `div` elides the divide-by-zero
    /// guard of any ALU op in the sequence, `idx` elides the
    /// `CheckIdx` bounds guard. Callers derive both bits from a
    /// `SiteFacts` bitmap (`facts.div_ok(pc)` / `facts.idx_ok(pc)`);
    /// soundness is the fact producer's obligation. The flags are
    /// orthogonal to [`Engine::set_trusted`] and do not change the
    /// modeled cost of the translation — elided micro-ops are still
    /// dispatched, only their guard comparison is skipped.
    #[inline]
    pub fn set_site_elide(&mut self, div: bool, idx: bool) {
        self.site_elide_div = div;
        self.site_elide_idx = idx;
    }

    /// Switches auditor mode on: elided guards are still evaluated, and a
    /// firing guard is counted in [`Engine::site_violations`] before
    /// trapping exactly as checked execution would. With auditing on, the
    /// engine's behavior is bit-identical to checked execution.
    pub fn set_audit(&mut self, audit: bool) {
        self.audit = audit;
    }

    /// Number of elided guards that fired while auditing. Nonzero means
    /// the site facts were unsound for this run.
    pub fn site_violations(&self) -> u64 {
        self.site_violations
    }

    /// The program output so far.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Consumes the engine, returning the output.
    pub fn into_output(self) -> Vec<i64> {
        self.output
    }

    /// Current call depth (frames live).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Current operand-stack height (for diagnostics and tests).
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    fn reg(&self, r: Reg) -> i64 {
        self.regs[r as usize]
    }

    fn set_reg(&mut self, r: Reg, v: i64) {
        self.regs[r as usize] = v;
    }

    #[inline]
    fn pop(&mut self) -> Result<i64, Trap> {
        if self.trusted {
            // Verified programs never underflow; the default is dead code.
            Ok(self.stack.pop().unwrap_or_default())
        } else {
            self.stack
                .pop()
                .ok_or(Trap::Malformed("operand stack underflow"))
        }
    }

    fn frame_base(&self) -> Result<usize, Trap> {
        if self.trusted {
            // The prelude pseudo-frame never pops, so a frame exists.
            Ok(self.frames.last().copied().unwrap_or_default())
        } else {
            self.frames
                .last()
                .copied()
                .ok_or(Trap::Malformed("no active frame"))
        }
    }

    #[inline]
    fn frame_slot(&mut self, slot: i64) -> Result<&mut i64, Trap> {
        let base = self.frame_base()?;
        if self.trusted {
            // Verified slot operands are in-range; keep Rust's bounds
            // check but drop the trap construction.
            return Ok(&mut self.slots[base + slot as usize]);
        }
        if slot < 0 {
            return Err(Trap::Malformed("negative frame slot"));
        }
        self.slots
            .get_mut(base + slot as usize)
            .ok_or(Trap::Malformed("frame slot out of range"))
    }

    #[inline]
    fn global_slot(&mut self, slot: i64) -> Result<&mut i64, Trap> {
        if self.trusted {
            return Ok(&mut self.globals[slot as usize]);
        }
        if slot < 0 {
            return Err(Trap::Malformed("negative global slot"));
        }
        self.globals
            .get_mut(slot as usize)
            .ok_or(Trap::Malformed("global slot out of range"))
    }

    /// Applies one short-format instruction (IU2).
    ///
    /// # Errors
    ///
    /// Traps on stack underflow or invalid slots (which translator-produced
    /// code never exhibits).
    pub fn exec_short(&mut self, inst: ShortInstr) -> Result<ShortEffect, Trap> {
        match inst {
            ShortInstr::Push(mode) => {
                let v = match mode {
                    PushMode::Imm(v) => v,
                    PushMode::Local(s) => *self.frame_slot(s as i64)?,
                    PushMode::Global(s) => *self.global_slot(s as i64)?,
                };
                self.stack.push(v);
                Ok(ShortEffect::Continue)
            }
            ShortInstr::Pop(mode) => {
                let v = self.pop()?;
                match mode {
                    PopMode::Discard => {}
                    PopMode::Local(s) => *self.frame_slot(s as i64)? = v,
                    PopMode::Global(s) => *self.global_slot(s as i64)? = v,
                }
                Ok(ShortEffect::Continue)
            }
            ShortInstr::Call(id) => Ok(ShortEffect::CallRoutine(id)),
            ShortInstr::Interp(mode) => {
                let addr = match mode {
                    InterpMode::Imm(a) => a,
                    InterpMode::Stack => {
                        let v = self.pop()?;
                        u32::try_from(v).map_err(|_| Trap::Malformed("bad DIR address"))?
                    }
                };
                Ok(ShortEffect::Interp(addr))
            }
        }
    }

    /// Applies one long-format micro-word (IU1).
    ///
    /// # Errors
    ///
    /// Propagates semantic traps (division by zero, bounds failures, call
    /// depth exhaustion) and malformed-state traps.
    pub fn exec_word(&mut self, word: &MicroWord) -> Result<MicroEffect, Trap> {
        for &op in word.ops() {
            match op {
                MicroOp::Pop(r) => {
                    let v = self.pop()?;
                    self.set_reg(r, v);
                }
                MicroOp::Push(r) => self.stack.push(self.reg(r)),
                MicroOp::Alu { op, a, b, dst } => {
                    let (va, vb) = (self.reg(a), self.reg(b));
                    let v = if self.site_elide_div && op.traps_on_zero() {
                        if self.audit && vb == 0 {
                            self.site_violations += 1;
                            return Err(Trap::DivByZero);
                        }
                        op.apply_unchecked(va, vb)
                    } else {
                        op.apply(va, vb).map_err(|_| Trap::DivByZero)?
                    };
                    self.set_reg(dst, v);
                }
                MicroOp::NegOp { src, dst } => self.set_reg(dst, self.reg(src).wrapping_neg()),
                MicroOp::NotOp { src, dst } => self.set_reg(dst, (self.reg(src) == 0) as i64),
                MicroOp::SelectZero {
                    cond,
                    if_zero,
                    if_nonzero,
                    dst,
                } => {
                    let v = if self.reg(cond) == 0 {
                        self.reg(if_zero)
                    } else {
                        self.reg(if_nonzero)
                    };
                    self.set_reg(dst, v);
                }
                MicroOp::CheckIdx { idx, len } => {
                    if self.site_elide_idx && !self.audit {
                        // Guard discharged statically; the micro-op is
                        // still dispatched so modeled costs are unchanged.
                        continue;
                    }
                    let index = self.reg(idx);
                    let len = self.reg(len);
                    if index < 0 || index >= len {
                        if self.site_elide_idx {
                            self.site_violations += 1;
                        }
                        return Err(Trap::IndexOutOfBounds {
                            index,
                            len: len as u32,
                        });
                    }
                }
                MicroOp::LoadFrame { addr, dst } => {
                    let v = *self.frame_slot(self.reg(addr))?;
                    self.set_reg(dst, v);
                }
                MicroOp::StoreFrame { addr, src } => {
                    let v = self.reg(src);
                    *self.frame_slot(self.reg(addr))? = v;
                }
                MicroOp::LoadGlobal { addr, dst } => {
                    let v = *self.global_slot(self.reg(addr))?;
                    self.set_reg(dst, v);
                }
                MicroOp::StoreGlobal { addr, src } => {
                    let v = self.reg(src);
                    *self.global_slot(self.reg(addr))? = v;
                }
                MicroOp::Output(r) => self.output.push(self.reg(r)),
                MicroOp::PushRa(r) => {
                    let v = self.reg(r);
                    let addr =
                        u32::try_from(v).map_err(|_| Trap::Malformed("bad return address"))?;
                    self.ra_stack.push(addr);
                }
                MicroOp::PopRa(dst) => {
                    let v = self
                        .ra_stack
                        .pop()
                        .ok_or(Trap::Malformed("return-address stack underflow"))?;
                    self.set_reg(dst, v as i64);
                }
                MicroOp::NewFrame { proc } => {
                    if self.frames.len() as u32 > self.max_depth {
                        return Err(Trap::DepthLimit);
                    }
                    let meta = self.proc_meta(self.reg(proc))?;
                    let base = self.slots.len();
                    self.slots.resize(base + meta.frame_size as usize, 0);
                    for i in (0..meta.n_args).rev() {
                        let v = self.pop()?;
                        self.slots[base + i as usize] = v;
                    }
                    self.frames.push(base);
                }
                MicroOp::DropFrame => {
                    if self.frames.len() <= 1 {
                        return Err(Trap::Malformed("return from prelude"));
                    }
                    let base = self
                        .frames
                        .pop()
                        .ok_or(Trap::Malformed("return from prelude"))?;
                    self.slots.truncate(base);
                }
                MicroOp::EntryOf { proc, dst } => {
                    let entry = self.proc_meta(self.reg(proc))?.entry;
                    self.set_reg(dst, entry as i64);
                }
                MicroOp::HaltOp => return Ok(MicroEffect::Halt),
            }
        }
        Ok(MicroEffect::Continue)
    }

    fn proc_meta(&self, index: i64) -> Result<ProcMeta, Trap> {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.procs.get(i))
            .copied()
            .ok_or(Trap::Malformed("procedure index out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::MicroOp::*;
    use crate::micro::Reg::*;
    use crate::mword;
    use dir::AluOp;

    fn engine() -> Engine {
        let hir = hlr::compile(
            "int g;
             proc f(int a, int b) -> int begin return a + b; end
             proc main() begin write f(1, 2); end",
        )
        .unwrap();
        Engine::new(&dir::compiler::compile(&hir), 100)
    }

    #[test]
    fn push_pop_modes() {
        let mut e = engine();
        e.exec_short(ShortInstr::Push(PushMode::Imm(5))).unwrap();
        e.exec_short(ShortInstr::Pop(PopMode::Global(0))).unwrap();
        e.exec_short(ShortInstr::Push(PushMode::Global(0))).unwrap();
        assert_eq!(e.stack_len(), 1);
        e.exec_short(ShortInstr::Pop(PopMode::Discard)).unwrap();
        assert_eq!(e.stack_len(), 0);
    }

    #[test]
    fn alu_word_computes() {
        let mut e = engine();
        e.exec_short(ShortInstr::Push(PushMode::Imm(6))).unwrap();
        e.exec_short(ShortInstr::Push(PushMode::Imm(7))).unwrap();
        let effect = e.exec_word(&mword![Pop(B), Pop(A),]).unwrap();
        assert_eq!(effect, MicroEffect::Continue);
        e.exec_word(&mword![
            Alu {
                op: AluOp::Mul,
                a: A,
                b: B,
                dst: R
            },
            Push(R)
        ])
        .unwrap();
        e.exec_word(&mword![Pop(A), Output(A)]).unwrap();
        assert_eq!(e.output(), &[42]);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut e = engine();
        e.exec_short(ShortInstr::Push(PushMode::Imm(1))).unwrap();
        e.exec_short(ShortInstr::Push(PushMode::Imm(0))).unwrap();
        e.exec_word(&mword![Pop(B), Pop(A)]).unwrap();
        let r = e.exec_word(&mword![Alu {
            op: AluOp::Div,
            a: A,
            b: B,
            dst: R
        }]);
        assert_eq!(r.unwrap_err(), Trap::DivByZero);
    }

    #[test]
    fn check_idx_traps_out_of_range() {
        let mut e = engine();
        e.exec_short(ShortInstr::Push(PushMode::Imm(5))).unwrap(); // idx
        e.exec_short(ShortInstr::Push(PushMode::Imm(4))).unwrap(); // len
        e.exec_word(&mword![Pop(B), Pop(A)]).unwrap();
        let r = e.exec_word(&mword![CheckIdx { idx: A, len: B }]);
        assert_eq!(r.unwrap_err(), Trap::IndexOutOfBounds { index: 5, len: 4 });
    }

    #[test]
    fn frame_lifecycle_and_args() {
        let mut e = engine();
        // Call proc 0 (f) with args 10, 20.
        e.exec_short(ShortInstr::Push(PushMode::Imm(10))).unwrap();
        e.exec_short(ShortInstr::Push(PushMode::Imm(20))).unwrap();
        e.exec_short(ShortInstr::Push(PushMode::Imm(0))).unwrap(); // proc
        e.exec_word(&mword![Pop(A)]).unwrap();
        e.exec_word(&mword![NewFrame { proc: A }]).unwrap();
        assert_eq!(e.depth(), 2);
        // Args landed in slots 0 and 1 in order.
        e.exec_short(ShortInstr::Push(PushMode::Local(0))).unwrap();
        e.exec_short(ShortInstr::Push(PushMode::Local(1))).unwrap();
        e.exec_word(&mword![Pop(B), Pop(A)]).unwrap();
        e.exec_word(&mword![
            Alu {
                op: AluOp::Sub,
                a: A,
                b: B,
                dst: R
            },
            Output(R)
        ])
        .unwrap();
        assert_eq!(e.output(), &[-10]); // 10 - 20
        e.exec_word(&mword![DropFrame]).unwrap();
        assert_eq!(e.depth(), 1);
    }

    #[test]
    fn ra_stack_round_trips() {
        let mut e = engine();
        e.exec_short(ShortInstr::Push(PushMode::Imm(77))).unwrap();
        e.exec_word(&mword![Pop(A), PushRa(A)]).unwrap();
        e.exec_word(&mword![PopRa(R), Push(R)]).unwrap();
        let eff = e.exec_short(ShortInstr::Interp(InterpMode::Stack)).unwrap();
        assert_eq!(eff, ShortEffect::Interp(77));
    }

    #[test]
    fn call_routine_effect_defers_to_caller() {
        let mut e = engine();
        let eff = e.exec_short(ShortInstr::Call(RoutineId::WriteR)).unwrap();
        assert_eq!(eff, ShortEffect::CallRoutine(RoutineId::WriteR));
    }

    #[test]
    fn depth_limit_traps() {
        let hir = hlr::compile("proc main() begin skip; end").unwrap();
        let p = dir::compiler::compile(&hir);
        let mut e = Engine::new(&p, 1);
        e.exec_short(ShortInstr::Push(PushMode::Imm(0))).unwrap();
        e.exec_word(&mword![Pop(A)]).unwrap();
        e.exec_word(&mword![NewFrame { proc: A }]).unwrap(); // depth 2 > 1? frames.len()=1 before push -> allowed
        e.exec_short(ShortInstr::Push(PushMode::Imm(0))).unwrap();
        e.exec_word(&mword![Pop(A)]).unwrap();
        let r = e.exec_word(&mword![NewFrame { proc: A }]);
        assert_eq!(r.unwrap_err(), Trap::DepthLimit);
    }

    #[test]
    fn underflow_is_a_malformed_trap() {
        let mut e = engine();
        let r = e.exec_short(ShortInstr::Pop(PopMode::Discard));
        assert!(matches!(r.unwrap_err(), Trap::Malformed(_)));
    }

    #[test]
    fn halt_effect_surfaces() {
        let mut e = engine();
        let eff = e.exec_word(&mword![HaltOp]).unwrap();
        assert_eq!(eff, MicroEffect::Halt);
    }
}
