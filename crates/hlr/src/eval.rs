//! Reference evaluator for resolved programs.
//!
//! This is the "interpret the HLR directly" strategy from the paper's
//! Section 1.1 (one of the three ways to support a high-level language).
//! In this reproduction it serves two purposes:
//!
//! 1. It defines the *ground-truth semantics* of RAUL: every lower-level
//!    execution path (pure DIR interpreter, DTB machine, i-cache machine)
//!    must produce exactly the same output, and the test suites check this
//!    differentially on both hand-written and randomly generated programs.
//! 2. It gives the experiments a "semantic level = HLR" data point.
//!
//! Arithmetic is wrapping 64-bit; division and remainder by zero, and
//! out-of-bounds array accesses, are runtime errors (the DIR machine traps
//! identically).

use crate::ast::{BinOp, UnOp};
use crate::hir::{ArrRef, Expr, Program, Stmt, VarRef};

/// Resource limits for an evaluation, preventing runaway generated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of statements + expressions evaluated.
    pub max_steps: u64,
    /// Maximum procedure-call depth.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 50_000_000,
            max_depth: 10_000,
        }
    }
}

/// A runtime error raised by the evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array index outside `0..len`.
    IndexOutOfBounds {
        /// The offending index value.
        index: i64,
        /// The array length.
        len: u32,
    },
    /// The step limit was exhausted.
    StepLimit,
    /// The call-depth limit was exhausted.
    DepthLimit,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::DivByZero => write!(f, "division by zero"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            EvalError::StepLimit => write!(f, "step limit exceeded"),
            EvalError::DepthLimit => write!(f, "call depth limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a program with default [`Limits`], returning its output.
///
/// # Errors
///
/// See [`EvalError`].
///
/// # Example
///
/// ```
/// let p = hlr::compile("proc main() begin write 2 + 3; end")?;
/// assert_eq!(hlr::eval::run(&p).unwrap(), vec![5]);
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn run(program: &Program) -> Result<Vec<i64>, EvalError> {
    run_with_limits(program, Limits::default())
}

/// Evaluates a program under explicit [`Limits`].
///
/// # Errors
///
/// See [`EvalError`].
pub fn run_with_limits(program: &Program, limits: Limits) -> Result<Vec<i64>, EvalError> {
    let mut ev = Evaluator {
        program,
        globals: vec![0; program.globals_size as usize],
        output: Vec::new(),
        steps: 0,
        limits,
    };
    let mut no_frame = Vec::new();
    for stmt in &program.global_init {
        ev.stmt(stmt, &mut no_frame, 0)?;
    }
    ev.call(program.entry, Vec::new(), 0)?;
    Ok(ev.output)
}

/// Signals early exit from a statement sequence.
enum Flow {
    Normal,
    Return(i64),
}

struct Evaluator<'p> {
    program: &'p Program,
    globals: Vec<i64>,
    output: Vec<i64>,
    steps: u64,
    limits: Limits,
}

impl<'p> Evaluator<'p> {
    fn tick(&mut self) -> Result<(), EvalError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            Err(EvalError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn call(&mut self, proc: usize, args: Vec<i64>, depth: u32) -> Result<i64, EvalError> {
        if depth >= self.limits.max_depth {
            return Err(EvalError::DepthLimit);
        }
        let p = &self.program.procs[proc];
        let mut frame = vec![0i64; p.frame_size as usize];
        frame[..args.len()].copy_from_slice(&args);
        for stmt in &p.body {
            if let Flow::Return(v) = self.stmt(stmt, &mut frame, depth)? {
                return Ok(v);
            }
        }
        // Falling off the end of a function returns 0; of a proper
        // procedure, the value is ignored by the caller.
        Ok(0)
    }

    fn stmt(&mut self, stmt: &Stmt, frame: &mut Vec<i64>, depth: u32) -> Result<Flow, EvalError> {
        self.tick()?;
        match stmt {
            Stmt::Store { var, value } => {
                let v = self.expr(value, frame, depth)?;
                self.store(*var, frame, v);
            }
            Stmt::StoreIndexed { arr, index, value } => {
                let i = self.expr(index, frame, depth)?;
                let v = self.expr(value, frame, depth)?;
                let slot = self.element_slot(*arr, i)?;
                if arr.global {
                    self.globals[slot] = v;
                } else {
                    frame[slot] = v;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.expr(cond, frame, depth)?;
                let body = if c != 0 { then_branch } else { else_branch };
                for s in body {
                    if let Flow::Return(v) = self.stmt(s, frame, depth)? {
                        return Ok(Flow::Return(v));
                    }
                }
            }
            Stmt::While { cond, body } => {
                while self.expr(cond, frame, depth)? != 0 {
                    for s in body {
                        if let Flow::Return(v) = self.stmt(s, frame, depth)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                    self.tick()?;
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let mut i = self.expr(from, frame, depth)?;
                let hi = self.expr(to, frame, depth)?;
                while i <= hi {
                    self.store(*var, frame, i);
                    for s in body {
                        if let Flow::Return(v) = self.stmt(s, frame, depth)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                    // The DIR lowering re-reads the variable, so mutation of
                    // the induction variable inside the body is honoured.
                    i = self.load(*var, frame).wrapping_add(1);
                    self.tick()?;
                }
            }
            Stmt::Block(body) => {
                for s in body {
                    if let Flow::Return(v) = self.stmt(s, frame, depth)? {
                        return Ok(Flow::Return(v));
                    }
                }
            }
            Stmt::CallStmt { proc, args, .. } => {
                let argv = self.eval_args(args, frame, depth)?;
                self.call(*proc, argv, depth + 1)?;
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => self.expr(e, frame, depth)?,
                    None => 0,
                };
                return Ok(Flow::Return(v));
            }
            Stmt::Write(value) => {
                let v = self.expr(value, frame, depth)?;
                self.output.push(v);
            }
            Stmt::Skip => {}
        }
        Ok(Flow::Normal)
    }

    fn eval_args(
        &mut self,
        args: &[Expr],
        frame: &mut Vec<i64>,
        depth: u32,
    ) -> Result<Vec<i64>, EvalError> {
        args.iter().map(|a| self.expr(a, frame, depth)).collect()
    }

    fn load(&self, var: VarRef, frame: &[i64]) -> i64 {
        match var {
            VarRef::Global { slot } => self.globals[slot as usize],
            VarRef::Local { slot } => frame[slot as usize],
        }
    }

    fn store(&mut self, var: VarRef, frame: &mut [i64], value: i64) {
        match var {
            VarRef::Global { slot } => self.globals[slot as usize] = value,
            VarRef::Local { slot } => frame[slot as usize] = value,
        }
    }

    fn element_slot(&self, arr: ArrRef, index: i64) -> Result<usize, EvalError> {
        if index < 0 || index >= arr.len as i64 {
            return Err(EvalError::IndexOutOfBounds {
                index,
                len: arr.len,
            });
        }
        Ok((arr.base + index as u32) as usize)
    }

    fn expr(&mut self, e: &Expr, frame: &mut Vec<i64>, depth: u32) -> Result<i64, EvalError> {
        self.tick()?;
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Bool(b) => Ok(*b as i64),
            Expr::Load(var) => Ok(self.load(*var, frame)),
            Expr::LoadIndexed { arr, index } => {
                let i = self.expr(index, frame, depth)?;
                let slot = self.element_slot(*arr, i)?;
                Ok(if arr.global {
                    self.globals[slot]
                } else {
                    frame[slot]
                })
            }
            Expr::Call { proc, args } => {
                let argv = self.eval_args(args, frame, depth)?;
                self.call(*proc, argv, depth + 1)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.expr(lhs, frame, depth)?;
                let b = self.expr(rhs, frame, depth)?;
                apply_binop(*op, a, b)
            }
            Expr::Unary { op, operand } => {
                let v = self.expr(operand, frame, depth)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                })
            }
        }
    }
}

/// Applies a binary operator with RAUL semantics (wrapping arithmetic,
/// 0/1 booleans, trapping division).
///
/// This function is shared conceptually with the DIR machine's ALU; the
/// `uhm` crate's micro-ALU implements identical semantics and the test
/// suites verify the two agree.
///
/// # Errors
///
/// Returns [`EvalError::DivByZero`] for `/` or `%` with a zero divisor.
pub fn apply_binop(op: BinOp, a: i64, b: i64) -> Result<i64, EvalError> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(EvalError::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return Err(EvalError::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => ((a != 0) && (b != 0)) as i64,
        BinOp::Or => ((a != 0) || (b != 0)) as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn out(src: &str) -> Vec<i64> {
        run(&compile(src).unwrap()).unwrap()
    }

    fn err(src: &str) -> EvalError {
        run(&compile(src).unwrap()).unwrap_err()
    }

    #[test]
    fn arithmetic_and_write() {
        assert_eq!(out("proc main() begin write 2 + 3 * 4; end"), vec![14]);
        assert_eq!(out("proc main() begin write 7 / 2; end"), vec![3]);
        assert_eq!(out("proc main() begin write -7 % 3; end"), vec![-1]);
        assert_eq!(out("proc main() begin write -(3 - 5); end"), vec![2]);
    }

    #[test]
    fn booleans_written_as_bits() {
        assert_eq!(
            out("proc main() begin write true; write false; write not false; end"),
            vec![1, 0, 1]
        );
        assert_eq!(
            out("proc main() begin write 1 < 2 and 2 < 1 or true; end"),
            vec![1]
        );
    }

    #[test]
    fn while_loop_sums() {
        let src = "proc main() begin
            int i := 0; int s := 0;
            while i < 10 do begin s := s + i; i := i + 1; end
            write s;
        end";
        assert_eq!(out(src), vec![45]);
    }

    #[test]
    fn for_loop_inclusive() {
        assert_eq!(
            out("proc main() begin int i; int s := 0; for i := 1 to 4 do s := s + i; write s; end"),
            vec![10]
        );
    }

    #[test]
    fn for_loop_descending_range_skipped() {
        assert_eq!(
            out("proc main() begin int i; for i := 3 to 1 do write i; write 99; end"),
            vec![99]
        );
    }

    #[test]
    fn arrays_and_bounds() {
        let src = "proc main() begin
            int a[3]; int i;
            for i := 0 to 2 do a[i] := i * i;
            write a[0] + a[1] + a[2];
        end";
        assert_eq!(out(src), vec![5]);
        assert_eq!(
            err("proc main() begin int a[3]; write a[3]; end"),
            EvalError::IndexOutOfBounds { index: 3, len: 3 }
        );
        assert_eq!(
            err("proc main() begin int a[3]; a[-1] := 0; skip; end"),
            EvalError::IndexOutOfBounds { index: -1, len: 3 }
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(
            err("proc main() begin write 1 / 0; end"),
            EvalError::DivByZero
        );
        assert_eq!(
            err("proc main() begin write 1 % 0; end"),
            EvalError::DivByZero
        );
    }

    #[test]
    fn recursion_fibonacci() {
        let src = "proc fib(int n) -> int begin
            if n < 2 then return n;
            return fib(n - 1) + fib(n - 2);
        end
        proc main() begin write fib(10); end";
        assert_eq!(out(src), vec![55]);
    }

    #[test]
    fn globals_shared_across_calls() {
        let src = "int counter := 0;
        proc bump() begin counter := counter + 1; end
        proc main() begin call bump(); call bump(); write counter; end";
        assert_eq!(out(src), vec![2]);
    }

    #[test]
    fn function_falls_off_end_returns_zero() {
        let src = "proc f() -> int begin skip; end proc main() begin write f(); end";
        assert_eq!(out(src), vec![0]);
    }

    #[test]
    fn early_return_from_nested_loop() {
        let src = "proc find(int needle) -> int begin
            int i;
            for i := 0 to 9 do begin
                if i = needle then return i * 100;
            end
            return -1;
        end
        proc main() begin write find(4); write find(50); end";
        assert_eq!(out(src), vec![400, -1]);
    }

    #[test]
    fn wrapping_arithmetic() {
        let src = "proc main() begin
            write 9223372036854775807 + 1;
        end";
        assert_eq!(out(src), vec![i64::MIN]);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let p = compile("proc main() begin while true do skip; end").unwrap();
        let r = run_with_limits(
            &p,
            Limits {
                max_steps: 1000,
                max_depth: 10,
            },
        );
        assert_eq!(r.unwrap_err(), EvalError::StepLimit);
    }

    #[test]
    fn depth_limit_stops_infinite_recursion() {
        let p = compile("proc f() begin call f(); end proc main() begin call f(); end").unwrap();
        let r = run_with_limits(
            &p,
            Limits {
                max_steps: 1_000_000,
                max_depth: 64,
            },
        );
        assert_eq!(r.unwrap_err(), EvalError::DepthLimit);
    }

    #[test]
    fn induction_variable_mutation_is_honoured() {
        let src = "proc main() begin
            int i;
            for i := 0 to 9 do begin
                write i;
                i := i + 1;
            end
        end";
        assert_eq!(out(src), vec![0, 2, 4, 6, 8]);
    }
}
