//! The universal host machine in its three Section-7 configurations.
//!
//! All three share the [`psder::Engine`] architectural state, the semantic
//! [`RoutineLib`] and the encoded DIR image; they differ only in the fetch
//! path of DIR instructions:
//!
//! * [`Mode::Interpreter`] — the conventional UHM (T1): every DIR
//!   instruction is fetched from level 2 and decoded, every time.
//! * [`Mode::Dtb`] — the paper's proposal (T2): the INTERP instruction
//!   presents the DIR address to the DTB; hits execute the stored PSDER
//!   translation, misses trap to the dynamic translation routine.
//! * [`Mode::ICache`] — the resource-matched baseline (T3): level-2 words
//!   are cached, but every instruction is still decoded.

use dir::encode::{DecodeMode, Image, SchemeKind};
use dir::exec::Trap;
use dir::facts::SiteFacts;
use dir::program::Program;
use memsim::{Access, Geometry, SetAssocCache};
use psder::engine::{Engine, MicroEffect, ShortEffect};
use psder::{FrozenTransCache, RoutineLib, ShortInstr};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{Event, FaultKind, MissKind, NullSink, Tier, TraceSink};

use crate::config::{Budget, CostModel, Limits, RetryPolicy, BUDGET_CHECK_INTERVAL};
use crate::dtb::{Dtb, DtbConfig, Handle};
use crate::fault::{FaultConfig, FaultInjector};
use crate::metrics::{CycleBreakdown, Metrics, Report};
use crate::window::WindowSample;

/// The machine configuration to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Conventional UHM: fetch + decode every DIR instruction (T1).
    Interpreter,
    /// UHM with a dynamic translation buffer (T2).
    Dtb(DtbConfig),
    /// UHM with an instruction cache over level-2 words (T3).
    ICache {
        /// Geometry of the word cache.
        geometry: Geometry,
    },
    /// UHM with two levels of dynamic translation (§4: "it is possible
    /// that a number of levels of dynamic translation will be required"):
    /// a small, fast first-level DTB backed by a larger, slower
    /// second-level translation store. First-level misses that hit the
    /// second level *promote* the stored translation instead of
    /// re-translating.
    TwoLevelDtb {
        /// The small, fast first-level DTB (accessed at `τ_D`).
        l1: DtbConfig,
        /// The larger second-level store (accessed at `tau_dtb2`).
        l2: DtbConfig,
    },
}

/// Which shared translation artifacts a run consults (see
/// [`Machine::set_shared_translations`]). Host-side only in every
/// variant: outputs, traps and modeled metrics are identical regardless,
/// which is exactly why a supervised retry can switch variants after a
/// suspected artifact corruption without losing bit-identical results.
#[derive(Debug, Clone, Default)]
pub enum SharedArtifacts {
    /// Consult the machine's own frozen snapshot (the default).
    #[default]
    Machine,
    /// Ignore any shared snapshot: rebuild templates in the run-private
    /// cache. The supervised pool's recovery path after a poisoned
    /// artifact.
    Bypass,
    /// Consult this snapshot instead of the machine's own — the chaos
    /// plane's artifact-corruption injection point.
    Override(Arc<FrozenTransCache>),
}

/// Per-run options for [`Machine::run_opts`]: everything a supervisor
/// may vary between attempts without touching the shared machine.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// The fault plane for this run, taken verbatim (like
    /// [`Machine::run_with_faults`]): `None` runs fault-free even when
    /// the machine carries its own configuration.
    pub faults: Option<FaultConfig>,
    /// Budget override for this run (`None` = the machine's own budget).
    pub budget: Option<Budget>,
    /// Which shared translation artifacts to consult.
    pub shared: SharedArtifacts,
}

/// A universal host machine bound to one encoded program.
///
/// [`Machine::run`] takes `&self`, and every field is immutable run
/// state, so one machine behind an [`Arc`] can serve any number of
/// concurrent runs — the basis of [`crate::pool::MachinePool`].
#[derive(Debug)]
pub struct Machine {
    program: Program,
    image: Image,
    lib: RoutineLib,
    costs: CostModel,
    limits: Limits,
    trace: bool,
    window: Option<u64>,
    faults: Option<FaultConfig>,
    retry: RetryPolicy,
    /// Default execution budget (fuel / wall-clock deadline) applied to
    /// every run unless [`RunOptions::budget`] overrides it.
    budget: Budget,
    /// Shared read-only decode templates consulted before the per-run
    /// private cache. Host-side only; modeled costs are unaffected.
    shared_trans: Option<Arc<FrozenTransCache>>,
    /// Whether this machine was constructed from an
    /// [`analyze::Verified`] witness. Verified runs put the PSDER engine
    /// on its trusted fast path (no per-access error construction) —
    /// unless a fault plane is attached, which voids the static proofs.
    verified: bool,
    /// Per-site check-elision facts from the dataflow pass, carried by
    /// the witness. Consulted per instruction even when whole-image
    /// trusted mode is off; voided by a fault plane exactly like
    /// `verified`.
    facts: Option<Arc<SiteFacts>>,
}

impl Machine {
    /// Creates a machine for `program`, encoding it under `scheme` with
    /// default costs and limits.
    pub fn new(program: &Program, scheme: SchemeKind) -> Machine {
        Machine::with(program, scheme, CostModel::default(), Limits::default())
    }

    /// Creates a machine with explicit cost model and limits.
    pub fn with(
        program: &Program,
        scheme: SchemeKind,
        costs: CostModel,
        limits: Limits,
    ) -> Machine {
        Machine {
            program: program.clone(),
            image: scheme.encode(program),
            lib: RoutineLib::new(),
            costs,
            limits,
            trace: false,
            window: None,
            faults: None,
            retry: RetryPolicy::default(),
            budget: Budget::default(),
            shared_trans: None,
            verified: false,
            facts: None,
        }
    }

    /// Creates a machine from a load-time verification witness with
    /// default costs and limits (see [`Machine::load_with`]).
    pub fn load(verified: &analyze::Verified<Image>) -> Machine {
        Machine::load_with(verified, CostModel::default(), Limits::default())
    }

    /// Creates a machine from an [`analyze::Verified`] witness: the
    /// machine runs the exact image and program the verifier proved, and
    /// every run executes the PSDER engine on its trusted fast path — the
    /// per-access underflow and frame checks the static analysis
    /// discharged are skipped. Attaching a fault plane
    /// ([`Machine::set_faults`]) re-enables the checked path for the
    /// affected runs, since injected corruption voids the static proofs.
    ///
    /// ```
    /// use dir::encode::SchemeKind;
    /// use uhm::{Machine, Mode};
    ///
    /// let hir = hlr::compile("proc main() begin write 40 + 2; end")?;
    /// let prog = dir::compiler::compile(&hir);
    /// let verified = analyze::verify(&prog, SchemeKind::Huffman.encode(&prog)).unwrap();
    /// let machine = Machine::load(&verified);
    /// assert!(machine.is_verified());
    /// assert_eq!(machine.run(&Mode::Interpreter).unwrap().output, vec![42]);
    /// # Ok::<(), hlr::Error>(())
    /// ```
    pub fn load_with(
        verified: &analyze::Verified<Image>,
        costs: CostModel,
        limits: Limits,
    ) -> Machine {
        Machine {
            program: verified.program().clone(),
            image: verified.get().clone(),
            lib: RoutineLib::new(),
            costs,
            limits,
            trace: false,
            window: None,
            faults: None,
            retry: RetryPolicy::default(),
            budget: Budget::default(),
            shared_trans: None,
            verified: true,
            facts: (!verified.facts().is_empty()).then(|| Arc::new(verified.facts().clone())),
        }
    }

    /// Whether this machine was constructed from a verification witness
    /// (and thus runs the engine's trusted fast path when no fault plane
    /// is attached).
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    /// Attaches (or clears) a per-site fact bitmap for individual check
    /// elision. [`Machine::load`]/[`Machine::load_with`] install the
    /// witness's facts automatically; this override exists so a machine
    /// built without a witness can still elide proved sites — the
    /// configuration the `elide_gate` bench measures — and so the
    /// conformance auditor can swap bitmaps. Outputs and all modeled
    /// metrics are bit-identical to checked execution when the facts are
    /// sound; a fault plane voids them for the affected runs exactly as
    /// it voids whole-image trusted mode.
    pub fn set_site_facts(&mut self, facts: Option<Arc<SiteFacts>>) -> &mut Self {
        self.facts = facts;
        self
    }

    /// The per-site fact bitmap consulted by fault-free runs, if any.
    pub fn site_facts(&self) -> Option<&SiteFacts> {
        self.facts.as_deref()
    }

    /// Enables recording of the dynamic DIR-address trace in reports.
    pub fn set_trace(&mut self, trace: bool) -> &mut Self {
        self.trace = trace;
        self
    }

    /// Enables windowed time-series sampling: one
    /// [`WindowSample`] is closed every
    /// `every` dynamic instructions and collected in
    /// [`Metrics::windows`]. `None` (the default) disables sampling;
    /// `Some(0)` is treated as disabled.
    pub fn set_window(&mut self, every: Option<u64>) -> &mut Self {
        self.window = every.filter(|&n| n > 0);
        self
    }

    /// Attaches (or detaches) a fault plane: subsequent runs consult a
    /// seeded [`FaultInjector`] built from `config` and run the dispatch
    /// path with per-line integrity verification. `None` (the default)
    /// keeps the fault plane entirely out of the pipeline.
    pub fn set_faults(&mut self, config: Option<FaultConfig>) -> &mut Self {
        self.faults = config;
        self
    }

    /// The fault plane this machine carries, if any. The supervised pool
    /// reads it to re-seed fault streams across retry attempts.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.faults
    }

    /// Sets the fault-recovery policy (degradation threshold and fetch
    /// retry budget). Only consulted when a fault plane is attached.
    pub fn set_retry(&mut self, retry: RetryPolicy) -> &mut Self {
        self.retry = retry;
        self
    }

    /// Sets the default execution budget (fuel and/or wall-clock
    /// deadline) for subsequent runs. The unlimited default keeps the
    /// amortized budget check inert. Per-run overrides go through
    /// [`RunOptions::budget`].
    pub fn set_budget(&mut self, budget: Budget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Selects the host decoder implementation (tree-walking reference or
    /// table-driven fast plane). Outputs, traps and every *modeled*
    /// metric are identical either way; only host wall-clock differs.
    pub fn set_decoder(&mut self, mode: DecodeMode) -> &mut Self {
        self.image.set_decode_mode(mode);
        self
    }

    /// Attaches (or detaches) a frozen, thread-shareable snapshot of
    /// DIR→PSDER decode templates. Runs consult the snapshot before the
    /// per-run private [`psder::TransCache`], so tenants of a
    /// [`MachinePool`](crate::pool::MachinePool) reuse one table instead
    /// of rebuilding identical templates per worker. Purely host-side:
    /// outputs, traps and every *modeled* metric are unchanged.
    pub fn set_shared_translations(&mut self, shared: Option<Arc<FrozenTransCache>>) -> &mut Self {
        self.shared_trans = shared;
        self
    }

    /// Pre-translates this machine's whole program into a frozen template
    /// snapshot and attaches it (see [`Machine::set_shared_translations`]).
    ///
    /// ```
    /// use dir::encode::SchemeKind;
    /// use uhm::{Machine, Mode};
    ///
    /// let hir = hlr::compile("proc main() begin int i; for i := 0 to 9 do write i; end")?;
    /// let prog = dir::compiler::compile(&hir);
    /// let mut machine = Machine::new(&prog, SchemeKind::Huffman);
    /// let fresh = machine.run(&Mode::Interpreter).unwrap();
    /// machine.freeze_translations();
    /// let shared = machine.run(&Mode::Interpreter).unwrap();
    /// // Host-side only: output and every modeled metric are unchanged.
    /// assert_eq!(fresh.output, shared.output);
    /// assert_eq!(fresh.metrics, shared.metrics);
    /// # Ok::<(), hlr::Error>(())
    /// ```
    ///
    /// Both the pool ([`crate::pool::MachinePool`]) and the service
    /// front-end ([`crate::service::Service`]) expect frozen machines,
    /// so one read-only snapshot serves every worker and request.
    pub fn freeze_translations(&mut self) -> &mut Self {
        let frozen = FrozenTransCache::for_program(&self.program.code);
        self.set_shared_translations(Some(Arc::new(frozen)))
    }

    /// The DIR program this machine executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The encoded image this machine executes from.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Runs the program under `mode` with tracing compiled out.
    ///
    /// `run` takes `&self`, so one machine can serve many runs — or many
    /// threads:
    ///
    /// ```
    /// use dir::encode::SchemeKind;
    /// use uhm::{DtbConfig, Machine, Mode};
    ///
    /// let hir = hlr::compile("proc main() begin write 2 + 3; end")?;
    /// let prog = dir::compiler::compile(&hir);
    /// let machine = Machine::new(&prog, SchemeKind::Packed);
    /// let t1 = machine.run(&Mode::Interpreter).unwrap();
    /// let t2 = machine.run(&Mode::Dtb(DtbConfig::with_capacity(16))).unwrap();
    /// assert_eq!(t1.output, vec![5]);
    /// assert_eq!(t1.output, t2.output); // all modes are semantically identical
    /// # Ok::<(), hlr::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the same [`Trap`]s as [`dir::exec::run`]; all modes trap
    /// identically on identical programs.
    pub fn run(&self, mode: &Mode) -> Result<Report, Trap> {
        self.run_with(mode, &mut NullSink)
    }

    /// Runs the program under `mode`, emitting typed trace events into
    /// `sink`. With [`NullSink`] (what [`Machine::run`] passes) the
    /// emission sites monomorphize to nothing, so tracing has no cost
    /// when disabled. Enabled sinks whose
    /// [`CLASSIFY_MISSES`](TraceSink::CLASSIFY_MISSES) is `true` (the
    /// default — diagnostic sinks like [`telemetry::RingSink`])
    /// additionally switch on the DTB miss taxonomy, so `DtbMiss` events
    /// carry a cold/capacity/conflict classification; profiling sinks
    /// leave it off so their runs' metrics stay bit-identical to an
    /// untraced run.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_with<S: TraceSink>(&self, mode: &Mode, sink: &mut S) -> Result<Report, Trap> {
        self.run_with_faults(mode, sink, self.faults)
    }

    /// Runs like [`Machine::run_with`] but with `faults` overriding the
    /// machine's own fault configuration for this run only. This is how a
    /// [`MachinePool`](crate::pool::MachinePool) gives every tenant a
    /// distinct deterministic fault seed while tenants share one machine
    /// behind an [`Arc`].
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_with_faults<S: TraceSink>(
        &self,
        mode: &Mode,
        sink: &mut S,
        faults: Option<FaultConfig>,
    ) -> Result<Report, Trap> {
        self.run_opts(
            mode,
            sink,
            RunOptions {
                faults,
                ..RunOptions::default()
            },
        )
    }

    /// The full supervised-run entry point: like
    /// [`Machine::run_with_faults`], plus a per-run budget override and
    /// control over which shared translation artifacts the run consults.
    /// This is what the resilience layer drives — every retry attempt of
    /// a pool tenant is one `run_opts` call with attempt-specific
    /// options, while the machine itself stays shared and immutable.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`], plus
    /// [`Trap::FuelExhausted`]/[`Trap::DeadlineExceeded`] when the
    /// effective budget fires.
    pub fn run_opts<S: TraceSink>(
        &self,
        mode: &Mode,
        sink: &mut S,
        opts: RunOptions,
    ) -> Result<Report, Trap> {
        let faults = opts.faults;
        let budget = opts.budget.unwrap_or(self.budget);
        let shared = match opts.shared {
            SharedArtifacts::Machine => self.shared_trans.clone(),
            SharedArtifacts::Bypass => None,
            SharedArtifacts::Override(snapshot) => Some(snapshot),
        };
        let mut dtb = match mode {
            Mode::Dtb(cfg) => Some(Dtb::new(*cfg)),
            Mode::TwoLevelDtb { l1, .. } => Some(Dtb::new(*l1)),
            _ => None,
        };
        let mut dtb2 = match mode {
            Mode::TwoLevelDtb { l2, .. } => Some(Dtb::new(*l2)),
            _ => None,
        };
        // The shadow three-C classifier is observable (it fills the
        // cold/capacity/conflict taxonomy in `DtbStats`) and costs a
        // probe per lookup, so profiling sinks opt out via
        // `CLASSIFY_MISSES` to keep profiled metrics bit-identical to an
        // untraced run.
        if S::ENABLED && S::CLASSIFY_MISSES {
            if let Some(d) = dtb.as_mut() {
                d.enable_classification();
            }
            if let Some(d) = dtb2.as_mut() {
                d.enable_classification();
            }
        }
        // The trusted fast path requires the static proofs to hold for the
        // whole run: a fault plane can corrupt the level-2 stream or DTB
        // lines into sequences the verifier never saw, so any injector —
        // even the machine default being overridden here — keeps the
        // checked path.
        let mut engine = Engine::new(&self.program, self.limits.max_depth);
        engine.set_trusted(self.verified && faults.is_none());
        // Per-site facts are voided by an injector for the same reason as
        // whole-image trust: corruption can rewrite the very sites the
        // dataflow pass proved.
        let site_facts = if faults.is_none() {
            self.facts.clone()
        } else {
            None
        };
        let mut run = Run {
            machine: self,
            engine,
            site_facts,
            metrics: Metrics {
                trace: self.trace.then(Vec::new),
                ..Metrics::default()
            },
            dtb,
            dtb2,
            icache: match mode {
                Mode::ICache { geometry } => Some(SetAssocCache::new(*geometry)),
                _ => None,
            },
            sink,
            window: self.window.map(WindowState::new),
            faults: faults.map(FaultInjector::new),
            // A mutable level-2 copy of the encoded stream, so injected
            // DIR corruption persists without touching the pristine
            // image shared across runs.
            dir_bytes: faults.as_ref().map(|_| self.image.bytes.clone()),
            degraded: HashSet::new(),
            fail_counts: HashMap::new(),
            trans: psder::TransCache::new(),
            shared,
            fuel: budget.fuel,
            deadline: budget
                .deadline_ns
                .map(|ns| Instant::now() + std::time::Duration::from_nanos(ns)),
            tier: Tier::Interp,
            cycle_total: 0,
        };
        run.execute(mode)?;
        let mut metrics = run.metrics;
        metrics.faults = run.faults.as_ref().map(FaultInjector::stats);
        metrics.dtb = run.dtb.as_ref().map(super::dtb::Dtb::stats);
        metrics.dtb2 = run.dtb2.as_ref().map(super::dtb::Dtb::stats);
        metrics.icache = run.icache.as_ref().map(memsim::SetAssocCache::stats);
        if let Some(mut w) = run.window {
            w.close(&metrics, run.dtb.as_ref());
            metrics.windows = Some(w.samples);
        }
        Ok(Report {
            output: run.engine.into_output(),
            metrics,
        })
    }
}

/// In-flight state of the windowed sampler: baselines at the current
/// window's start plus the samples closed so far.
struct WindowState {
    every: u64,
    start: u64,
    base_cycles: CycleBreakdown,
    base_hits: u64,
    base_misses: u64,
    samples: Vec<WindowSample>,
}

impl WindowState {
    fn new(every: u64) -> WindowState {
        WindowState {
            every,
            start: 0,
            base_cycles: CycleBreakdown::default(),
            base_hits: 0,
            base_misses: 0,
            samples: Vec::new(),
        }
    }

    /// Closes the current window if `metrics` has advanced past it (or
    /// unconditionally at end of run for the final partial window).
    fn close(&mut self, metrics: &Metrics, dtb: Option<&Dtb>) {
        if metrics.instructions == self.start {
            return; // empty window: nothing to record
        }
        let (hits, misses) = dtb.map_or((0, 0), |d| (d.stats().hits, d.stats().misses));
        self.samples.push(WindowSample {
            start: self.start,
            instructions: metrics.instructions - self.start,
            dtb_hits: hits - self.base_hits,
            dtb_misses: misses - self.base_misses,
            occupancy: dtb.map_or(0, Dtb::occupancy),
            cycles: metrics.cycles.since(&self.base_cycles),
        });
        self.start = metrics.instructions;
        self.base_cycles = metrics.cycles;
        self.base_hits = hits;
        self.base_misses = misses;
    }
}

struct Run<'m, S: TraceSink> {
    machine: &'m Machine,
    engine: Engine,
    /// Per-site elision bitmap for this run (`None` when a fault plane is
    /// attached). Consulted once per retired DIR instruction.
    site_facts: Option<Arc<SiteFacts>>,
    metrics: Metrics,
    dtb: Option<Dtb>,
    dtb2: Option<Dtb>,
    icache: Option<SetAssocCache<()>>,
    sink: &'m mut S,
    window: Option<WindowState>,
    faults: Option<FaultInjector>,
    /// Mutable level-2 copy of the encoded DIR stream (fault plane only).
    dir_bytes: Option<Vec<u8>>,
    /// DIR addresses degraded to pure interpretation after repeated
    /// integrity failures.
    degraded: HashSet<u32>,
    /// Consecutive integrity failures per DIR address, reset on a clean
    /// dispatch.
    fail_counts: HashMap<u32, u32>,
    /// Memoized DIR→PSDER templates. Purely host-side: the modeled
    /// generation/store cycles are charged per translation event exactly
    /// as before, but repeated events reuse one shared sequence instead
    /// of rebuilding it.
    trans: psder::TransCache,
    /// The shared template snapshot this run consults (already resolved
    /// from [`RunOptions::shared`] against the machine's own snapshot).
    shared: Option<Arc<FrozenTransCache>>,
    /// Modeled-cycle allowance, compared against the run's cycle total
    /// every [`BUDGET_CHECK_INTERVAL`] retires.
    fuel: Option<u64>,
    /// Absolute wall-clock deadline, checked on the same amortized
    /// schedule as `fuel`.
    deadline: Option<Instant>,
    /// Which tier executed the instruction currently in flight. Only
    /// maintained when the sink is enabled; consumed by the `Retire`
    /// event at the end of each step.
    tier: Tier,
    /// Running copy of `metrics.cycles.total()`, maintained by
    /// [`Run::charge`] only when the sink is enabled, so the per-retire
    /// cycle delta is a register subtraction instead of re-summing the
    /// whole [`CycleBreakdown`] on every instruction.
    cycle_total: u64,
}

/// Where one DIR instruction's execution leads.
enum Next {
    Goto(u32),
    Halt,
}

/// Outcome of the dispatch-time integrity check on a DTB hit.
enum LineState {
    /// Checksum verified (or no fault plane attached): dispatch.
    Clean(Handle),
    /// Checksum failed: line invalidated, caller retranslates.
    Recovered,
    /// Failure count crossed the policy threshold: the instruction was
    /// run interpretively and the address is degraded from here on.
    Degraded(Next),
}

/// The single checked accessor replacing the old `expect("dtb mode")`
/// unwraps: a [`Mode`]/buffer mismatch reports
/// [`Trap::MisconfiguredMode`] instead of panicking.
fn require<T>(buffer: Option<T>, what: &'static str) -> Result<T, Trap> {
    buffer.ok_or(Trap::MisconfiguredMode(what))
}

/// What [`require`] reports for a missing first-level DTB.
const NO_DTB: &str = "DTB mode without a first-level buffer";
/// What [`require`] reports for a missing second-level store.
const NO_DTB2: &str = "two-level mode without a second-level store";

impl<'m, S: TraceSink> Run<'m, S> {
    fn costs(&self) -> &CostModel {
        &self.machine.costs
    }

    /// Charges `v` modeled cycles to one [`CycleBreakdown`] component.
    /// Every cycle-cost site routes through here so `cycle_total` stays
    /// an exact running copy of `metrics.cycles.total()` whenever the
    /// sink is enabled — the basis of the O(1) retire-delta computation.
    #[inline]
    fn charge(&mut self, component: impl FnOnce(&mut CycleBreakdown) -> &mut u64, v: u64) {
        *component(&mut self.metrics.cycles) += v;
        if S::ENABLED {
            self.cycle_total += v;
        }
    }

    /// The host-side template for `(inst, next)`: the run's resolved
    /// shared snapshot when it covers the pair, the run's private memo
    /// cache otherwise. Identical sequences either way — the split only
    /// decides which allocation is reused.
    fn translated(&mut self, inst: dir::Inst, next: u32) -> Arc<[ShortInstr]> {
        if let Some(shared) = self.shared.as_deref() {
            if let Some(sequence) = shared.get(inst, next) {
                return sequence;
            }
        }
        self.trans.translate(inst, next)
    }

    /// Pure interpretation of one DIR instruction: fetch, decode and run
    /// the translation inline, bypassing every translation buffer. The
    /// interpreter mode's step, and the fallback degraded addresses take.
    fn interp_one(&mut self, pc: u32) -> Result<Next, Trap> {
        if S::ENABLED {
            self.tier = Tier::Interp;
        }
        let inst = self.fetch_decode(pc)?;
        let sequence = self.translated(inst, pc + 1);
        self.run_inline(&sequence)
    }

    /// Rolls the per-instruction DTB corruption dice: overwrite one word
    /// of a random resident line and/or poison a random tag, leaving
    /// guard checksums stale so the dispatch path detects the damage.
    fn inject_dtb_faults(&mut self) {
        let Some(inj) = self.faults.as_mut() else {
            return;
        };
        let step = self.metrics.instructions;
        let word_roll = inj.roll(FaultKind::DtbWord, step);
        let tag_roll = inj.roll(FaultKind::DtbTag, step);
        if !word_roll && !tag_roll {
            return;
        }
        let Some(dtb) = self.dtb.as_mut() else {
            return;
        };
        if word_roll {
            let way = inj.pick(dtb.ways_total() as u64) as usize;
            let index = inj.pick(u64::from(u32::MAX));
            if let Some(addr) = dtb.corrupt_word_in(way, index, |w| inj.corrupt_word(w)) {
                inj.note(FaultKind::DtbWord);
                if S::ENABLED {
                    self.sink.emit(Event::FaultInjected {
                        kind: FaultKind::DtbWord,
                        addr,
                    });
                }
            }
        }
        if tag_roll {
            let way = inj.pick(dtb.ways_total() as u64) as usize;
            let bit = inj.pick(32) as u32;
            if let Some(addr) = dtb.poison_tag(way, bit) {
                inj.note(FaultKind::DtbTag);
                if S::ENABLED {
                    self.sink.emit(Event::FaultInjected {
                        kind: FaultKind::DtbTag,
                        addr,
                    });
                }
            }
        }
    }

    /// Dispatch-time integrity check of a first-level DTB hit. With no
    /// fault plane attached the check is skipped entirely, keeping the
    /// zero-fault pipeline identical to the pre-fault machine. On a
    /// checksum failure the line is invalidated and counted as a
    /// `recovery`-class miss; when the consecutive-failure count at this
    /// address crosses the retry policy's threshold, the address
    /// degrades to pure interpretation for the rest of the run.
    fn verify_hit(&mut self, pc: u32, handle: Handle) -> Result<LineState, Trap> {
        if self.faults.is_none() {
            return Ok(LineState::Clean(handle));
        }
        if require(self.dtb.as_ref(), NO_DTB)?.verify(handle) {
            self.fail_counts.remove(&pc);
            return Ok(LineState::Clean(handle));
        }
        require(self.dtb.as_mut(), NO_DTB)?.invalidate(handle);
        self.metrics.recoveries += 1;
        if S::ENABLED {
            self.sink.emit(Event::DtbMiss {
                addr: pc,
                kind: MissKind::Recovery,
            });
        }
        let failures = self.fail_counts.entry(pc).or_insert(0);
        *failures += 1;
        if *failures >= self.machine.retry.degrade_after.max(1) {
            self.fail_counts.remove(&pc);
            self.degraded.insert(pc);
            self.metrics.degraded_instructions += 1;
            if S::ENABLED {
                self.sink.emit(Event::Degraded { addr: pc });
            }
            return Ok(LineState::Degraded(self.interp_one(pc)?));
        }
        Ok(LineState::Recovered)
    }

    /// Fetches and decodes the DIR instruction at `pc` from level 2 (or
    /// through the i-cache when present), charging fetch and decode cycles.
    ///
    /// Under the fault plane, a fetch may be dropped (retried against the
    /// policy budget, charging full fetch traffic each time) or have one
    /// bit of its encoded span flipped in the machine's level-2 copy; a
    /// stream that no longer decodes is terminal ([`Trap::CorruptDir`]),
    /// because the static DIR is the ground truth nothing can restore.
    fn fetch_decode(&mut self, pc: u32) -> Result<dir::Inst, Trap> {
        let word_bits = self.costs().word_bits;
        let (tau_d, t2) = (self.costs().mem.tau_d, self.costs().mem.t2);
        let max_retries = self.machine.retry.max_fetch_retries;
        let words = self.machine.image.fetch_words(pc, word_bits);
        let step = self.metrics.instructions;
        if self.faults.is_some() {
            let mut dropped = 0u32;
            while let Some(inj) = self.faults.as_mut() {
                if dropped > max_retries || !inj.roll(FaultKind::FetchDrop, step) {
                    break;
                }
                inj.note(FaultKind::FetchDrop);
                dropped += 1;
                self.metrics.fetch_retries += 1;
                self.charge(|c| &mut c.fetch_l2, words as u64 * t2);
                if S::ENABLED {
                    self.sink.emit(Event::FaultInjected {
                        kind: FaultKind::FetchDrop,
                        addr: pc,
                    });
                }
            }
            if dropped > max_retries {
                return Err(Trap::FetchFailed { addr: pc });
            }
            let inj = self.faults.as_mut().expect("checked above");
            if inj.roll(FaultKind::DirBit, step) {
                let image = &self.machine.image;
                let start = image.offsets[pc as usize];
                let end = image
                    .offsets
                    .get(pc as usize + 1)
                    .copied()
                    .unwrap_or(image.bit_len)
                    .max(start + 1);
                let bit = start + inj.pick(end - start);
                if let Some(bytes) = self.dir_bytes.as_mut() {
                    bytes[(bit / 8) as usize] ^= 0x80 >> (bit % 8);
                    inj.note(FaultKind::DirBit);
                    if S::ENABLED {
                        self.sink.emit(Event::FaultInjected {
                            kind: FaultKind::DirBit,
                            addr: pc,
                        });
                    }
                }
            }
        }
        let image = &self.machine.image;
        self.metrics.l2_words += words as u64;
        match &mut self.icache {
            Some(cache) => {
                // Cache individual level-2 words of the instruction stream.
                let first = image.offsets[pc as usize] / word_bits as u64;
                let mut fetch = 0u64;
                for w in 0..words as u64 {
                    fetch += match cache.access(first + w) {
                        Access::Hit => tau_d,
                        Access::Miss { .. } => t2,
                    };
                }
                self.charge(|c| &mut c.fetch_cache, fetch);
            }
            None => {
                self.charge(|c| &mut c.fetch_l2, words as u64 * t2);
            }
        }
        if S::ENABLED {
            self.sink.emit(Event::L2Fetch { addr: pc, words });
        }
        let decoded = match self.dir_bytes.as_deref() {
            Some(bytes) => image.decode_from(bytes, pc),
            None => image.decode(pc),
        }
        .map_err(|_| Trap::CorruptDir { addr: pc })?;
        self.metrics.decoded += 1;
        let decode_cost = self.costs().scaled_decode(decoded.cost as u64) * self.costs().mem.t1;
        self.charge(|c| &mut c.decode, decode_cost);
        if S::ENABLED {
            self.sink.emit(Event::Decode {
                addr: pc,
                cost: decoded.cost,
                bits: decoded.bits as u32,
            });
        }
        Ok(decoded.inst)
    }

    /// Executes one short instruction, running any called routine to
    /// completion on IU1. Returns the INTERP target if this word ended the
    /// sequence.
    fn exec_short(&mut self, word: ShortInstr) -> Result<Option<Next>, Trap> {
        match self.engine.exec_short(word)? {
            ShortEffect::Continue => Ok(None),
            ShortEffect::CallRoutine(id) => {
                if S::ENABLED {
                    self.sink.emit(Event::RoutineEnter {
                        id: id.index() as u16,
                    });
                }
                let mut words: u32 = 0;
                for w in self.machine.lib.words(id) {
                    words += 1;
                    self.metrics.routine_words += 1;
                    self.charge(|c| &mut c.semantic, self.costs().mem.t1);
                    if self.engine.exec_word(w)? == MicroEffect::Halt {
                        if S::ENABLED {
                            self.sink.emit(Event::RoutineExit {
                                id: id.index() as u16,
                                words,
                            });
                        }
                        return Ok(Some(Next::Halt));
                    }
                }
                if S::ENABLED {
                    self.sink.emit(Event::RoutineExit {
                        id: id.index() as u16,
                        words,
                    });
                }
                Ok(None)
            }
            ShortEffect::Interp(addr) => Ok(Some(Next::Goto(addr))),
        }
    }

    /// Runs a translation that is *not* resident in the DTB (interpreter
    /// and i-cache modes, or an uncacheable overflow): IU2 steering words
    /// execute from level-1 interpreter code at `t1` each.
    fn run_inline(&mut self, sequence: &[ShortInstr]) -> Result<Next, Trap> {
        if S::ENABLED {
            self.tier = Tier::Interp;
        }
        for &word in sequence {
            self.metrics.short_words += 1;
            self.charge(|c| &mut c.steering, self.costs().mem.t1);
            if let Some(next) = self.exec_short(word)? {
                return Ok(next);
            }
        }
        Err(Trap::Malformed("sequence ended without INTERP"))
    }

    fn execute(&mut self, mode: &Mode) -> Result<(), Trap> {
        let mut pc: u32 = 0;
        let mut steps: u64 = 0;
        // Carried across iterations, with `cycle_total` maintained by
        // `charge`, so the retire delta costs a register subtraction —
        // the deltas still partition the run's cycle total exactly.
        let mut cycles_before = if S::ENABLED { self.cycle_total } else { 0 };
        loop {
            steps += 1;
            if steps > self.machine.limits.max_steps {
                return Err(Trap::StepLimit);
            }
            // Amortized budget check: one mask test per instruction, the
            // real work only every BUDGET_CHECK_INTERVAL retires — and
            // only when a bound is actually set. Fuel is modeled cycles,
            // so fuel preemption fires at a deterministic instruction;
            // the deadline reads the host clock and is availability-only.
            if steps & (BUDGET_CHECK_INTERVAL - 1) == 0 {
                if let Some(fuel) = self.fuel {
                    if self.metrics.cycles.total() > fuel {
                        return Err(Trap::FuelExhausted);
                    }
                }
                if let Some(deadline) = self.deadline {
                    if Instant::now() > deadline {
                        return Err(Trap::DeadlineExceeded);
                    }
                }
            }
            self.metrics.instructions += 1;
            if let Some(t) = self.metrics.trace.as_mut() {
                t.push(pc);
            }
            if pc as usize >= self.machine.image.len() {
                return Err(Trap::Malformed("pc out of range"));
            }
            if let Some(f) = self.site_facts.as_deref() {
                self.engine.set_site_elide(f.div_ok(pc), f.idx_ok(pc));
            }

            let next = match mode {
                Mode::Interpreter | Mode::ICache { .. } => self.interp_one(pc)?,
                Mode::Dtb(_) => self.step_dtb(pc)?,
                Mode::TwoLevelDtb { .. } => self.step_two_level(pc)?,
            };
            if S::ENABLED {
                // Emitted after every sub-event this instruction caused,
                // carrying its full modeled cost: retire cycles sum to
                // the run's cycle total exactly.
                debug_assert_eq!(
                    self.cycle_total,
                    self.metrics.cycles.total(),
                    "a cycle-cost site bypassed Run::charge"
                );
                let total = self.cycle_total;
                let delta = total - cycles_before;
                cycles_before = total;
                self.sink.emit(Event::Retire {
                    addr: pc,
                    tier: self.tier,
                    cycles: delta.min(u64::from(u32::MAX)) as u32,
                });
            }
            if let Some(w) = self.window.as_mut() {
                if self.metrics.instructions - w.start >= w.every {
                    w.close(&self.metrics, self.dtb.as_ref());
                }
            }
            match next {
                Next::Goto(addr) => pc = addr,
                Next::Halt => return Ok(()),
            }
        }
    }

    /// One DIR instruction under the DTB: the INTERP flow of Figure 4,
    /// with the fault plane's verify/recover/degrade wrapped around the
    /// hit path.
    fn step_dtb(&mut self, pc: u32) -> Result<Next, Trap> {
        // Degraded region: pure interpretation, never touching the DTB.
        if self.degraded.contains(&pc) {
            self.metrics.degraded_instructions += 1;
            return self.interp_one(pc);
        }
        self.inject_dtb_faults();
        // INTERP presents the DIR address to the associative address array.
        self.charge(|c| &mut c.lookup, self.costs().mem.tau_d);
        let looked = require(self.dtb.as_mut(), NO_DTB)?.lookup(pc);
        let mut recovered = false;
        let hit = match looked {
            Some(h) => match self.verify_hit(pc, h)? {
                LineState::Clean(h) => Some(h),
                LineState::Recovered => {
                    recovered = true;
                    None
                }
                LineState::Degraded(next) => return Ok(next),
            },
            None => None,
        };
        let handle = match hit {
            Some(h) => {
                if S::ENABLED {
                    self.sink.emit(Event::DtbHit { addr: pc });
                }
                h
            }
            None => {
                // A recovery already emitted its own miss event.
                if S::ENABLED && !recovered {
                    let kind = require(self.dtb.as_ref(), NO_DTB)?
                        .last_miss_kind()
                        .unwrap_or(MissKind::Cold);
                    self.sink.emit(Event::DtbMiss { addr: pc, kind });
                }
                // Miss: trap to the dynamic translation routine (via
                // DTRPOINT): fetch the DIR instruction, decode it, generate
                // the PSDER translation, store it at the location chosen by
                // the replacement logic.
                let d0 = self.metrics.cycles.decode;
                let inst = self.fetch_decode(pc)?;
                let sequence = self.translated(inst, pc + 1);
                let gen = sequence.len() as u64 * self.costs().gen_per_word;
                let store = sequence.len() as u64 * self.costs().store_per_word;
                self.charge(|c| &mut c.generate, gen * self.costs().mem.t1);
                self.charge(|c| &mut c.store, store * self.costs().mem.t1);
                if S::ENABLED {
                    self.sink.emit(Event::Translate {
                        addr: pc,
                        decode_cycles: self.metrics.cycles.decode - d0,
                        generate_cycles: (gen + store) * self.costs().mem.t1,
                    });
                }
                let dtb = require(self.dtb.as_mut(), NO_DTB)?;
                match dtb.fill(pc, &sequence) {
                    Some(h) => {
                        if S::ENABLED {
                            if let Some(victim) = dtb.last_evicted() {
                                self.sink.emit(Event::Evict { addr: pc, victim });
                            }
                            let occupancy = dtb.occupancy() as u32;
                            self.sink.emit(Event::DtbFill {
                                addr: pc,
                                occupancy,
                            });
                        }
                        h
                    }
                    None => {
                        // Overflow area exhausted: execute without caching.
                        return self.run_inline(&sequence);
                    }
                }
            }
        };
        // Execute the PSDER translation out of the buffer array, one short
        // word per τ_D.
        if S::ENABLED {
            self.tier = self.dispatch_tier();
        }
        let len = require(self.dtb.as_ref(), NO_DTB)?.len(handle);
        for i in 0..len {
            let word = require(self.dtb.as_ref(), NO_DTB)?.word(handle, i);
            self.metrics.short_words += 1;
            self.charge(|c| &mut c.fetch_dtb, self.costs().mem.tau_d);
            if let Some(next) = self.exec_short(word)? {
                return Ok(next);
            }
        }
        Err(Trap::Malformed("translation ended without INTERP"))
    }

    /// One DIR instruction under two-level dynamic translation.
    ///
    /// L1 miss + L2 hit promotes the translation (a copy, cheaper than
    /// re-translating); L1 and L2 miss runs the full dynamic translation
    /// routine and fills both levels.
    fn step_two_level(&mut self, pc: u32) -> Result<Next, Trap> {
        // Degraded region: pure interpretation, never touching either level.
        if self.degraded.contains(&pc) {
            self.metrics.degraded_instructions += 1;
            return self.interp_one(pc);
        }
        self.inject_dtb_faults();
        let (tau_d, tau2) = (self.costs().mem.tau_d, self.costs().tau_dtb2);
        self.charge(|c| &mut c.lookup, tau_d);
        let looked = require(self.dtb.as_mut(), NO_DTB)?.lookup(pc);
        let mut recovered = false;
        let l1_handle = match looked {
            Some(h) => match self.verify_hit(pc, h)? {
                LineState::Clean(h) => Some(h),
                LineState::Recovered => {
                    // Fall to the miss path: a second-level hit repairs the
                    // line by promotion, cheaper than retranslating.
                    recovered = true;
                    None
                }
                LineState::Degraded(next) => return Ok(next),
            },
            None => None,
        };
        let handle = match l1_handle {
            Some(h) => {
                if S::ENABLED {
                    self.sink.emit(Event::DtbHit { addr: pc });
                }
                h
            }
            None => {
                // A recovery already emitted its own miss event.
                if S::ENABLED && !recovered {
                    let kind = require(self.dtb.as_ref(), NO_DTB)?
                        .last_miss_kind()
                        .unwrap_or(MissKind::Cold);
                    self.sink.emit(Event::DtbMiss { addr: pc, kind });
                }
                // Probe the second-level store.
                self.charge(|c| &mut c.lookup2, tau2);
                let l2_hit = require(self.dtb2.as_mut(), NO_DTB2)?.lookup(pc);
                let sequence: Arc<[ShortInstr]> = match l2_hit {
                    Some(h2) => {
                        // Promote: read each word from L2 (tau_dtb2) and
                        // store it into L1 (store_per_word each).
                        let dtb2 = require(self.dtb2.as_ref(), NO_DTB2)?;
                        let len = dtb2.len(h2);
                        let words: Vec<ShortInstr> = (0..len).map(|i| dtb2.word(h2, i)).collect();
                        let promote_cost = len as u64 * (tau2 + self.costs().store_per_word);
                        self.charge(|c| &mut c.promote, promote_cost);
                        if S::ENABLED {
                            self.sink.emit(Event::Promote {
                                addr: pc,
                                words: len,
                            });
                        }
                        words.into()
                    }
                    None => {
                        // Full translation, then fill L2 as well.
                        let d0 = self.metrics.cycles.decode;
                        let inst = self.fetch_decode(pc)?;
                        let sequence = self.translated(inst, pc + 1);
                        let gen = sequence.len() as u64 * self.costs().gen_per_word;
                        let store = sequence.len() as u64 * self.costs().store_per_word * 2; // stored at both levels
                        self.charge(|c| &mut c.generate, gen * self.costs().mem.t1);
                        self.charge(|c| &mut c.store, store * self.costs().mem.t1);
                        if S::ENABLED {
                            self.sink.emit(Event::Translate {
                                addr: pc,
                                decode_cycles: self.metrics.cycles.decode - d0,
                                generate_cycles: (gen + store) * self.costs().mem.t1,
                            });
                        }
                        require(self.dtb2.as_mut(), NO_DTB2)?.fill(pc, &sequence);
                        sequence
                    }
                };
                let dtb = require(self.dtb.as_mut(), NO_DTB)?;
                match dtb.fill(pc, &sequence) {
                    Some(h) => {
                        if S::ENABLED {
                            if let Some(victim) = dtb.last_evicted() {
                                self.sink.emit(Event::Evict { addr: pc, victim });
                            }
                            let occupancy = dtb.occupancy() as u32;
                            self.sink.emit(Event::DtbFill {
                                addr: pc,
                                occupancy,
                            });
                        }
                        h
                    }
                    None => return self.run_inline(&sequence),
                }
            }
        };
        if S::ENABLED {
            self.tier = self.dispatch_tier();
        }
        let len = require(self.dtb.as_ref(), NO_DTB)?.len(handle);
        for i in 0..len {
            let word = require(self.dtb.as_ref(), NO_DTB)?.word(handle, i);
            self.metrics.short_words += 1;
            self.charge(|c| &mut c.fetch_dtb, tau_d);
            if let Some(next) = self.exec_short(word)? {
                return Ok(next);
            }
        }
        Err(Trap::Malformed("translation ended without INTERP"))
    }

    /// The tier of a DTB-resident dispatch: `Trusted` when the engine is
    /// on its verified fast path, `Psder` otherwise.
    fn dispatch_tier(&self) -> Tier {
        if self.engine.is_trusted() {
            Tier::Trusted
        } else {
            Tier::Psder
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::compiler::compile;

    fn modes() -> Vec<Mode> {
        vec![
            Mode::Interpreter,
            Mode::Dtb(DtbConfig::with_capacity(64)),
            Mode::ICache {
                geometry: Geometry::new(16, 4),
            },
        ]
    }

    #[test]
    fn all_modes_agree_with_the_reference_on_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let want = dir::exec::run(&p).unwrap();
            let m = Machine::new(&p, SchemeKind::Packed);
            for mode in modes() {
                let r = m.run(&mode).unwrap_or_else(|e| panic!("{}: {e}", s.name));
                assert_eq!(r.output, want, "{} under {mode:?}", s.name);
            }
        }
    }

    #[test]
    fn all_schemes_execute_identically() {
        let p = compile(&hlr::programs::GCD_CHAIN.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        for scheme in SchemeKind::all() {
            let m = Machine::new(&p, scheme);
            for mode in modes() {
                assert_eq!(m.run(&mode).unwrap().output, want, "{scheme} {mode:?}");
            }
        }
    }

    #[test]
    fn modes_agree_on_generated_programs() {
        for seed in 0..15 {
            let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
            let hir = hlr::sema::analyze(&ast).unwrap();
            let p = compile(&hir);
            let want = dir::exec::run(&p).unwrap();
            let m = Machine::new(&p, SchemeKind::Huffman);
            for mode in modes() {
                assert_eq!(m.run(&mode).unwrap().output, want, "seed {seed}");
            }
        }
    }

    #[test]
    fn traps_are_identical_across_modes() {
        for src in [
            "proc main() begin write 1 / 0; end",
            "proc main() begin int a[3]; write a[5]; end",
        ] {
            let p = compile(&hlr::compile(src).unwrap());
            let want = dir::exec::run(&p).unwrap_err();
            let m = Machine::new(&p, SchemeKind::Packed);
            for mode in modes() {
                assert_eq!(m.run(&mode).unwrap_err(), want, "{src} {mode:?}");
            }
        }
    }

    #[test]
    fn dtb_beats_interpreter_on_loopy_code() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::Huffman);
        let t1 = m
            .run(&Mode::Interpreter)
            .unwrap()
            .metrics
            .time_per_instruction();
        let t2 = m
            .run(&Mode::Dtb(DtbConfig::with_capacity(256)))
            .unwrap()
            .metrics
            .time_per_instruction();
        assert!(
            t2 < t1,
            "DTB ({t2:.2}) must beat the interpreter ({t1:.2}) on sieve"
        );
    }

    #[test]
    fn dtb_hit_ratio_is_high_in_loops() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::Packed);
        let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(256))).unwrap();
        let h = r.metrics.dtb.unwrap().hit_ratio();
        assert!(h > 0.9, "hit ratio {h}");
    }

    #[test]
    fn interpreter_decodes_every_instruction() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::Packed);
        let r = m.run(&Mode::Interpreter).unwrap();
        assert_eq!(r.metrics.decoded, r.metrics.instructions);
        assert!(r.metrics.dtb.is_none());
    }

    #[test]
    fn dtb_decodes_only_misses() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::Packed);
        let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(256))).unwrap();
        let dtb = r.metrics.dtb.unwrap();
        assert_eq!(r.metrics.decoded, dtb.misses - dtb.uncached);
        assert!(r.metrics.decoded < r.metrics.instructions / 2);
    }

    #[test]
    fn icache_short_fetches_hit_after_warmup() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::Packed);
        let r = m
            .run(&Mode::ICache {
                geometry: Geometry::new(64, 4),
            })
            .unwrap();
        let c = r.metrics.icache.unwrap();
        assert!(c.hit_ratio() > 0.9, "icache hit ratio {}", c.hit_ratio());
    }

    #[test]
    fn trace_collection_matches_instruction_count() {
        let p = compile(&hlr::programs::GCD_CHAIN.compile().unwrap());
        let mut m = Machine::new(&p, SchemeKind::Packed);
        m.set_trace(true);
        let r = m.run(&Mode::Interpreter).unwrap();
        let trace = r.metrics.trace.unwrap();
        assert_eq!(trace.len() as u64, r.metrics.instructions);
        assert_eq!(trace[0], 0);
    }

    #[test]
    fn step_limit_applies() {
        let p = compile(&hlr::compile("proc main() begin while true do skip; end").unwrap());
        let m = Machine::with(
            &p,
            SchemeKind::Packed,
            CostModel::default(),
            Limits {
                max_steps: 1000,
                max_depth: 16,
            },
        );
        for mode in modes() {
            assert_eq!(m.run(&mode).unwrap_err(), Trap::StepLimit, "{mode:?}");
        }
    }

    #[test]
    fn fuel_budget_preempts_runaway_programs_in_every_mode() {
        let p = compile(&hlr::compile("proc main() begin while true do skip; end").unwrap());
        let mut m = Machine::new(&p, SchemeKind::Packed);
        m.set_budget(Budget::fuel(100_000));
        for mode in modes() {
            assert_eq!(m.run(&mode).unwrap_err(), Trap::FuelExhausted, "{mode:?}");
        }
    }

    #[test]
    fn deadline_budget_preempts_runaway_programs() {
        let p = compile(&hlr::compile("proc main() begin while true do skip; end").unwrap());
        let mut m = Machine::new(&p, SchemeKind::Packed);
        // 1ms wall-clock: far below what an unbounded spin would take,
        // far above the time to reach the first amortized check.
        m.set_budget(Budget::deadline_ns(1_000_000));
        assert_eq!(
            m.run(&Mode::Interpreter).unwrap_err(),
            Trap::DeadlineExceeded
        );
    }

    #[test]
    fn unfired_budget_is_invisible() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let mode = Mode::Dtb(DtbConfig::with_capacity(64));
        let plain = Machine::new(&p, SchemeKind::Huffman).run(&mode).unwrap();
        let mut m = Machine::new(&p, SchemeKind::Huffman);
        m.set_budget(Budget {
            fuel: Some(u64::MAX),
            deadline_ns: Some(u64::MAX / 4),
        });
        let budgeted = m.run(&mode).unwrap();
        assert_eq!(budgeted.output, plain.output);
        assert_eq!(budgeted.metrics, plain.metrics);
    }

    #[test]
    fn run_opts_budget_overrides_the_machine_budget() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let mut m = Machine::new(&p, SchemeKind::Packed);
        m.set_budget(Budget::fuel(1));
        assert_eq!(m.run(&Mode::Interpreter).unwrap_err(), Trap::FuelExhausted);
        let r = m
            .run_opts(
                &Mode::Interpreter,
                &mut NullSink,
                RunOptions {
                    budget: Some(Budget::unlimited()),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(r.metrics.instructions > 0);
    }

    #[test]
    fn poisoned_artifacts_trap_and_bypass_recovers_bit_identically() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let mut m = Machine::new(&p, SchemeKind::Huffman);
        m.freeze_translations();
        let plain = m.run(&Mode::Interpreter).unwrap();
        let poisoned = Arc::new(FrozenTransCache::for_program(&p.code).poisoned());
        for mode in modes() {
            let err = m
                .run_opts(
                    &mode,
                    &mut NullSink,
                    RunOptions {
                        shared: SharedArtifacts::Override(Arc::clone(&poisoned)),
                        ..RunOptions::default()
                    },
                )
                .unwrap_err();
            assert!(
                matches!(err, Trap::Malformed(_)),
                "poisoned artifacts must be caught, got {err:?} under {mode:?}"
            );
        }
        // Bypassing shared artifacts rebuilds templates privately:
        // host-side only, so the result is bit-identical to the shared run.
        let bypass = m
            .run_opts(
                &Mode::Interpreter,
                &mut NullSink,
                RunOptions {
                    shared: SharedArtifacts::Bypass,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(bypass.output, plain.output);
        assert_eq!(bypass.metrics, plain.metrics);
    }

    #[test]
    fn measured_parameters_are_plausible() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::PairHuffman);
        let r = m.run(&Mode::Interpreter).unwrap();
        let d = r.metrics.mean_decode();
        let x = r.metrics.mean_semantic();
        let s1 = r.metrics.mean_s1();
        assert!((4.0..40.0).contains(&d), "d = {d}");
        assert!((0.5..10.0).contains(&x), "x = {x}");
        assert!((1.5..4.5).contains(&s1), "s1 = {s1}");
    }

    #[test]
    fn tiny_dtb_thrashes_but_stays_correct() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        let m = Machine::new(&p, SchemeKind::Packed);
        let cfg = DtbConfig {
            geometry: Geometry::new(1, 2),
            unit_words: psder::MAX_TRANSLATION_WORDS,
            allocation: crate::dtb::Allocation::Fixed,
            replacement: crate::dtb::Replacement::Lru,
        };
        let r = m.run(&Mode::Dtb(cfg)).unwrap();
        assert_eq!(r.output, want);
        assert!(r.metrics.dtb.unwrap().hit_ratio() < 0.6);
    }

    #[test]
    fn two_level_dtb_agrees_and_promotes() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        let m = Machine::new(&p, SchemeKind::PairHuffman);
        let mode = Mode::TwoLevelDtb {
            l1: DtbConfig::with_capacity(8),
            l2: DtbConfig::with_capacity(256),
        };
        let r = m.run(&mode).unwrap();
        assert_eq!(r.output, want);
        let l1 = r.metrics.dtb.unwrap();
        let l2 = r.metrics.dtb2.unwrap();
        // L1 misses that hit L2 were promoted, not re-translated: the
        // decode count equals L2 misses (each instruction translated once
        // per L2 residency), far below L1 misses.
        assert_eq!(r.metrics.decoded, l2.misses - l2.uncached);
        assert!(l2.misses < l1.misses / 2);
        assert!(r.metrics.cycles.promote > 0);
    }

    #[test]
    fn two_level_beats_single_small_dtb_when_working_set_overflows_l1() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::PairHuffman);
        let small = DtbConfig::with_capacity(8);
        let t_small = m
            .run(&Mode::Dtb(small))
            .unwrap()
            .metrics
            .time_per_instruction();
        let t_two = m
            .run(&Mode::TwoLevelDtb {
                l1: small,
                l2: DtbConfig::with_capacity(256),
            })
            .unwrap()
            .metrics
            .time_per_instruction();
        assert!(
            t_two < t_small,
            "two-level ({t_two:.2}) must beat the lone small DTB ({t_small:.2})"
        );
    }

    #[test]
    fn decoder_modes_produce_identical_reports() {
        // The host decoder must be invisible to everything modeled:
        // output, instruction counts, cycle breakdowns, DTB statistics.
        let p = compile(&hlr::programs::GCD_CHAIN.compile().unwrap());
        for scheme in SchemeKind::all() {
            for mode in modes() {
                let mut tree = Machine::new(&p, scheme);
                tree.set_decoder(DecodeMode::Tree);
                let mut table = Machine::new(&p, scheme);
                table.set_decoder(DecodeMode::Table);
                let a = tree.run(&mode).unwrap();
                let b = table.run(&mode).unwrap();
                assert_eq!(a.output, b.output, "{scheme} {mode:?}");
                assert_eq!(a.metrics, b.metrics, "{scheme} {mode:?}");
            }
        }
    }

    #[test]
    fn decode_events_corroborate_the_decode_counter() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let m = Machine::new(&p, SchemeKind::Huffman);
        let mut ring = telemetry::RingSink::new(256);
        let r = m.run_with(&Mode::Interpreter, &mut ring).unwrap();
        assert_eq!(ring.counts().decodes, r.metrics.decoded);
        // Every retained event carries the modeled per-instruction cost.
        let mut saw_cost = false;
        for e in ring.events() {
            if let Event::Decode { cost, bits, .. } = e {
                assert!(*cost > 0 && *bits > 0);
                saw_cost = true;
            }
        }
        assert!(saw_cost, "ring retained no decode events");
    }

    #[test]
    fn shared_translations_change_no_observable_result() {
        // The frozen template snapshot is a host-side cache: every output,
        // trap and modeled metric must be identical with and without it,
        // in every mode, including two-level translation.
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let mut all = modes();
        all.push(Mode::TwoLevelDtb {
            l1: DtbConfig::with_capacity(8),
            l2: DtbConfig::with_capacity(256),
        });
        for mode in all {
            let plain = Machine::new(&p, SchemeKind::Huffman).run(&mode).unwrap();
            let mut shared = Machine::new(&p, SchemeKind::Huffman);
            shared.freeze_translations();
            let r = shared.run(&mode).unwrap();
            assert_eq!(r.output, plain.output, "{mode:?}");
            assert_eq!(r.metrics, plain.metrics, "{mode:?}");
        }
    }

    #[test]
    fn machine_is_shareable_across_threads() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let mut m = Machine::new(&p, SchemeKind::Huffman);
        m.freeze_translations();
        let machine = Arc::new(m);
        let want = machine.run(&Mode::Interpreter).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let machine = Arc::clone(&machine);
                let want = &want;
                scope.spawn(move || {
                    let r = machine
                        .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
                        .unwrap();
                    assert_eq!(r.output, want.output);
                });
            }
        });
    }

    #[test]
    fn verified_machine_matches_unverified_exactly() {
        // The trusted engine path must be invisible to everything
        // observable: output and every modeled metric, in every mode.
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let verified = analyze::verify(&p, SchemeKind::Huffman.encode(&p)).unwrap();
            let loaded = Machine::load(&verified);
            assert!(loaded.is_verified());
            let plain = Machine::new(&p, SchemeKind::Huffman);
            assert!(!plain.is_verified());
            for mode in modes() {
                let a = loaded.run(&mode).unwrap();
                let b = plain.run(&mode).unwrap();
                assert_eq!(a.output, b.output, "{} {mode:?}", s.name);
                assert_eq!(a.metrics, b.metrics, "{} {mode:?}", s.name);
            }
        }
    }

    #[test]
    fn verified_machine_still_traps_on_dynamic_errors() {
        // Division by zero is not statically refutable; the trusted path
        // must keep the dynamic traps.
        let p = compile(&hlr::compile("proc main() begin write 1 / 0; end").unwrap());
        let want = dir::exec::run(&p).unwrap_err();
        let verified = analyze::verify(&p, SchemeKind::Packed.encode(&p)).unwrap();
        let m = Machine::load(&verified);
        for mode in modes() {
            assert_eq!(m.run(&mode).unwrap_err(), want, "{mode:?}");
        }
    }

    #[test]
    fn fault_plane_disables_the_trusted_path_but_stays_correct() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        let verified = analyze::verify(&p, SchemeKind::Huffman.encode(&p)).unwrap();
        let mut m = Machine::load(&verified);
        m.set_faults(Some(FaultConfig::only(0xFA, FaultKind::DtbWord, 0.01)));
        let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap();
        assert_eq!(r.output, want, "faulted verified run must recover");
        assert!(r.metrics.recoveries > 0);
    }

    #[test]
    fn require_reports_misconfigured_mode() {
        let err = require(None::<Handle>, NO_DTB).unwrap_err();
        assert_eq!(err, Trap::MisconfiguredMode(NO_DTB));
        assert!(format!("{err}").contains("misconfigured machine mode"));
    }

    #[test]
    fn inert_fault_plane_changes_nothing() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let mode = Mode::Dtb(DtbConfig::with_capacity(64));
        let clean = Machine::new(&p, SchemeKind::Huffman).run(&mode).unwrap();
        let mut m = Machine::new(&p, SchemeKind::Huffman);
        m.set_faults(Some(FaultConfig::inert(9)));
        let faulty = m.run(&mode).unwrap();
        assert_eq!(faulty.output, clean.output);
        let mut metrics = faulty.metrics;
        assert_eq!(
            metrics.faults.take(),
            Some(crate::fault::FaultStats::default())
        );
        assert_eq!(metrics, clean.metrics, "inert injector must be invisible");
    }

    #[test]
    fn dtb_corruption_is_recovered_transparently() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        let mut m = Machine::new(&p, SchemeKind::Huffman);
        m.set_faults(Some(FaultConfig::only(0xFA, FaultKind::DtbWord, 0.01)));
        let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap();
        assert_eq!(r.output, want, "recovery must preserve semantics");
        assert!(r.metrics.recoveries > 0, "corruption was never detected");
        assert_eq!(
            r.metrics.recoveries,
            r.metrics.dtb.unwrap().recoveries,
            "machine and DTB recovery counters must agree"
        );
        assert!(r.metrics.faults.unwrap().dtb_words_corrupted > 0);
    }

    #[test]
    fn repeated_failures_degrade_to_interpretation() {
        let p = compile(&hlr::programs::FIB_ITER.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        let mut m = Machine::new(&p, SchemeKind::Packed);
        m.set_faults(Some(FaultConfig::only(3, FaultKind::DtbWord, 1.0)));
        m.set_retry(RetryPolicy {
            degrade_after: 1,
            max_fetch_retries: 8,
        });
        let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap();
        assert_eq!(r.output, want, "degraded mode must preserve semantics");
        assert!(
            r.metrics.degraded_instructions > 0,
            "constant corruption must force degradation"
        );
    }

    #[test]
    fn overflow_allocation_stays_correct_under_pressure() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let want = dir::exec::run(&p).unwrap();
        let m = Machine::new(&p, SchemeKind::Packed);
        let cfg = DtbConfig {
            geometry: Geometry::new(8, 2),
            unit_words: 2,
            allocation: crate::dtb::Allocation::Overflow { blocks: 4 },
            replacement: crate::dtb::Replacement::Lru,
        };
        let r = m.run(&Mode::Dtb(cfg)).unwrap();
        assert_eq!(r.output, want);
        let stats = r.metrics.dtb.unwrap();
        assert!(stats.uncached > 0, "pressure must force uncached runs");
    }
}
