.globals 0
.entry main
; prelude
    call_idx 1
    halt
.proc gcd args=2 frame=3 returns=true
    cmp_const_br ne 1 0 9
    bin_locals mod 0 1 2
    push_local 1
    store_local 0
    push_local 2
    store_local 1
    jump 2
    push_local 0
    return
    push_const 0
    return
.end
.proc main args=0 frame=3 returns=false
    set_local_const 1 0
    set_local_const 0 1
    set_local_const 2 60
    cmp_locals_br le 0 2 25
    push_local 1
    push_local 0
    push_const 36
    call_idx 0
    bin add
    store_local 1
    inc_local 0 1
    jump 16
    push_local 1
    write
    return
.end
