.globals 0
.entry main
; prelude
    call_idx 1
    halt
.proc gcd args=2 frame=3 returns=true
    push_local 1
    push_const 0
    bin ne
    jump_if_false 15
    push_local 0
    push_local 1
    bin mod
    store_local 2
    push_local 1
    store_local 0
    push_local 2
    store_local 1
    jump 2
    push_local 0
    return
    push_const 0
    return
.end
.proc main args=0 frame=3 returns=false
    push_const 0
    store_local 1
    push_const 1
    store_local 0
    push_const 60
    store_local 2
    push_local 0
    push_local 2
    bin le
    jump_if_false 40
    push_local 1
    push_local 0
    push_const 36
    call_idx 0
    bin add
    store_local 1
    push_local 0
    push_const 1
    bin add
    store_local 0
    jump 25
    push_local 1
    write
    return
.end
