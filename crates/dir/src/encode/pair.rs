//! Pair-frequency encoding (§3.2: "the idea of frequency based encoding may
//! be generalized by considering the frequency of occurrence of pairs ...
//! an encoding based on the frequency of pairs of fields would require a
//! separate decode tree for each possible predecessor field").
//!
//! Each instruction's opcode is coded under a codebook conditioned on the
//! *static predecessor* opcode within the same contour region;
//! region-leading instructions use a dedicated start codebook. Every
//! conditional codebook covers only the successor opcodes actually observed
//! after its predecessor, plus an ESCAPE code that falls back to the
//! unconditioned (global) Huffman tree — so any legal program remains
//! encodable while common digrams such as `PushLocal → PushLocal` cost a
//! single bit. Operand fields use the contextual layout.
//!
//! A sequential decoder knows the predecessor because it has just decoded
//! it; for the random access the DTB's translator performs, the image keeps
//! the predecessor table explicitly. That table is reconstructible from the
//! stream, so it is charged to neither program nor interpreter size — but
//! the per-predecessor decode *trees* are charged to the interpreter, and
//! they dominate it, exactly as the paper warns.

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::Tree;
use crate::isa::{Opcode, OPCODE_COUNT};
use crate::program::Program;

use super::contextual::{read_inst, write_fields};
use super::{
    ContextTables, DecodeMode, Decoded, DecoderData, Image, ImageError, Region, Scheme, SchemeKind,
};

/// The pair-frequency scheme (unit struct; codebooks are measured from the
/// program's static opcode digrams).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairHuffman;

/// Predecessor index used for region-leading instructions.
const START: usize = OPCODE_COUNT;

/// A conditional codebook: the successor opcodes observed after one
/// predecessor, Huffman-coded together with a trailing ESCAPE symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CtxCode {
    /// Observed successor opcodes (local symbol `i` ↔ `symbols[i]`); the
    /// local symbol `symbols.len()` is ESCAPE.
    pub(crate) symbols: Vec<u8>,
    /// Tree over `symbols.len() + 1` local symbols.
    pub(crate) tree: Tree,
}

impl CtxCode {
    pub(crate) fn build(freqs: &[u64; OPCODE_COUNT]) -> CtxCode {
        let symbols: Vec<u8> = (0..OPCODE_COUNT as u8)
            .filter(|&s| freqs[s as usize] > 0)
            .collect();
        let mut local: Vec<u64> = symbols.iter().map(|&s| freqs[s as usize]).collect();
        local.push(1); // ESCAPE
        CtxCode {
            tree: Tree::from_frequencies(&local),
            symbols,
        }
    }

    fn escape_symbol(&self) -> usize {
        self.symbols.len()
    }

    pub(crate) fn encode(&self, opcode: Opcode, global: &Tree, out: &mut BitWriter) {
        match self.symbols.iter().position(|&s| s == opcode as u8) {
            Some(local) => self.tree.encode(local, out),
            None => {
                self.tree.encode(self.escape_symbol(), out);
                global.encode(opcode as usize, out);
            }
        }
    }

    /// Decodes an opcode, returning `(opcode_discriminant, cost_ops)`.
    #[inline]
    pub(crate) fn decode(
        &self,
        global: &Tree,
        reader: &mut BitReader<'_>,
        mode: DecodeMode,
    ) -> Result<(u8, u32), ImageError> {
        let (local, bits) = mode.huff(&self.tree, reader)?;
        if local == self.escape_symbol() {
            let (sym, gbits) = mode.huff(global, reader)?;
            // Escape: both walks plus the fallback dispatch.
            Ok((sym as u8, 2 * bits + 2 * gbits + 1))
        } else {
            Ok((self.symbols[local], 2 * bits))
        }
    }

    pub(crate) fn table_bits(&self) -> u64 {
        // Tree links plus the local->global symbol map (one byte each).
        self.tree.table_bits() + self.symbols.len() as u64 * 8
    }
}

impl Scheme for PairHuffman {
    fn kind(&self) -> SchemeKind {
        SchemeKind::PairHuffman
    }

    fn encode(&self, program: &Program) -> Image {
        let tables = ContextTables::build(program);

        // Predecessor of each instruction (START at region boundaries).
        let mut preds = vec![START as u8; program.code.len()];
        for region in &tables.regions {
            for i in (region.start + 1)..region.end {
                preds[i as usize] = program.code[i as usize - 1].opcode() as u8;
            }
        }

        // Digram frequencies -> escape-coded codebook per predecessor.
        let mut freqs = vec![[0u64; OPCODE_COUNT]; OPCODE_COUNT + 1];
        for (i, inst) in program.code.iter().enumerate() {
            freqs[preds[i] as usize][inst.opcode() as usize] += 1;
        }
        let global = Tree::from_frequencies(&program.opcode_histogram());
        let ctx: Vec<CtxCode> = freqs.iter().map(CtxCode::build).collect();

        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for (i, inst) in program.code.iter().enumerate() {
            offsets.push(w.bit_len());
            let region = tables.region_of(i as u32);
            ctx[preds[i] as usize].encode(inst.opcode(), &global, &mut w);
            write_fields(&mut w, inst, region);
        }
        let (bytes, bit_len) = w.finish();
        let tree_bits: u64 = ctx.iter().map(CtxCode::table_bits).sum::<u64>() + global.table_bits();
        Image {
            kind: SchemeKind::PairHuffman,
            bytes,
            bit_len,
            offsets,
            side_table_bits: tables.table_bits() + tree_bits,
            mode: DecodeMode::default(),
            decoder: DecoderData::Pair {
                ctx,
                global,
                preds,
                tables,
            },
        }
    }
}

/// Decodes one instruction; cost: region lookup (1) + tree select (1) +
/// tree walk (2 per code bit, doubled through the global tree on escape) +
/// width lookup/extract/mask per field (3 each).
#[inline]
pub(super) fn decode(
    reader: &mut BitReader<'_>,
    ctx: &[CtxCode],
    global: &Tree,
    preds: &[u8],
    region: &Region,
    index: u32,
    mode: DecodeMode,
) -> Result<Decoded, ImageError> {
    let pred = *preds
        .get(index as usize)
        .ok_or(ImageError::BadIndex(index))?;
    let (symbol, walk_cost) = ctx[pred as usize].decode(global, reader, mode)?;
    let opcode = Opcode::from_u8(symbol).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(symbol),
    ))?;
    let inst = read_inst(reader, opcode, region, mode)?;
    Ok(Decoded {
        inst,
        cost: 2 + walk_cost + 3 * opcode.field_kinds().len() as u32,
        bits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let image = PairHuffman.encode(&p);
            assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
        }
    }

    #[test]
    fn round_trip_fused_samples() {
        for s in hlr::programs::ALL {
            let (p, _) = crate::fuse::fuse(&compile(&s.compile().unwrap()));
            let image = PairHuffman.encode(&p);
            assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
        }
    }

    #[test]
    fn pair_coding_beats_plain_huffman_on_most_samples() {
        let mut wins = 0;
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let plain = super::super::HuffmanScheme.encode(&p).bit_len;
            let pair = PairHuffman.encode(&p).bit_len;
            if pair < plain {
                wins += 1;
            }
        }
        assert!(
            wins * 3 >= hlr::programs::ALL.len() * 2,
            "pair coding won on only {wins}/{} samples",
            hlr::programs::ALL.len()
        );
    }

    #[test]
    fn interpreter_side_tables_are_larger() {
        // One decode structure per predecessor costs more interpreter
        // memory than the single unconditioned tree (paper §3.2).
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let plain = super::super::HuffmanScheme.encode(&p);
        let pair = PairHuffman.encode(&p);
        assert!(
            pair.side_table_bits > plain.side_table_bits,
            "{} vs {}",
            pair.side_table_bits,
            plain.side_table_bits
        );
    }

    #[test]
    fn region_leading_instructions_use_start_tree() {
        let p = compile(&hlr::programs::FIB_REC.compile().unwrap());
        let image = PairHuffman.encode(&p);
        if let DecoderData::Pair { preds, .. } = &image.decoder {
            assert_eq!(preds[0] as usize, START);
            for proc in &p.procs {
                assert_eq!(preds[proc.entry as usize] as usize, START);
            }
        } else {
            panic!("wrong decoder kind");
        }
    }

    #[test]
    fn escape_path_decodes_foreign_opcodes() {
        // Build a codebook from a context that never saw `Halt`, then force
        // the escape path by encoding `Halt` under it.
        let mut freqs = [0u64; OPCODE_COUNT];
        freqs[Opcode::PushLocal as usize] = 10;
        freqs[Opcode::Bin as usize] = 5;
        let ctx = CtxCode::build(&freqs);
        let global = Tree::from_frequencies(&[1u64; OPCODE_COUNT]);
        let mut w = BitWriter::new();
        ctx.encode(Opcode::Halt, &global, &mut w);
        let (buf, len) = w.finish();
        for mode in DecodeMode::all() {
            let mut r = BitReader::new(&buf, len);
            let (sym, cost) = ctx.decode(&global, &mut r, mode).unwrap();
            assert_eq!(sym, Opcode::Halt as u8);
            assert!(cost > 2, "escape path must cost both walks ({mode})");
        }
    }
}
