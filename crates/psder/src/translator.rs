//! The DIR → PSDER translation templates.
//!
//! This mapping is the heart of dynamic translation: each DIR instruction
//! becomes a short sequence of IU2 instructions that steer control to the
//! semantic routines and pass parameters, ending with the INTERP that
//! chains to the next DIR instruction (§6.2). The mapping is "almost
//! one-to-one", which is why the paper argues the dynamic translator is
//! barely more complex than an interpreter.
//!
//! The same templates serve three consumers:
//!
//! * the **dynamic translator** fills DTB allocation units with them;
//! * the **pure interpreter** executes them directly after decoding,
//!   without storing them anywhere;
//! * the **cost model** measures `s1` (short words per DIR instruction)
//!   and `g` (generation cost) from them.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use dir::isa::Inst;

use crate::short::{InterpMode, PopMode, PushMode, RoutineId, ShortInstr};

/// Translates one DIR instruction into its PSDER sequence.
///
/// `next` is the DIR address of the fall-through successor (`pc + 1`),
/// embedded in the trailing INTERP where the successor is statically known.
/// `Halt` ends the machine and has no successor.
pub fn translate(inst: Inst, next: u32) -> Vec<ShortInstr> {
    use ShortInstr::*;
    let interp_next = Interp(InterpMode::Imm(next));
    match inst {
        Inst::PushConst(v) => vec![Push(PushMode::Imm(v)), interp_next],
        Inst::PushLocal(s) => vec![Push(PushMode::Local(s)), interp_next],
        Inst::PushGlobal(s) => vec![Push(PushMode::Global(s)), interp_next],
        Inst::StoreLocal(s) => vec![Pop(PopMode::Local(s)), interp_next],
        Inst::StoreGlobal(s) => vec![Pop(PopMode::Global(s)), interp_next],
        Inst::LoadArrLocal { base, len } => vec![
            Push(PushMode::Imm(base as i64)),
            Push(PushMode::Imm(len as i64)),
            Call(RoutineId::LoadArrLocal),
            interp_next,
        ],
        Inst::LoadArrGlobal { base, len } => vec![
            Push(PushMode::Imm(base as i64)),
            Push(PushMode::Imm(len as i64)),
            Call(RoutineId::LoadArrGlobal),
            interp_next,
        ],
        Inst::StoreArrLocal { base, len } => vec![
            Push(PushMode::Imm(base as i64)),
            Push(PushMode::Imm(len as i64)),
            Call(RoutineId::StoreArrLocal),
            interp_next,
        ],
        Inst::StoreArrGlobal { base, len } => vec![
            Push(PushMode::Imm(base as i64)),
            Push(PushMode::Imm(len as i64)),
            Call(RoutineId::StoreArrGlobal),
            interp_next,
        ],
        Inst::Pop => vec![Pop(PopMode::Discard), interp_next],
        Inst::Bin(op) => vec![Call(RoutineId::Bin(op)), interp_next],
        Inst::Neg => vec![Call(RoutineId::NegR), interp_next],
        Inst::Not => vec![Call(RoutineId::NotR), interp_next],
        Inst::Jump(t) => vec![Interp(InterpMode::Imm(t))],
        // Condition is on the stack; push taken/fall-through in the order
        // the Select routine expects (if_zero first).
        Inst::JumpIfFalse(t) => vec![
            Push(PushMode::Imm(t as i64)),
            Push(PushMode::Imm(next as i64)),
            Call(RoutineId::Select),
            Interp(InterpMode::Stack),
        ],
        Inst::JumpIfTrue(t) => vec![
            Push(PushMode::Imm(next as i64)),
            Push(PushMode::Imm(t as i64)),
            Call(RoutineId::Select),
            Interp(InterpMode::Stack),
        ],
        Inst::Call(p) => vec![
            Push(PushMode::Imm(p as i64)),
            Push(PushMode::Imm(next as i64)),
            Call(RoutineId::DirCall),
            Interp(InterpMode::Stack),
        ],
        Inst::Return => vec![Call(RoutineId::DirRet), Interp(InterpMode::Stack)],
        Inst::Halt => vec![Call(RoutineId::HaltR)],
        Inst::Write => vec![Call(RoutineId::WriteR), interp_next],
        // Fused tier: direct-mode pushes/pops reuse the base routines.
        Inst::BinLocals { op, a, b, dst } => vec![
            Push(PushMode::Local(a)),
            Push(PushMode::Local(b)),
            Call(RoutineId::Bin(op)),
            Pop(PopMode::Local(dst)),
            interp_next,
        ],
        Inst::IncLocal { slot, imm } => vec![
            Push(PushMode::Local(slot)),
            Push(PushMode::Imm(imm)),
            Call(RoutineId::Bin(dir::AluOp::Add)),
            Pop(PopMode::Local(slot)),
            interp_next,
        ],
        Inst::SetLocalConst { slot, imm } => vec![
            Push(PushMode::Imm(imm)),
            Pop(PopMode::Local(slot)),
            interp_next,
        ],
        Inst::CmpConstBr {
            op,
            slot,
            imm,
            target,
        } => vec![
            Push(PushMode::Local(slot)),
            Push(PushMode::Imm(imm)),
            Push(PushMode::Imm(target as i64)),
            Push(PushMode::Imm(next as i64)),
            Call(RoutineId::CmpBr(op)),
            Interp(InterpMode::Stack),
        ],
        Inst::CmpLocalsBr { op, a, b, target } => vec![
            Push(PushMode::Local(a)),
            Push(PushMode::Local(b)),
            Push(PushMode::Imm(target as i64)),
            Push(PushMode::Imm(next as i64)),
            Call(RoutineId::CmpBr(op)),
            Interp(InterpMode::Stack),
        ],
    }
}

/// The longest translation any instruction can produce, in short words —
/// the lower bound for a DTB allocation unit that never overflows.
pub const MAX_TRANSLATION_WORDS: usize = 6;

/// Summary of a translation for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationShape {
    /// Short words emitted (the paper's per-instruction `s1`).
    pub words: u32,
    /// Semantic-routine calls within the sequence.
    pub calls: u32,
}

/// Computes the shape of an instruction's translation without building it.
pub fn shape(inst: Inst) -> TranslationShape {
    let t = translate(inst, 0);
    TranslationShape {
        words: t.len() as u32,
        calls: t.iter().filter(|s| s.routine().is_some()).count() as u32,
    }
}

/// Memoized decode templates: a `(instruction, successor)` → sequence
/// cache over [`translate`].
///
/// The DTB retranslates the same hot lines every time they are evicted
/// and re-missed, and the pure interpreter retranslates every instruction
/// of a loop on every iteration. The *modeled* generation cost is charged
/// per the paper regardless — this cache only removes the host-side
/// allocation and template construction, returning a shared [`Arc`] slice
/// whose contents are identical to a fresh [`translate`] call.
///
/// The sequences are `Arc`s (not `Rc`s) so a cache can be
/// [frozen](TransCache::freeze) into a [`FrozenTransCache`] and shared
/// read-only across worker threads — the multi-tenant pool's
/// "specialization products built once" path.
#[derive(Debug, Default)]
pub struct TransCache {
    map: HashMap<(Inst, u32), Arc<[ShortInstr]>, BuildTemplateHasher>,
    hits: u64,
    misses: u64,
}

/// Multiply-rotate hasher for the template cache. The keys are tiny (one
/// instruction plus one address) and lookups sit on the hot translate
/// path, where the standard SipHash setup costs more than the template
/// it saves; there is no untrusted-key DoS concern inside a cache of
/// program instructions.
#[derive(Debug, Default)]
struct TemplateHasher(u64);

type BuildTemplateHasher = std::hash::BuildHasherDefault<TemplateHasher>;

impl TemplateHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for TemplateHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.fold(tail);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.fold(v as u64);
    }
}

impl TransCache {
    /// An empty cache.
    pub fn new() -> TransCache {
        TransCache::default()
    }

    /// Translates `inst` with fall-through successor `next`, reusing the
    /// memoized sequence when this exact pair has been seen before.
    #[inline]
    pub fn translate(&mut self, inst: Inst, next: u32) -> Arc<[ShortInstr]> {
        match self.map.entry((inst, next)) {
            Entry::Occupied(e) => {
                self.hits += 1;
                Arc::clone(e.get())
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                Arc::clone(v.insert(Arc::from(translate(inst, next))))
            }
        }
    }

    /// Freezes the cache into an immutable, thread-shareable snapshot,
    /// discarding the hit/miss counters.
    pub fn freeze(self) -> FrozenTransCache {
        FrozenTransCache { map: self.map }
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the translator.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct `(instruction, successor)` pairs cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache has seen no translations yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// An immutable snapshot of a [`TransCache`], shareable across threads.
///
/// Dynamic translation's decode templates are pure functions of
/// `(instruction, successor)` — specialization products in the Futamura
/// sense — so one frozen table can serve any number of concurrent
/// tenants read-only. [`FrozenTransCache::for_program`] pre-translates
/// every static instruction of a program, so workers dispatching through
/// the snapshot never miss; pairs outside the snapshot (e.g. addresses
/// reached only through computed control flow) simply fall back to the
/// caller's private cache.
///
/// The *modeled* generation cost is unaffected: the machine charges
/// per translation event whether the host built the sequence or fetched
/// it from a snapshot.
///
/// ```
/// use psder::{translate, FrozenTransCache};
/// use dir::isa::Inst;
///
/// let code = [Inst::PushConst(7), Inst::Write, Inst::Halt];
/// let frozen = FrozenTransCache::for_program(&code);
/// // Shared lookups return exactly what a fresh translation would build.
/// let seq = frozen.get(Inst::PushConst(7), 1).expect("pre-translated");
/// assert_eq!(&seq[..], &translate(Inst::PushConst(7), 1)[..]);
/// // Unknown pairs are not invented: callers fall back to translating.
/// assert!(frozen.get(Inst::PushConst(999), 1).is_none());
/// ```
#[derive(Debug, Default)]
pub struct FrozenTransCache {
    map: HashMap<(Inst, u32), Arc<[ShortInstr]>, BuildTemplateHasher>,
}

impl FrozenTransCache {
    /// Pre-translates every `(code[pc], pc + 1)` pair of a program: the
    /// complete static template set a machine executing `code` can
    /// request along fall-through successors.
    pub fn for_program(code: &[Inst]) -> FrozenTransCache {
        let mut cache = TransCache::new();
        for (pc, &inst) in code.iter().enumerate() {
            cache.translate(inst, pc as u32 + 1);
        }
        cache.freeze()
    }

    /// Looks up the memoized sequence for `(inst, next)`, if present.
    #[inline]
    pub fn get(&self, inst: Inst, next: u32) -> Option<Arc<[ShortInstr]>> {
        self.map.get(&(inst, next)).map(Arc::clone)
    }

    /// Distinct `(instruction, successor)` pairs in the snapshot.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the snapshot holds no translations.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A deterministically corrupted copy: every template loses its
    /// final short word — the `INTERP` terminator (or, for one-word
    /// templates, the whole sequence). Dispatching any poisoned template
    /// runs off its end, which the machine reports as a
    /// `Malformed("… ended without INTERP")` trap at the *first*
    /// instruction executed through the snapshot.
    ///
    /// This is the chaos plane's shared-artifact corruption: unlike a
    /// random bit flip, truncation is guaranteed detectable (the engine
    /// cannot silently mis-execute a too-short sequence into a clean
    /// run), so campaigns can assert that corrupted artifacts are always
    /// caught and recovered by re-translation, never absorbed.
    pub fn poisoned(&self) -> FrozenTransCache {
        let map = self
            .map
            .iter()
            .map(|(&key, seq)| {
                let truncated: Arc<[ShortInstr]> = seq[..seq.len().saturating_sub(1)].into();
                (key, truncated)
            })
            .collect();
        FrozenTransCache { map }
    }
}

/// Superinstruction fusion: translates a straight-line run of DIR
/// instructions starting at address `start` into one PSDER block,
/// omitting the interior `INTERP` terminators that would bounce through
/// the instruction-unit dispatch between consecutive fall-through
/// instructions. Fusion stops after the first instruction whose successor
/// is not the static fall-through (branches, calls, returns, halt) or
/// when `code` runs out; the block keeps that instruction's own
/// terminator, so control leaves the block exactly as it would leave the
/// unfused sequence.
///
/// Returns the fused block and the number of DIR instructions it covers.
///
/// This is a *host-side* representation raise (the translation analogue
/// of `dir::fuse`): the machine's modeled cost accounting deliberately
/// does not use it, because dropping modeled INTERP dispatches would
/// change the paper's cycle counts.
pub fn fuse_block(code: &[Inst], start: u32) -> (Vec<ShortInstr>, usize) {
    let mut out = Vec::new();
    let mut taken = 0usize;
    for (i, &inst) in code.iter().enumerate() {
        let next = start + i as u32 + 1;
        let t = translate(inst, next);
        taken += 1;
        let falls_through =
            matches!(t.last(), Some(&ShortInstr::Interp(InterpMode::Imm(n))) if n == next);
        if falls_through && i + 1 < code.len() {
            out.extend_from_slice(&t[..t.len() - 1]);
        } else {
            out.extend_from_slice(&t);
            break;
        }
    }
    (out, taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::AluOp;

    #[test]
    fn no_translation_exceeds_the_allocation_bound() {
        // Cover every opcode through representative instructions.
        let reps = vec![
            Inst::PushConst(1),
            Inst::PushLocal(0),
            Inst::PushGlobal(0),
            Inst::StoreLocal(0),
            Inst::StoreGlobal(0),
            Inst::LoadArrLocal { base: 0, len: 1 },
            Inst::LoadArrGlobal { base: 0, len: 1 },
            Inst::StoreArrLocal { base: 0, len: 1 },
            Inst::StoreArrGlobal { base: 0, len: 1 },
            Inst::Pop,
            Inst::Bin(AluOp::Add),
            Inst::Neg,
            Inst::Not,
            Inst::Jump(0),
            Inst::JumpIfFalse(0),
            Inst::JumpIfTrue(0),
            Inst::Call(0),
            Inst::Return,
            Inst::Halt,
            Inst::Write,
            Inst::BinLocals {
                op: AluOp::Add,
                a: 0,
                b: 0,
                dst: 0,
            },
            Inst::IncLocal { slot: 0, imm: 1 },
            Inst::SetLocalConst { slot: 0, imm: 0 },
            Inst::CmpConstBr {
                op: AluOp::Lt,
                slot: 0,
                imm: 0,
                target: 0,
            },
            Inst::CmpLocalsBr {
                op: AluOp::Lt,
                a: 0,
                b: 0,
                target: 0,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for inst in reps {
            seen.insert(inst.opcode());
            let t = translate(inst, 42);
            assert!(
                t.len() <= MAX_TRANSLATION_WORDS,
                "{inst:?} -> {} words",
                t.len()
            );
            assert!(!t.is_empty());
        }
        assert_eq!(seen.len(), dir::isa::OPCODE_COUNT);
    }

    #[test]
    fn every_translation_ends_in_interp_or_halt() {
        for inst in [
            Inst::PushConst(7),
            Inst::Bin(AluOp::Mul),
            Inst::Jump(3),
            Inst::Return,
            Inst::Call(0),
        ] {
            let t = translate(inst, 9);
            match t.last().unwrap() {
                ShortInstr::Interp(_) => {}
                other => panic!("{inst:?} ends with {other:?}"),
            }
        }
        let halt = translate(Inst::Halt, 9);
        assert_eq!(halt, vec![ShortInstr::Call(RoutineId::HaltR)]);
    }

    #[test]
    fn statically_known_successors_use_immediate_interp() {
        let t = translate(Inst::PushConst(1), 17);
        assert_eq!(*t.last().unwrap(), ShortInstr::Interp(InterpMode::Imm(17)));
        let t = translate(Inst::Jump(99), 17);
        assert_eq!(t, vec![ShortInstr::Interp(InterpMode::Imm(99))]);
    }

    #[test]
    fn computed_successors_use_stack_interp() {
        for inst in [
            Inst::JumpIfFalse(3),
            Inst::JumpIfTrue(3),
            Inst::Call(0),
            Inst::Return,
        ] {
            let t = translate(inst, 9);
            assert_eq!(*t.last().unwrap(), ShortInstr::Interp(InterpMode::Stack));
        }
    }

    #[test]
    fn jump_flavours_swap_select_operands() {
        let f = translate(Inst::JumpIfFalse(3), 9);
        let t = translate(Inst::JumpIfTrue(3), 9);
        assert_eq!(f[0], ShortInstr::Push(PushMode::Imm(3)));
        assert_eq!(f[1], ShortInstr::Push(PushMode::Imm(9)));
        assert_eq!(t[0], ShortInstr::Push(PushMode::Imm(9)));
        assert_eq!(t[1], ShortInstr::Push(PushMode::Imm(3)));
    }

    #[test]
    fn mean_s1_is_near_the_papers_three() {
        // Average translation length over a realistic program should be in
        // the neighbourhood of the paper's assumed s1 = 3.
        let hir = hlr::programs::SIEVE.compile().unwrap();
        let p = dir::compiler::compile(&hir);
        let total: usize = p.code.iter().map(|&i| translate(i, 0).len()).sum();
        let mean = total as f64 / p.code.len() as f64;
        assert!((1.5..4.0).contains(&mean), "mean s1 = {mean}");
    }

    #[test]
    fn cache_returns_identical_sequences() {
        let mut cache = TransCache::new();
        let insts = [
            (Inst::PushConst(7), 1),
            (Inst::Bin(AluOp::Add), 2),
            (Inst::PushConst(7), 1), // repeat: must hit
            (Inst::PushConst(7), 5), // same inst, new successor: miss
            (Inst::JumpIfFalse(3), 9),
        ];
        for &(inst, next) in &insts {
            let cached = cache.translate(inst, next);
            assert_eq!(&cached[..], &translate(inst, next)[..], "{inst:?}");
        }
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cache_amortizes_a_hot_loop() {
        // The workload that motivates memoization: a loop body translated
        // once per iteration. After iteration one, everything hits.
        let body = [
            (Inst::PushLocal(0), 11),
            (Inst::PushConst(1), 12),
            (Inst::Bin(AluOp::Add), 13),
            (Inst::StoreLocal(0), 14),
        ];
        let mut cache = TransCache::new();
        for _ in 0..100 {
            for &(inst, next) in &body {
                cache.translate(inst, next);
            }
        }
        assert_eq!(cache.misses(), body.len() as u64);
        assert_eq!(cache.hits(), 99 * body.len() as u64);
    }

    #[test]
    fn fused_block_drops_only_interior_terminators() {
        let code = [
            Inst::PushLocal(0),
            Inst::PushConst(1),
            Inst::Bin(AluOp::Add),
            Inst::StoreLocal(0),
        ];
        let (fused, taken) = fuse_block(&code, 10);
        assert_eq!(taken, code.len());
        let unfused_words: usize = code
            .iter()
            .enumerate()
            .map(|(i, &inst)| translate(inst, 10 + i as u32 + 1).len())
            .sum();
        // One terminator survives; the other three are fused away.
        assert_eq!(fused.len(), unfused_words - (code.len() - 1));
        let interps = fused
            .iter()
            .filter(|s| matches!(s, ShortInstr::Interp(_)))
            .count();
        assert_eq!(interps, 1);
        assert_eq!(
            *fused.last().unwrap(),
            ShortInstr::Interp(InterpMode::Imm(14)),
            "block exits to the fall-through of its last instruction"
        );
        // Fusion only removes terminators: the non-INTERP words appear in
        // the same order as in the unfused sequences.
        let non_interp = |seq: &[ShortInstr]| {
            seq.iter()
                .filter(|s| !matches!(s, ShortInstr::Interp(_)))
                .copied()
                .collect::<Vec<_>>()
        };
        let mut expected = Vec::new();
        for (i, &inst) in code.iter().enumerate() {
            expected.extend(non_interp(&translate(inst, 10 + i as u32 + 1)));
        }
        assert_eq!(non_interp(&fused), expected);
    }

    #[test]
    fn fusion_stops_at_control_transfers() {
        let code = [
            Inst::PushConst(1),
            Inst::JumpIfFalse(40),
            Inst::PushConst(2), // unreachable by fusion
        ];
        let (fused, taken) = fuse_block(&code, 0);
        assert_eq!(taken, 2, "fusion must not run past a branch");
        assert_eq!(
            *fused.last().unwrap(),
            ShortInstr::Interp(InterpMode::Stack)
        );
        let (jump_only, taken) = fuse_block(&[Inst::Jump(7)], 3);
        assert_eq!(taken, 1);
        assert_eq!(jump_only, vec![ShortInstr::Interp(InterpMode::Imm(7))]);
        assert_eq!(fuse_block(&[], 0), (Vec::new(), 0));
    }

    #[test]
    fn frozen_snapshot_matches_fresh_translation() {
        let hir = hlr::programs::SIEVE.compile().unwrap();
        let p = dir::compiler::compile(&hir);
        let frozen = FrozenTransCache::for_program(&p.code);
        assert!(!frozen.is_empty());
        assert!(frozen.len() <= p.code.len());
        for (pc, &inst) in p.code.iter().enumerate() {
            let next = pc as u32 + 1;
            let seq = frozen.get(inst, next).expect("every static pair present");
            assert_eq!(&seq[..], &translate(inst, next)[..], "{inst:?}");
        }
        // A pair outside the fall-through set is absent, not invented.
        assert!(frozen.get(Inst::PushConst(i64::MIN), 0).is_none());
    }

    #[test]
    fn poisoned_snapshot_truncates_every_template() {
        let hir = hlr::programs::FIB_ITER.compile().unwrap();
        let p = dir::compiler::compile(&hir);
        let frozen = FrozenTransCache::for_program(&p.code);
        let poisoned = frozen.poisoned();
        assert_eq!(poisoned.len(), frozen.len());
        for (pc, &inst) in p.code.iter().enumerate() {
            let next = pc as u32 + 1;
            let clean = frozen.get(inst, next).unwrap();
            let bad = poisoned.get(inst, next).unwrap();
            assert_eq!(bad.len(), clean.len() - 1, "{inst:?}");
            assert_eq!(&bad[..], &clean[..clean.len() - 1], "{inst:?}");
            // The dropped word is the terminator, so no poisoned template
            // can end a dispatch cleanly.
            assert!(!matches!(bad.last(), Some(ShortInstr::Interp(_))));
        }
    }

    #[test]
    fn freeze_preserves_cached_sequences() {
        let mut cache = TransCache::new();
        let live = cache.translate(Inst::Bin(AluOp::Mul), 5);
        let frozen = cache.freeze();
        assert_eq!(frozen.len(), 1);
        let shared = frozen.get(Inst::Bin(AluOp::Mul), 5).unwrap();
        assert!(Arc::ptr_eq(&live, &shared), "freeze must not reallocate");
    }

    #[test]
    fn frozen_cache_is_shareable_across_threads() {
        let hir = hlr::programs::FIB_ITER.compile().unwrap();
        let p = dir::compiler::compile(&hir);
        let frozen = Arc::new(FrozenTransCache::for_program(&p.code));
        let words: Vec<u64> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let frozen = Arc::clone(&frozen);
                    let code = &p.code;
                    scope.spawn(move || {
                        code.iter()
                            .enumerate()
                            .map(|(pc, &inst)| {
                                frozen.get(inst, pc as u32 + 1).expect("present").len() as u64
                            })
                            .sum()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(words.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn shape_matches_translate() {
        let s = shape(Inst::CmpLocalsBr {
            op: AluOp::Le,
            a: 0,
            b: 1,
            target: 4,
        });
        assert_eq!(s.words, 6);
        assert_eq!(s.calls, 1);
    }
}
