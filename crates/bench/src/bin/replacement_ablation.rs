//! **Replacement-policy ablation (§5.2):** the paper's replacement array
//! implements true LRU ("the one selected for replacement is that which
//! was used least recently"). This experiment quantifies what the recency
//! tracking buys over FIFO and random replacement at several DTB
//! capacities.
//!
//! Run with `cargo run -p uhm-bench --bin replacement_ablation --release`.
//! With `--json`, emits a versioned RunReport instead of the text tables.

use dir::encode::SchemeKind;
use memsim::Geometry;
use psder::MAX_TRANSLATION_WORDS;
use telemetry::Json;
use uhm::{Allocation, DtbConfig, Machine, Mode, Replacement};
use uhm_bench::{bench_report, json_flag, workloads};

fn config(capacity: usize, replacement: Replacement) -> DtbConfig {
    DtbConfig {
        geometry: Geometry::new((capacity / 4).max(1), 4),
        unit_words: MAX_TRANSLATION_WORDS,
        allocation: Allocation::Fixed,
        replacement,
    }
}

fn main() {
    let json = json_flag();
    let policies = [
        ("lru", Replacement::Lru),
        ("fifo", Replacement::Fifo),
        ("random", Replacement::Random { seed: 0x5EED }),
    ];
    let mut rows = Vec::new();
    if !json {
        println!("Replacement-policy ablation (degree-4 sets, PairHuffman static DIR)\n");
    }
    for capacity in [16usize, 32, 64] {
        if !json {
            println!("== {capacity}-entry DTB: hit ratio h_D ==");
            println!(
                "{:>14} | {:>8} {:>8} {:>8}",
                "workload", "lru", "fifo", "random"
            );
            println!("{}", "-".repeat(45));
        }
        let mut sums = [0.0f64; 3];
        let mut n = 0;
        for w in workloads() {
            let machine = Machine::new(&w.base, SchemeKind::PairHuffman);
            let mut cells = Vec::new();
            let mut fields: Vec<(&'static str, Json)> = vec![
                ("workload", w.name.into()),
                ("capacity", (capacity as u64).into()),
            ];
            for (i, (name, policy)) in policies.iter().enumerate() {
                let r = machine
                    .run(&Mode::Dtb(config(capacity, *policy)))
                    .expect("samples are trap-free");
                let h = r.metrics.dtb.unwrap().hit_ratio();
                sums[i] += h;
                cells.push(format!("{h:>8.4}"));
                fields.push((*name, h.into()));
            }
            n += 1;
            if json {
                rows.push(Json::obj(fields));
            } else {
                println!("{:>14} | {}", w.name, cells.join(" "));
            }
        }
        if !json {
            println!("{}", "-".repeat(45));
            println!(
                "{:>14} | {:>8.4} {:>8.4} {:>8.4}\n",
                "mean",
                sums[0] / n as f64,
                sums[1] / n as f64,
                sums[2] / n as f64
            );
        }
    }
    if json {
        let config = Json::obj(vec![(
            "capacities",
            Json::Arr(vec![16u64.into(), 32u64.into(), 64u64.into()]),
        )]);
        println!(
            "{}",
            bench_report("replacement_ablation", config, rows).render()
        );
        return;
    }
    println!("Reading: the policies are close when the working set fits (all ≈ 1) or");
    println!("drowns the buffer (all ≈ 0); LRU's recency tracking earns its keep in");
    println!("the transition region — and random occasionally beats both on cyclic");
    println!("reference patterns where deterministic policies thrash in lock-step.");
}
