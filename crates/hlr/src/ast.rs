//! The abstract syntax tree produced by the [`parser`](crate::parser).
//!
//! Names are unresolved strings; the [`sema`](crate::sema) pass turns this
//! into the resolved [`hir`](crate::hir) form in which every name has been
//! bound to a (scope, slot) pair — the "binding" step of Rau's framework.

use crate::types::Type;
use crate::Span;

/// A complete parsed program: a sequence of global variable declarations and
/// procedure declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<VarDecl>,
    /// Procedures, in declaration order.
    pub procs: Vec<ProcDecl>,
}

/// A variable declaration: `int x := 3;`, `bool b;` or `int a[10];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional scalar initialiser (arrays cannot be initialised inline).
    pub init: Option<Expr>,
    /// Source location of the declaration.
    pub span: Span,
}

/// A procedure declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDecl {
    /// Procedure name (the program entry point is `main`).
    pub name: String,
    /// Formal parameters (scalars only, passed by value).
    pub params: Vec<Param>,
    /// Optional scalar return type; `None` for proper procedures.
    pub ret: Option<Type>,
    /// The body block.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (must be scalar).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A `begin ... end` block: local declarations followed by statements.
///
/// Each block is a *contour* in the sense of Johnston's contour model, which
/// the paper invokes when describing contextual encodings: the set of names
/// visible at a program point is bounded by the enclosing contours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Local declarations at the head of the block.
    pub decls: Vec<VarDecl>,
    /// The statements of the block.
    pub stmts: Vec<Stmt>,
    /// Source location of the whole block.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `x := e;`
    Assign {
        /// Target variable name.
        name: String,
        /// Assigned value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `a[i] := e;`
    AssignIndexed {
        /// Target array name.
        name: String,
        /// Index expression.
        index: Expr,
        /// Assigned value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `if c then s [else s]`
    If {
        /// Condition (must be boolean).
        cond: Expr,
        /// Then-branch.
        then_branch: Box<Stmt>,
        /// Optional else-branch.
        else_branch: Option<Box<Stmt>>,
        /// Location.
        span: Span,
    },
    /// `while c do s`
    While {
        /// Loop condition (must be boolean).
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Location.
        span: Span,
    },
    /// `for i := a to b do s` — inclusive upper bound, ascending.
    For {
        /// Induction variable (must be a declared `int`).
        var: String,
        /// Initial value.
        from: Expr,
        /// Final value (inclusive).
        to: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Location.
        span: Span,
    },
    /// A nested `begin ... end` block.
    Block(Block),
    /// `call p(args);` — a call whose result (if any) is discarded.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// `return;` or `return e;`
    Return {
        /// Returned value for function procedures.
        value: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `write e;` — appends the value to the program output.
    Write {
        /// Written value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `skip;` — no operation.
    Skip {
        /// Location.
        span: Span,
    },
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::AssignIndexed { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Write { span, .. }
            | Stmt::Skip { span } => *span,
            Stmt::Block(b) => b.span,
        }
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is a runtime trap)
    Div,
    /// `%` (remainder; by zero is a runtime trap)
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (strict, both sides evaluated)
    And,
    /// `or` (strict, both sides evaluated)
    Or,
}

impl BinOp {
    /// Returns `true` if this operator takes integer operands.
    pub fn takes_ints(self) -> bool {
        !matches!(self, BinOp::And | BinOp::Or)
    }

    /// Returns `true` if this operator produces a boolean result.
    pub fn produces_bool(self) -> bool {
        !matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// Array element `a[i]`.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Function call `f(args)` used as a value.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Bool(_, s) | Expr::Var(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.takes_ints());
        assert!(!BinOp::Add.produces_bool());
        assert!(BinOp::Lt.takes_ints());
        assert!(BinOp::Lt.produces_bool());
        assert!(!BinOp::And.takes_ints());
        assert!(BinOp::And.produces_bool());
    }

    #[test]
    fn expr_span_accessors() {
        let e = Expr::Int(1, Span::new(2, 3));
        assert_eq!(e.span(), Span::new(2, 3));
        let b = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1, Span::new(0, 1))),
            rhs: Box::new(Expr::Int(2, Span::new(2, 3))),
            span: Span::new(0, 3),
        };
        assert_eq!(b.span(), Span::new(0, 3));
    }

    #[test]
    fn stmt_span_accessors() {
        let s = Stmt::Skip {
            span: Span::new(5, 10),
        };
        assert_eq!(s.span(), Span::new(5, 10));
    }

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Ne.to_string(), "<>");
        assert_eq!(BinOp::And.to_string(), "and");
    }
}
