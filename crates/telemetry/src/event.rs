//! Typed trace events emitted by the machines.
//!
//! Events are small `Copy` values so that emitting one costs a handful of
//! moves; whether anything happens with it is the sink's business. The
//! set mirrors the micro-architecture of the paper: the DTB lookup
//! (hit/miss with a taxonomy), replacement (evict/promote), the dynamic
//! translation routine (decode + generate cycles), semantic routines on
//! IU1, and level-2 instruction fetches.

use crate::json::Json;

/// Why a DTB lookup missed.
///
/// The taxonomy is the classic three-C decomposition, computed against a
/// shadow fully-associative LRU directory of the same total capacity:
///
/// * **Cold** — the address was never resident before (compulsory);
/// * **Capacity** — a fully-associative buffer of the same size would
///   also have missed (the working set simply does not fit);
/// * **Conflict** — the fully-associative shadow *would* have hit: only
///   the set mapping evicted the translation.
///
/// A fourth class, **Recovery**, sits outside the three-C taxonomy: the
/// lookup physically hit, but the line's guard checksum failed, so the
/// machine invalidated it and retranslated from the static DIR. The
/// shadow classifier never produces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// First reference to this DIR address.
    Cold,
    /// Would miss even fully-associatively.
    Capacity,
    /// Misses only because of the set mapping.
    Conflict,
    /// A hit whose line failed its integrity check and was invalidated
    /// and retranslated (fault plane only).
    Recovery,
}

impl MissKind {
    /// Stable lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            MissKind::Cold => "cold",
            MissKind::Capacity => "capacity",
            MissKind::Conflict => "conflict",
            MissKind::Recovery => "recovery",
        }
    }
}

/// What a fault-plane injection corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A bit flipped in the encoded DIR stream (persistent level-2
    /// corruption).
    DirBit,
    /// A buffer-array word of a resident DTB line overwritten.
    DtbWord,
    /// A tag/address-array entry poisoned.
    DtbTag,
    /// A level-2 instruction fetch dropped (transient).
    FetchDrop,
}

impl FaultKind {
    /// Stable lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DirBit => "dir_bit",
            FaultKind::DtbWord => "dtb_word",
            FaultKind::DtbTag => "dtb_tag",
            FaultKind::FetchDrop => "fetch_drop",
        }
    }
}

/// Which execution tier retired a DIR instruction.
///
/// The tier is the profiling plane's cost axis: the same DIR instruction
/// costs differently depending on whether INTERP interpreted it inline,
/// dispatched a resident PSDER translation, or dispatched it with the
/// defensive checks compiled out (the verified-image fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Interpreted inline (interpreter/icache mode, degraded addresses,
    /// or an uncached-overflow translation).
    Interp,
    /// Dispatched from a resident PSDER translation with defensive
    /// checks on.
    Psder,
    /// Dispatched from a resident PSDER translation with the verifier's
    /// trusted fast path (checks proven unreachable at load time).
    Trusted,
}

impl Tier {
    /// Stable lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Psder => "psder",
            Tier::Trusted => "trusted",
        }
    }

    /// Dense index for per-tier accumulation arrays.
    pub fn index(self) -> usize {
        match self {
            Tier::Interp => 0,
            Tier::Psder => 1,
            Tier::Trusted => 2,
        }
    }

    /// Number of tiers (length of per-tier arrays).
    pub const COUNT: usize = 3;
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The DTB lookup for `addr` found a resident translation.
    DtbHit {
        /// DIR address presented by INTERP.
        addr: u32,
    },
    /// The DTB lookup for `addr` missed.
    DtbMiss {
        /// DIR address presented by INTERP.
        addr: u32,
        /// Taxonomy of the miss.
        kind: MissKind,
    },
    /// Filling `addr` displaced the resident translation for `victim`.
    Evict {
        /// Incoming DIR address.
        addr: u32,
        /// Displaced DIR address.
        victim: u32,
    },
    /// A second-level translation was copied into the first-level DTB.
    Promote {
        /// DIR address promoted.
        addr: u32,
        /// Translation length in short words.
        words: u32,
    },
    /// The dynamic translation routine ran for `addr`.
    Translate {
        /// DIR address translated.
        addr: u32,
        /// Level-1 cycles spent decoding the DIR instruction.
        decode_cycles: u64,
        /// Level-1 cycles spent generating + storing the translation.
        generate_cycles: u64,
    },
    /// IU1 took over for a semantic routine.
    RoutineEnter {
        /// Routine index (see `psder::RoutineId::index`).
        id: u16,
    },
    /// The semantic routine finished.
    RoutineExit {
        /// Routine index.
        id: u16,
        /// Micro-words executed.
        words: u32,
    },
    /// DIR instruction words were fetched from level-2 memory.
    L2Fetch {
        /// DIR address fetched.
        addr: u32,
        /// Level-2 words transferred.
        words: u32,
    },
    /// A DIR instruction was decoded from the encoded stream.
    Decode {
        /// DIR address decoded.
        addr: u32,
        /// Modeled decode cost in host instructions (the paper's `d` for
        /// this one instruction) — a property of the representation,
        /// identical whichever host decoder ran.
        cost: u32,
        /// Encoded width of the instruction in bits.
        bits: u32,
    },
    /// The fault injector corrupted machine state.
    FaultInjected {
        /// What was corrupted.
        kind: FaultKind,
        /// DIR address of the damaged line or fetch.
        addr: u32,
    },
    /// Repeated integrity failures at this DIR address degraded it to
    /// pure interpretation for the rest of the run.
    Degraded {
        /// DIR address now interpreted without translation.
        addr: u32,
    },
    /// One DIR instruction retired, with its full modeled cost.
    ///
    /// Emitted exactly once per dynamic DIR instruction, after every
    /// sub-event (fetch, decode, translate, routine) it caused. The
    /// cycle delta is the instruction's share of the modeled
    /// `CycleBreakdown` total, so summing `cycles` over all retires
    /// reproduces the run's cycle count exactly — the invariant the
    /// span tracer's modeled clock rests on.
    Retire {
        /// DIR address retired.
        addr: u32,
        /// Which tier executed it.
        tier: Tier,
        /// Modeled level-1 cycles this instruction accounted for.
        cycles: u32,
    },
    /// A translation was written into a DTB slot (on-miss fill).
    DtbFill {
        /// DIR address now resident.
        addr: u32,
        /// Resident translations after the fill (occupancy timeline).
        occupancy: u32,
    },
}

impl Event {
    /// Stable snake_case name of the event kind, used as the JSON `ev`
    /// discriminator.
    pub fn name(&self) -> &'static str {
        match self {
            Event::DtbHit { .. } => "dtb_hit",
            Event::DtbMiss { .. } => "dtb_miss",
            Event::Evict { .. } => "evict",
            Event::Promote { .. } => "promote",
            Event::Translate { .. } => "translate",
            Event::RoutineEnter { .. } => "routine_enter",
            Event::RoutineExit { .. } => "routine_exit",
            Event::L2Fetch { .. } => "l2_fetch",
            Event::Decode { .. } => "decode",
            Event::FaultInjected { .. } => "fault_injected",
            Event::Degraded { .. } => "degraded",
            Event::Retire { .. } => "retire",
            Event::DtbFill { .. } => "dtb_fill",
        }
    }

    /// The event as a JSON object (one JSONL record).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![("ev".to_string(), Json::from(self.name()))];
        match *self {
            Event::DtbHit { addr } => obj.push(("addr".into(), Json::from(addr as i64))),
            Event::DtbMiss { addr, kind } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("kind".into(), Json::from(kind.label())));
            }
            Event::Evict { addr, victim } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("victim".into(), Json::from(victim as i64)));
            }
            Event::Promote { addr, words } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("words".into(), Json::from(words as i64)));
            }
            Event::Translate {
                addr,
                decode_cycles,
                generate_cycles,
            } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("decode_cycles".into(), Json::from(decode_cycles as i64)));
                obj.push(("generate_cycles".into(), Json::from(generate_cycles as i64)));
            }
            Event::RoutineEnter { id } => obj.push(("id".into(), Json::from(id as i64))),
            Event::RoutineExit { id, words } => {
                obj.push(("id".into(), Json::from(id as i64)));
                obj.push(("words".into(), Json::from(words as i64)));
            }
            Event::L2Fetch { addr, words } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("words".into(), Json::from(words as i64)));
            }
            Event::Decode { addr, cost, bits } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("cost".into(), Json::from(cost as i64)));
                obj.push(("bits".into(), Json::from(bits as i64)));
            }
            Event::FaultInjected { kind, addr } => {
                obj.push(("kind".into(), Json::from(kind.label())));
                obj.push(("addr".into(), Json::from(addr as i64)));
            }
            Event::Degraded { addr } => obj.push(("addr".into(), Json::from(addr as i64))),
            Event::Retire { addr, tier, cycles } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("tier".into(), Json::from(tier.label())));
                obj.push(("cycles".into(), Json::from(cycles as i64)));
            }
            Event::DtbFill { addr, occupancy } => {
                obj.push(("addr".into(), Json::from(addr as i64)));
                obj.push(("occupancy".into(), Json::from(occupancy as i64)));
            }
        }
        Json::Obj(obj)
    }
}

/// Running totals per event kind, kept by [`RingSink`] so bounded buffers
/// still report exact counts after wrapping.
///
/// [`RingSink`]: crate::sink::RingSink
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `DtbHit` events.
    pub dtb_hits: u64,
    /// `DtbMiss` events (all kinds).
    pub dtb_misses: u64,
    /// Cold misses.
    pub cold_misses: u64,
    /// Capacity misses.
    pub capacity_misses: u64,
    /// Conflict misses.
    pub conflict_misses: u64,
    /// `Evict` events.
    pub evictions: u64,
    /// `Promote` events.
    pub promotions: u64,
    /// `Translate` events.
    pub translations: u64,
    /// `RoutineEnter` events.
    pub routine_enters: u64,
    /// `RoutineExit` events.
    pub routine_exits: u64,
    /// `L2Fetch` events.
    pub l2_fetches: u64,
    /// `Decode` events.
    pub decodes: u64,
    /// `DtbMiss` events of the `Recovery` class (subset of `dtb_misses`).
    pub recovery_misses: u64,
    /// `FaultInjected` events.
    pub faults_injected: u64,
    /// `Degraded` events.
    pub degradations: u64,
    /// `Retire` events.
    pub retires: u64,
    /// `DtbFill` events.
    pub dtb_fills: u64,
}

impl EventCounts {
    /// Records one event.
    pub fn record(&mut self, event: &Event) {
        match event {
            Event::DtbHit { .. } => self.dtb_hits += 1,
            Event::DtbMiss { kind, .. } => {
                self.dtb_misses += 1;
                match kind {
                    MissKind::Cold => self.cold_misses += 1,
                    MissKind::Capacity => self.capacity_misses += 1,
                    MissKind::Conflict => self.conflict_misses += 1,
                    MissKind::Recovery => self.recovery_misses += 1,
                }
            }
            Event::Evict { .. } => self.evictions += 1,
            Event::Promote { .. } => self.promotions += 1,
            Event::Translate { .. } => self.translations += 1,
            Event::RoutineEnter { .. } => self.routine_enters += 1,
            Event::RoutineExit { .. } => self.routine_exits += 1,
            Event::L2Fetch { .. } => self.l2_fetches += 1,
            Event::Decode { .. } => self.decodes += 1,
            Event::FaultInjected { .. } => self.faults_injected += 1,
            Event::Degraded { .. } => self.degradations += 1,
            Event::Retire { .. } => self.retires += 1,
            Event::DtbFill { .. } => self.dtb_fills += 1,
        }
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.dtb_hits
            + self.dtb_misses
            + self.evictions
            + self.promotions
            + self.translations
            + self.routine_enters
            + self.routine_exits
            + self.l2_fetches
            + self.decodes
            + self.faults_injected
            + self.degradations
            + self.retires
            + self.dtb_fills
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_kinds_partition_the_miss_count() {
        let mut c = EventCounts::default();
        c.record(&Event::DtbMiss {
            addr: 1,
            kind: MissKind::Cold,
        });
        c.record(&Event::DtbMiss {
            addr: 2,
            kind: MissKind::Capacity,
        });
        c.record(&Event::DtbMiss {
            addr: 3,
            kind: MissKind::Conflict,
        });
        c.record(&Event::DtbHit { addr: 1 });
        assert_eq!(c.dtb_misses, 3);
        assert_eq!(
            c.cold_misses + c.capacity_misses + c.conflict_misses,
            c.dtb_misses
        );
        assert_eq!(c.dtb_hits, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn events_serialize_with_discriminator() {
        let e = Event::Translate {
            addr: 17,
            decode_cycles: 12,
            generate_cycles: 9,
        };
        let j = e.to_json();
        assert_eq!(j.get("ev").and_then(Json::as_str), Some("translate"));
        assert_eq!(j.get("addr").and_then(Json::as_i64), Some(17));
        assert_eq!(j.get("decode_cycles").and_then(Json::as_i64), Some(12));
    }

    #[test]
    fn every_event_kind_has_a_distinct_name() {
        let events = [
            Event::DtbHit { addr: 0 },
            Event::DtbMiss {
                addr: 0,
                kind: MissKind::Cold,
            },
            Event::Evict { addr: 0, victim: 1 },
            Event::Promote { addr: 0, words: 2 },
            Event::Translate {
                addr: 0,
                decode_cycles: 0,
                generate_cycles: 0,
            },
            Event::RoutineEnter { id: 0 },
            Event::RoutineExit { id: 0, words: 1 },
            Event::L2Fetch { addr: 0, words: 1 },
            Event::Decode {
                addr: 0,
                cost: 7,
                bits: 13,
            },
            Event::FaultInjected {
                kind: FaultKind::DtbWord,
                addr: 0,
            },
            Event::Degraded { addr: 0 },
            Event::Retire {
                addr: 0,
                tier: Tier::Psder,
                cycles: 9,
            },
            Event::DtbFill {
                addr: 0,
                occupancy: 1,
            },
        ];
        let names: std::collections::HashSet<_> = events.iter().map(Event::name).collect();
        assert_eq!(names.len(), events.len());
    }

    #[test]
    fn retire_and_fill_events_count_and_serialize() {
        let mut c = EventCounts::default();
        c.record(&Event::Retire {
            addr: 4,
            tier: Tier::Trusted,
            cycles: 11,
        });
        c.record(&Event::DtbFill {
            addr: 4,
            occupancy: 3,
        });
        assert_eq!(c.retires, 1);
        assert_eq!(c.dtb_fills, 1);
        assert_eq!(c.total(), 2);
        let j = Event::Retire {
            addr: 4,
            tier: Tier::Trusted,
            cycles: 11,
        }
        .to_json();
        assert_eq!(j.get("ev").and_then(Json::as_str), Some("retire"));
        assert_eq!(j.get("tier").and_then(Json::as_str), Some("trusted"));
        assert_eq!(j.get("cycles").and_then(Json::as_i64), Some(11));
        let f = Event::DtbFill {
            addr: 4,
            occupancy: 3,
        }
        .to_json();
        assert_eq!(f.get("occupancy").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn tier_labels_and_indices_are_distinct() {
        let tiers = [Tier::Interp, Tier::Psder, Tier::Trusted];
        let labels: std::collections::HashSet<_> = tiers.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), Tier::COUNT);
        let indices: std::collections::HashSet<_> = tiers.iter().map(|t| t.index()).collect();
        assert_eq!(indices.len(), Tier::COUNT);
        assert!(tiers.iter().all(|t| t.index() < Tier::COUNT));
    }

    #[test]
    fn fault_events_count_and_serialize() {
        let mut c = EventCounts::default();
        c.record(&Event::FaultInjected {
            kind: FaultKind::DirBit,
            addr: 3,
        });
        c.record(&Event::DtbMiss {
            addr: 3,
            kind: MissKind::Recovery,
        });
        c.record(&Event::Degraded { addr: 3 });
        assert_eq!(c.faults_injected, 1);
        assert_eq!(c.recovery_misses, 1);
        assert_eq!(c.dtb_misses, 1, "recovery is a miss class");
        assert_eq!(c.degradations, 1);
        assert_eq!(c.total(), 3);
        let j = Event::FaultInjected {
            kind: FaultKind::FetchDrop,
            addr: 9,
        }
        .to_json();
        assert_eq!(j.get("ev").and_then(Json::as_str), Some("fault_injected"));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("fetch_drop"));
        assert_eq!(j.get("addr").and_then(Json::as_i64), Some(9));
    }

    #[test]
    fn fault_kind_labels_are_distinct() {
        let kinds = [
            FaultKind::DirBit,
            FaultKind::DtbWord,
            FaultKind::DtbTag,
            FaultKind::FetchDrop,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
