//! # uhm-psder — the procedurally structured DER
//!
//! The *PSDER* tier of Rau (1978): semantically identical to the DIR but
//! directly executable, expressed as short steering sequences (CALL / PUSH
//! / POP / INTERP, module [`short`]) that invoke generalised semantic
//! routines written in long-format horizontal microinstructions
//! ([`micro`], [`routines`]).
//!
//! [`translator`] holds the almost-one-to-one DIR→PSDER templates used by
//! the dynamic translator and the pure interpreter alike; [`engine`] is the
//! shared architectural state (operand stack, return-address stack, frames,
//! register file); [`interp`] is a cost-free reference interpreter that the
//! `uhm` crate's cycle-accounted machines are differentially tested
//! against.
//!
//! # Example
//!
//! ```
//! let hir = hlr::compile("proc main() begin write 40 + 2; end")?;
//! let prog = dir::compiler::compile(&hir);
//! assert_eq!(psder::interp::run(&prog).unwrap(), vec![42]);
//! # Ok::<(), hlr::Error>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod interp;
pub mod listing;
pub mod micro;
pub mod routines;
pub mod short;
pub mod translator;
pub mod verify;

pub use engine::{Engine, MicroEffect, ShortEffect};
pub use routines::RoutineLib;
pub use short::{InterpMode, PopMode, PushMode, RoutineId, ShortInstr};
pub use translator::{fuse_block, translate, FrozenTransCache, TransCache, MAX_TRANSLATION_WORDS};
