//! Packed-field representation: the "simplest form of encoding" (§3.2).
//!
//! Fields are bit-packed and may span memory-unit boundaries; each field
//! kind gets one program-wide width, just large enough for the largest
//! value that actually occurs. The decoder must extract and mask each
//! field, which costs more than the byte-aligned reads.

use crate::bitstream::{bits_for, BitReader, BitWriter};
use crate::isa::{Inst, Opcode, OPCODE_COUNT};
use crate::program::Program;

use super::{DecodeMode, Decoded, DecoderData, FieldWidths, Image, ImageError, Scheme, SchemeKind};

/// The packed scheme (unit struct; widths are measured from the program).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Packed;

/// Width of the opcode field: fixed, large enough for all opcodes.
pub(super) fn opcode_bits() -> u32 {
    bits_for(OPCODE_COUNT as u64 - 1)
}

impl Scheme for Packed {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Packed
    }

    fn encode(&self, program: &Program) -> Image {
        let widths = FieldWidths::measure(program.code.iter(), None);
        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for inst in &program.code {
            offsets.push(w.bit_len());
            w.write(inst.opcode() as u64, opcode_bits());
            for (kind, value) in inst.opcode().field_kinds().iter().zip(inst.fields()) {
                w.write(value, widths.width(*kind));
            }
        }
        let (bytes, bit_len) = w.finish();
        Image {
            kind: SchemeKind::Packed,
            bytes,
            bit_len,
            offsets,
            side_table_bits: widths.table_bits(),
            mode: DecodeMode::default(),
            decoder: DecoderData::Packed(widths),
        }
    }
}

/// Decodes one instruction; cost: extract + mask (2 ops) for the opcode and
/// for each field.
#[inline]
pub(super) fn decode(
    reader: &mut BitReader<'_>,
    widths: &FieldWidths,
    mode: DecodeMode,
) -> Result<Decoded, ImageError> {
    let op_raw = mode.read(reader, opcode_bits())?;
    let opcode = Opcode::from_u8(op_raw as u8).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(op_raw as u8),
    ))?;
    let kinds = opcode.field_kinds();
    let inst = match mode {
        DecodeMode::Tree => {
            let mut fields = Vec::with_capacity(kinds.len());
            for kind in kinds {
                fields.push(reader.read_bitwise(widths.width(*kind))?);
            }
            Inst::from_parts(opcode, &fields)?
        }
        DecodeMode::Table => {
            let mut buf = [0u64; super::MAX_FIELDS];
            for (i, kind) in kinds.iter().enumerate() {
                buf[i] = reader.read(widths.width(*kind))?;
            }
            Inst::from_parts(opcode, &buf[..kinds.len()])?
        }
    };
    Ok(Decoded {
        inst,
        cost: 2 + 2 * kinds.len() as u32,
        bits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let image = Packed.encode(&p);
            assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
        }
    }

    #[test]
    fn packed_is_smaller_than_byte_aligned() {
        let p = compile(&hlr::programs::MATMUL.compile().unwrap());
        let byte = super::super::ByteAligned.encode(&p);
        let packed = Packed.encode(&p);
        assert!(packed.bit_len < byte.bit_len);
    }

    #[test]
    fn widths_fit_largest_values() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let widths = FieldWidths::measure(p.code.iter(), None);
        for inst in &p.code {
            for (kind, value) in inst.opcode().field_kinds().iter().zip(inst.fields()) {
                let w = widths.width(*kind);
                assert!(w == 64 || value < (1 << w), "{inst:?} field {kind:?}");
            }
        }
    }

    #[test]
    fn opcode_width_is_five_bits() {
        // 25 opcodes need 5 bits.
        assert_eq!(opcode_bits(), 5);
    }
}
