//! Table 1: equivalence of a PSDER call sequence to more compact, encoded
//! machine formats.
//!
//! The paper's Table 1 shows one two-operand update (`op2 := op2 OP op1`)
//! expressed three ways: as an explicit PSDER sequence of procedure calls
//! with arguments, as a PDP-11-style two-operand instruction, and as a
//! System/360 RX-style instruction (with the index-register field omitted
//! for the second operand, per the paper's footnote). This module encodes
//! all three at the bit level so the `table1` benchmark binary can print
//! the comparison with real sizes.

use crate::bitstream::BitWriter;

/// One step of the PSDER call sequence, mirroring the paper's six numbered
/// items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsderStep {
    /// What the step does (paper's wording, abridged).
    pub description: &'static str,
    /// Encoded width of the short-format instruction implementing it.
    pub bits: u32,
}

/// The PSDER sequence equivalent to `op2 := op2 OP op1` with
/// base+displacement operands.
///
/// Short-format instructions are 24 bits: a 4-bit opcode (CALL/PUSH/POP/
/// INTERP and addressing-mode flavours) and a 20-bit operand — the format
/// the UHM's IU2 executes out of the dynamic translation buffer.
pub fn psder_sequence() -> Vec<PsderStep> {
    vec![
        PsderStep {
            description: "PUSH address of operand-1 register cell (direct mode)",
            bits: 24,
        },
        PsderStep {
            description: "PUSH operand-1 displacement (immediate mode)",
            bits: 24,
        },
        PsderStep {
            description: "CALL effective-address calculation procedure",
            bits: 24,
        },
        PsderStep {
            description: "PUSH operand-2 displacement (immediate mode)",
            bits: 24,
        },
        PsderStep {
            description: "CALL functional procedure (the operation)",
            bits: 24,
        },
        PsderStep {
            description: "CALL store via address computed earlier (implicit)",
            bits: 24,
        },
    ]
}

/// Addressing modes of the PDP-11-style format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Pdp11Mode {
    /// Register direct.
    Register = 0,
    /// Register deferred (indirect).
    Deferred = 1,
    /// Auto-increment.
    AutoInc = 2,
    /// Indexed (base + displacement).
    Indexed = 6,
}

/// A PDP-11-style two-operand instruction: 4-bit opcode, two 6-bit operand
/// specifiers (3-bit mode + 3-bit register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pdp11Inst {
    /// Operation code (ADD, SUB, ...).
    pub opcode: u8,
    /// Source operand mode.
    pub src_mode: Pdp11Mode,
    /// Source register.
    pub src_reg: u8,
    /// Destination operand mode (source *and* destination).
    pub dst_mode: Pdp11Mode,
    /// Destination register.
    pub dst_reg: u8,
}

impl Pdp11Inst {
    /// Width of the encoded instruction word.
    pub const BITS: u32 = 16;

    /// Encodes to the 16-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics if `opcode > 15` or a register number exceeds 7.
    pub fn encode(&self) -> u16 {
        assert!(self.opcode <= 0xF, "opcode must fit 4 bits");
        assert!(
            self.src_reg <= 7 && self.dst_reg <= 7,
            "registers are 3 bits"
        );
        let mut w = BitWriter::new();
        w.write(self.opcode as u64, 4);
        w.write(self.src_mode as u64, 3);
        w.write(self.src_reg as u64, 3);
        w.write(self.dst_mode as u64, 3);
        w.write(self.dst_reg as u64, 3);
        let (bytes, len) = w.finish();
        debug_assert_eq!(len, 16);
        u16::from_be_bytes([bytes[0], bytes[1]])
    }
}

/// A System/360 RX-style instruction *without* the index-register field
/// (paper's footnote 6): 8-bit opcode, 4-bit R1, 4-bit B2, 12-bit D2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxInst {
    /// Operation code.
    pub opcode: u8,
    /// First-operand register.
    pub r1: u8,
    /// Base register of the second operand.
    pub b2: u8,
    /// Displacement of the second operand.
    pub d2: u16,
}

impl RxInst {
    /// Width of the encoded instruction (8 + 4 + 4 + 12).
    pub const BITS: u32 = 28;

    /// Encodes to the 28-bit pattern, right-aligned in a `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `r1`/`b2` exceed 15 or `d2` exceeds 4095.
    pub fn encode(&self) -> u32 {
        assert!(self.r1 <= 0xF && self.b2 <= 0xF, "registers are 4 bits");
        assert!(self.d2 <= 0xFFF, "displacement is 12 bits");
        ((self.opcode as u32) << 20)
            | ((self.r1 as u32) << 16)
            | ((self.b2 as u32) << 12)
            | self.d2 as u32
    }
}

/// One row of the Table 1 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Representation name.
    pub representation: &'static str,
    /// Items making up the representation.
    pub items: Vec<String>,
    /// Total encoded bits.
    pub total_bits: u64,
}

/// Builds the Table 1 comparison for the statement `R3 := R3 + base[disp]`.
pub fn table1() -> Vec<Table1Row> {
    let psder = psder_sequence();
    let psder_bits: u64 = psder.iter().map(|s| s.bits as u64).sum();
    let pdp = Pdp11Inst {
        opcode: 0x6, // ADD
        src_mode: Pdp11Mode::Indexed,
        src_reg: 1,
        dst_mode: Pdp11Mode::Register,
        dst_reg: 3,
    };
    let rx = RxInst {
        opcode: 0x5A, // A (add) in real S/360
        r1: 3,
        b2: 1,
        d2: 0x100,
    };
    vec![
        Table1Row {
            representation: "PSDER sequence",
            items: psder
                .iter()
                .map(|s| format!("{} ({} bits)", s.description, s.bits))
                .collect(),
            total_bits: psder_bits,
        },
        Table1Row {
            representation: "PDP-11 two-operand format",
            items: vec![format!("ADD X(R1), R3 = {:#06x}", pdp.encode())],
            total_bits: Pdp11Inst::BITS as u64 + 16, // + displacement word
        },
        Table1Row {
            representation: "System/360 RX format (no index field)",
            items: vec![format!("A R3, D2(B2) = {:#09x}", rx.encode())],
            total_bits: RxInst::BITS as u64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psder_sequence_is_six_steps() {
        // The paper enumerates six items for the equivalence.
        assert_eq!(psder_sequence().len(), 6);
    }

    #[test]
    fn sizes_strictly_decrease_down_the_table() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].total_bits > rows[1].total_bits);
        assert!(rows[1].total_bits > rows[2].total_bits);
    }

    #[test]
    fn pdp11_encoding_packs_fields() {
        let inst = Pdp11Inst {
            opcode: 0x6,
            src_mode: Pdp11Mode::Indexed,
            src_reg: 1,
            dst_mode: Pdp11Mode::Register,
            dst_reg: 3,
        };
        let word = inst.encode();
        assert_eq!(word >> 12, 0x6);
        assert_eq!((word >> 9) & 0x7, 6); // indexed mode
        assert_eq!((word >> 6) & 0x7, 1);
        assert_eq!((word >> 3) & 0x7, 0); // register mode
        assert_eq!(word & 0x7, 3);
    }

    #[test]
    fn rx_encoding_packs_fields() {
        let inst = RxInst {
            opcode: 0x5A,
            r1: 3,
            b2: 1,
            d2: 0x100,
        };
        let bits = inst.encode();
        assert_eq!(bits >> 20, 0x5A);
        assert_eq!((bits >> 16) & 0xF, 3);
        assert_eq!((bits >> 12) & 0xF, 1);
        assert_eq!(bits & 0xFFF, 0x100);
    }

    #[test]
    #[should_panic(expected = "opcode must fit")]
    fn pdp11_rejects_wide_opcode() {
        Pdp11Inst {
            opcode: 0x10,
            src_mode: Pdp11Mode::Register,
            src_reg: 0,
            dst_mode: Pdp11Mode::Register,
            dst_reg: 0,
        }
        .encode();
    }
}
