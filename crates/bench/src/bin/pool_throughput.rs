//! **E16 — multi-tenant pool throughput:** aggregate host throughput of
//! the [`uhm::pool::MachinePool`] across worker counts, over tenants
//! cycling the full sample corpus. The figure of merit is aggregate
//! Minstr/s: total *modeled* DIR instructions retired across tenants,
//! divided by host wall-clock. The numerator is schedule-invariant (every
//! tenant's modeled metrics are bit-identical to a sequential run — the
//! pool is a pure host-side construct), so the ratio isolates what the
//! pool actually buys: parallel host execution over shared read-only
//! decode artifacts.
//!
//! Run with `cargo run -p uhm-bench --release --bin pool_throughput`.
//! With `--json`, emits a versioned RunReport (one row per worker count,
//! including per-tenant latency percentiles) instead of the text table.
//! With `--smoke`, exits non-zero if (a) any tenant's pooled outcome
//! differs from the sequential reference at any tested worker count, or
//! (b) the measured 4-worker/1-worker aggregate throughput ratio falls
//! below the scaling gate. The gate is 1.7x on hosts with >= 4 cores;
//! on narrower hosts threads only time-slice, so the threshold drops to
//! 1.15x (2-3 cores) or the ratio check is skipped (1 core) — the
//! bit-identity half of the gate always runs.

use std::process::ExitCode;
use std::sync::Arc;

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::pool::{MachinePool, PoolRun, TenantOutcome};
use uhm::{DtbConfig, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

/// Tenants in the measured pool (cycling the sample corpus).
const TENANTS: usize = 24;
/// Worker counts measured in full mode.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Pool runs per worker count; the fastest is reported (min-of-N, the
/// same discipline as the perf gate).
const SAMPLES: usize = 3;
/// Required 4-worker/1-worker throughput ratio on hosts with >= 4 cores.
const FULL_GATE: f64 = 1.7;
/// Relaxed ratio for 2-3 core hosts.
const NARROW_GATE: f64 = 1.15;

/// Builds the tenant machine set: one machine per workload, encoded once,
/// with the frozen translation snapshot attached so all tenants of a
/// workload share one decode-template table.
fn machines() -> Vec<(String, Arc<Machine>)> {
    workloads()
        .into_iter()
        .map(|w| {
            let mut m = Machine::new(&w.base, SchemeKind::Huffman);
            m.freeze_translations();
            (w.name.to_string(), Arc::new(m))
        })
        .collect()
}

fn build_pool(machines: &[(String, Arc<Machine>)], workers: usize, tenants: usize) -> MachinePool {
    let mut pool = MachinePool::new(workers);
    for t in 0..tenants {
        let (name, machine) = &machines[t % machines.len()];
        pool.push(
            format!("{name}#{t}"),
            Arc::clone(machine),
            Mode::Dtb(DtbConfig::with_capacity(64)),
        );
    }
    pool
}

fn outcomes(run: &PoolRun) -> Vec<&TenantOutcome> {
    run.results.iter().map(|r| &r.outcome).collect()
}

/// Runs the pool `SAMPLES` times, asserting bit-identity against the
/// sequential reference on every sample, and returns the fastest run.
fn measure(
    machines: &[(String, Arc<Machine>)],
    workers: usize,
    tenants: usize,
    reference: &PoolRun,
) -> Result<PoolRun, String> {
    let pool = build_pool(machines, workers, tenants);
    let mut best: Option<PoolRun> = None;
    for _ in 0..SAMPLES {
        let run = pool.run();
        if outcomes(&run) != outcomes(reference) {
            return Err(format!(
                "{workers}-worker pool diverged from the sequential reference"
            ));
        }
        if best.as_ref().is_none_or(|b| run.wall_ns < b.wall_ns) {
            best = Some(run);
        }
    }
    Ok(best.expect("SAMPLES > 0"))
}

/// The speedup threshold for this host, by core count: `None` means the
/// ratio check cannot be meaningful (single core) and is skipped.
fn gate_for(cores: usize) -> Option<f64> {
    match cores {
        0 | 1 => None,
        2 | 3 => Some(NARROW_GATE),
        _ => Some(FULL_GATE),
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn smoke() -> ExitCode {
    let machines = machines();
    let tenants = 16; // smaller pool: the CI gate favors wall-clock
    let reference = build_pool(&machines, 1, tenants).run_sequential();
    let mut walls = Vec::new();
    for workers in [1, 4] {
        match measure(&machines, workers, tenants, &reference) {
            Ok(run) => walls.push(run.wall_ns),
            Err(e) => {
                eprintln!("pool smoke: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let ratio = walls[0] as f64 / walls[1] as f64;
    let cores = host_cores();
    match gate_for(cores) {
        Some(threshold) if ratio < threshold => {
            eprintln!(
                "pool smoke: 4-worker/1-worker throughput ratio {ratio:.2}x is below \
                 the {threshold:.2}x gate for a {cores}-core host"
            );
            ExitCode::FAILURE
        }
        Some(threshold) => {
            println!(
                "pool smoke PASS: {tenants} tenants bit-identical to sequential at 1 and 4 \
                 workers; 4-worker speedup {ratio:.2}x (gate {threshold:.2}x, {cores} cores)"
            );
            ExitCode::SUCCESS
        }
        None => {
            println!(
                "pool smoke PASS: {tenants} tenants bit-identical to sequential at 1 and 4 \
                 workers; speedup gate skipped on a single-core host (ratio {ratio:.2}x)"
            );
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--smoke") {
        return smoke();
    }

    let machines = machines();
    let reference = build_pool(&machines, 1, TENANTS).run_sequential();
    let mut runs = Vec::new();
    for workers in WORKER_COUNTS {
        match measure(&machines, workers, TENANTS, &reference) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("pool_throughput: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let base_wall = runs[0].wall_ns as f64;

    if json_flag() {
        let rows: Vec<Json> = runs
            .iter()
            .map(|run| {
                let p = run.latency_percentiles();
                Json::obj(vec![
                    ("workers", (run.workers as u64).into()),
                    ("tenants", (run.results.len() as u64).into()),
                    ("wall_ns", run.wall_ns.into()),
                    ("instructions", run.total_instructions().into()),
                    ("minstr_per_sec", run.minstr_per_sec().into()),
                    ("speedup", (base_wall / run.wall_ns as f64).into()),
                    ("steals", run.steals.into()),
                    ("latency_p50_ns", p.p50.into()),
                    ("latency_p95_ns", p.p95.into()),
                    ("latency_p99_ns", p.p99.into()),
                ])
            })
            .collect();
        let config = Json::obj(vec![
            ("tenants", (TENANTS as u64).into()),
            ("corpus", (machines.len() as u64).into()),
            ("samples", (SAMPLES as u64).into()),
            ("host_cores", (host_cores() as u64).into()),
            ("scheme", "huffman".into()),
            ("mode", "dtb".into()),
        ]);
        println!("{}", bench_report("pool_throughput", config, rows).render());
        return ExitCode::SUCCESS;
    }

    println!(
        "aggregate pool throughput: {TENANTS} tenants over {} workloads \
         ({} host cores; modeled work identical at every worker count)",
        machines.len(),
        host_cores()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>7} {:>10} {:>10} {:>10}",
        "workers", "wall ms", "Minstr/s", "speedup", "steals", "p50 us", "p95 us", "p99 us"
    );
    for run in &runs {
        let p = run.latency_percentiles();
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>8.2}x {:>7} {:>10.1} {:>10.1} {:>10.1}",
            run.workers,
            run.wall_ns as f64 / 1e6,
            run.minstr_per_sec(),
            base_wall / run.wall_ns as f64,
            run.steals,
            p.p50 / 1e3,
            p.p95 / 1e3,
            p.p99 / 1e3
        );
    }
    ExitCode::SUCCESS
}
