//! Cost model and resource limits for the cycle-accounted machines.

use memsim::MemoryCosts;

/// The cost model of Section 7, in level-1 cycles.
///
/// "The unit of time is taken to be the access time of the level 1 memory
/// which is also assumed to be equal to one machine instruction execution
/// time." Decode costs come from the encoded image's measured per-
/// instruction decode work; the remaining knobs live here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Memory access times (`t1`, `t2`, `τ_D`).
    pub mem: MemoryCosts,
    /// Width in bits of a level-2 memory word, for the per-instruction
    /// fetch count `s2`.
    pub word_bits: u32,
    /// Host instructions to *generate* one short word of a translation
    /// (the paper sets `g = 1.5 d`; with our measured `d` this knob makes
    /// `g` scale with translation length instead).
    pub gen_per_word: u64,
    /// Host instructions to *store* one generated short word into the DTB
    /// buffer array.
    pub store_per_word: u64,
    /// Access time of a second-level translation store (the larger,
    /// slower buffer of [`Mode::TwoLevelDtb`]); between `τ_D` and `t2`.
    ///
    /// [`Mode::TwoLevelDtb`]: crate::machine::Mode::TwoLevelDtb
    pub tau_dtb2: u64,
    /// Percentage scale on decode costs, modelling §8's "powerful hardware
    /// aids to the decoding process" (shift/mask/extract units): 100 = the
    /// measured software decode cost, 25 = hardware that decodes four times
    /// faster. Applied as `cost * scale / 100`, rounded up so decoding is
    /// never free.
    pub decode_scale_percent: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem: MemoryCosts::default(),
            word_bits: 32,
            gen_per_word: 2,
            store_per_word: 1,
            tau_dtb2: 5,
            decode_scale_percent: 100,
        }
    }
}

impl CostModel {
    /// Applies the decode-aid scaling to a raw decode cost, rounding up.
    pub fn scaled_decode(&self, cost: u64) -> u64 {
        (cost * self.decode_scale_percent).div_ceil(100).max(1)
    }
}

/// Fault-recovery policy of the machine: how persistently it retries
/// before giving up on a translation (degrade) or a fetch (trap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive integrity failures at one DIR address before that
    /// address degrades to pure interpretation for the rest of the run.
    /// Clamped to at least 1.
    pub degrade_after: u32,
    /// Consecutive dropped level-2 fetches of one instruction before the
    /// run ends in [`Trap::FetchFailed`](dir::exec::Trap).
    pub max_fetch_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            degrade_after: 3,
            max_fetch_retries: 8,
        }
    }
}

/// Execution budget of a supervised run: a modeled-cycle allowance
/// ("fuel") and/or a wall-clock deadline.
///
/// The budget is checked amortized — once every
/// [`BUDGET_CHECK_INTERVAL`] retired DIR instructions — so the hot
/// dispatch path carries no per-instruction cost. Fuel is measured in
/// *modeled* cycles and therefore fires at a deterministic instruction
/// for a given program and mode; the deadline depends on host speed and
/// is strictly an availability backstop — nothing deterministic may key
/// off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Modeled-cycle allowance; the run ends in
    /// [`Trap::FuelExhausted`](dir::exec::Trap) once the run's total
    /// modeled cycles exceed it. `None` = unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock allowance in nanoseconds, measured from run start; the
    /// run ends in [`Trap::DeadlineExceeded`](dir::exec::Trap) once it
    /// passes. `None` = unlimited.
    pub deadline_ns: Option<u64>,
}

/// Retired instructions between budget checks: a power of two so the
/// check condition compiles to a mask test.
pub const BUDGET_CHECK_INTERVAL: u64 = 1024;

impl Budget {
    /// An unlimited budget (the default): no fuel bound, no deadline.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A fuel-only budget in modeled cycles.
    pub fn fuel(cycles: u64) -> Budget {
        Budget {
            fuel: Some(cycles),
            deadline_ns: None,
        }
    }

    /// A deadline-only budget in wall-clock nanoseconds.
    pub fn deadline_ns(ns: u64) -> Budget {
        Budget {
            fuel: None,
            deadline_ns: Some(ns),
        }
    }

    /// Whether neither bound is set (the budget can never fire).
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.deadline_ns.is_none()
    }
}

/// Resource limits for a machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum dynamic DIR instructions.
    pub max_steps: u64,
    /// Maximum DIR-level call depth.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 200_000_000,
            max_depth: 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = CostModel::default();
        assert_eq!(c.mem.t1, 1);
        assert_eq!(c.mem.t2, 10);
        assert_eq!(c.mem.tau_d, 2);
        assert_eq!(c.word_bits, 32);
        assert_eq!(c.decode_scale_percent, 100);
    }

    #[test]
    fn budget_constructors_set_exactly_one_bound() {
        assert!(Budget::unlimited().is_unlimited());
        let f = Budget::fuel(1_000_000);
        assert_eq!(f.fuel, Some(1_000_000));
        assert_eq!(f.deadline_ns, None);
        assert!(!f.is_unlimited());
        let d = Budget::deadline_ns(5_000_000);
        assert_eq!(d.fuel, None);
        assert_eq!(d.deadline_ns, Some(5_000_000));
        assert!(!d.is_unlimited());
        assert!(BUDGET_CHECK_INTERVAL.is_power_of_two());
    }

    #[test]
    fn decode_scaling_rounds_up() {
        let c = CostModel {
            decode_scale_percent: 25,
            ..CostModel::default()
        };
        assert_eq!(c.scaled_decode(8), 2);
        assert_eq!(c.scaled_decode(1), 1, "decode is never free");
        assert_eq!(CostModel::default().scaled_decode(7), 7);
    }
}
